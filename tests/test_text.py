"""Text stack: tokenizer, vocabulary, positions, word2vec, corpus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    SkipGramWord2Vec,
    Vocabulary,
    build_corpus,
    learned_position_table,
    lex,
    normalize_query,
    sinusoidal_position_table,
    tokenize,
)
from repro.text.vocab import PAD_TOKEN, UNK_TOKEN


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("The Red Dog") == ["the", "red", "dog"]

    def test_strips_punctuation(self):
        assert tokenize("dog, on the left!") == ["dog", "on", "the", "left"]

    def test_keeps_digits(self):
        assert tokenize("2 dogs") == ["2", "dogs"]

    def test_empty(self):
        assert tokenize("  ...  ") == []

    def test_possessive_regression(self):
        # The clitic used to survive as a stray "s" token.
        assert tokenize("the man's hat") == ["the", "man", "hat"]
        assert tokenize("the man’s hat") == ["the", "man", "hat"]

    def test_byte_identical_without_possessives(self):
        # The possessive fix must not perturb any other input.
        cases = [
            "The Red Dog", "dog, on the left!", "2 dogs", "  ...  ",
            "the second car on my right", "all the blue balls",
            "left-most dog", "he is wearing a hat", "cats claws",
        ]
        for text in cases:
            import re

            legacy = re.findall(r"[a-z0-9]+", text.lower())
            assert tokenize(text) == legacy

    def test_unicode_accents_split(self):
        # Non-ASCII letters are not in the token alphabet; they split
        # words the same way legacy tokenize always did.
        assert tokenize("café dog") == ["caf", "dog"]

    def test_hyphenation(self):
        assert tokenize("left-most dog") == ["left", "most", "dog"]
        assert lex("left-most dog") == ["left-most", "dog"]

    def test_punctuation_only(self):
        assert tokenize("?!.,;") == []
        assert lex("?!.,;") == ["?", "!", ".", ",", ";"]


class TestLexer:
    def test_preserves_punctuation_and_boundaries(self):
        assert lex("A man. The hat!") == ["a", "man", ".", "the", "hat", "!"]

    def test_clitic_is_a_lexeme(self):
        assert lex("the man's hat") == ["the", "man", "'s", "hat"]

    def test_empty(self):
        assert lex("") == []

    def test_lossy_tokens_recoverable(self):
        # Dropping punctuation/clitics from lex() gives tokenize().
        for text in ["The man's hat.", "dog, left!", "a b . c"]:
            words = [w for w in lex(text)
                     if w[0].isalnum()]
            flat = []
            for word in words:
                flat.extend(tokenize(word))
            assert flat == tokenize(text)


class TestNormalizeQuery:
    def test_whitespace_and_case(self):
        assert normalize_query(" The red car. ") == "the red car"
        assert normalize_query("the red car") == "the red car"

    def test_idempotent(self):
        for query in [" The red car. ", "ALL the Blue balls",
                      "there is a dog .  the cat next to it"]:
            once = normalize_query(query)
            assert normalize_query(once) == once

    def test_preserves_token_sequence(self):
        for query in [" The red car. ", "the man's hat",
                      "there is a dog . the cat next to it!",
                      "left-most dog", ""]:
            assert tokenize(normalize_query(query)) == tokenize(query)

    def test_internal_sentence_breaks_survive(self):
        # Sentence structure is meaningful to the parser; only trailing
        # punctuation is dropped.
        normalized = normalize_query("There is a dog. The cat next to it.")
        assert normalized == "there is a dog . the cat next to it"


class TestVocabulary:
    def test_reserved_ids(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0 and vocab.unk_id == 1
        assert vocab.id_to_token(0) == PAD_TOKEN
        assert vocab.id_to_token(1) == UNK_TOKEN

    def test_add_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("dog")
        assert vocab.add("dog") == first
        assert len(vocab) == 3

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["dog"])
        assert vocab.token_to_id("zebra") == vocab.unk_id

    def test_from_corpus_deterministic(self):
        corpus = [["b", "a"], ["c", "a"]]
        v1 = Vocabulary.from_corpus(corpus)
        v2 = Vocabulary.from_corpus(corpus)
        assert [v1.id_to_token(i) for i in range(len(v1))] == [
            v2.id_to_token(i) for i in range(len(v2))
        ]

    def test_encode_pads_and_masks(self):
        vocab = Vocabulary(["red", "dog"])
        ids, mask = vocab.encode("red dog", max_length=4)
        assert ids.tolist()[2:] == [0, 0]
        assert mask.tolist() == [1, 1, 0, 0]

    def test_encode_truncates(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids, mask = vocab.encode(["a", "b", "c"], max_length=2)
        assert mask.sum() == 2

    def test_encode_accepts_token_list(self):
        vocab = Vocabulary(["dog"])
        ids, _ = vocab.encode(["dog"], max_length=2)
        assert ids[0] == vocab.token_to_id("dog")

    def test_decode_drops_padding(self):
        vocab = Vocabulary(["dog"])
        ids, _ = vocab.encode("dog", max_length=3)
        assert vocab.decode(ids) == ["dog"]

    def test_contains(self):
        vocab = Vocabulary(["dog"])
        assert "dog" in vocab and "cat" not in vocab


class TestPositions:
    def test_sinusoidal_shape_and_range(self):
        table = sinusoidal_position_table(10, 8)
        assert table.shape == (10, 8)
        assert np.all(np.abs(table) <= 1.0)

    def test_sinusoidal_rows_distinct(self):
        table = sinusoidal_position_table(6, 8)
        assert not np.allclose(table[0], table[1])

    def test_sinusoidal_requires_even_dim(self):
        with pytest.raises(ValueError):
            sinusoidal_position_table(4, 3)

    def test_learned_shape(self):
        assert learned_position_table(5, 6).shape == (5, 6)


class TestWord2Vec:
    def _corpus(self):
        return [
            ["red", "dog"], ["blue", "dog"], ["red", "car"], ["blue", "car"],
            ["red", "ball"], ["blue", "ball"], ["green", "dog"], ["green", "car"],
        ] * 10

    def test_training_reduces_loss(self):
        corpus = self._corpus()
        vocab = Vocabulary.from_corpus(corpus)
        model = SkipGramWord2Vec(vocab, dim=8)
        first = model.train(corpus, epochs=1)
        later = model.train(corpus, epochs=3)
        assert later < first

    def test_pad_row_stays_zero(self):
        corpus = self._corpus()
        vocab = Vocabulary.from_corpus(corpus)
        model = SkipGramWord2Vec(vocab, dim=8)
        model.train(corpus, epochs=1)
        assert np.allclose(model.embedding_matrix()[vocab.pad_id], 0.0)

    def test_colors_cluster(self):
        corpus = self._corpus()
        vocab = Vocabulary.from_corpus(corpus)
        model = SkipGramWord2Vec(vocab, dim=8)
        model.train(corpus, epochs=8)
        neighbours = model.most_similar("red", top_k=2)
        assert "blue" in neighbours or "green" in neighbours

    def test_embedding_matrix_shape(self):
        vocab = Vocabulary(["a", "b"])
        model = SkipGramWord2Vec(vocab, dim=4)
        assert model.embedding_matrix().shape == (4, 4)


class TestCorpus:
    def test_build_corpus_size_and_tokens(self):
        corpus = build_corpus(20)
        assert len(corpus) == 20
        assert all(isinstance(s, list) and s for s in corpus)
        assert all(t == t.lower() for s in corpus for t in s)
