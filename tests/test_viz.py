"""Visualisation: ASCII renderings and PPM output."""

import numpy as np
import pytest

from repro.viz import (
    draw_box,
    overlay_attention,
    render_attention_ascii,
    render_scene_ascii,
    save_ppm,
)


@pytest.fixture
def image(rng):
    return rng.random((3, 24, 36))


class TestAsciiAttention:
    def test_dimensions(self):
        art = render_attention_ascii(np.random.default_rng(0).random((4, 6)), width=2)
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 12 for line in lines)

    def test_hot_cell_uses_darker_char(self):
        attention = np.zeros((3, 3))
        attention[1, 1] = 1.0
        art = render_attention_ascii(attention, width=1)
        assert art.splitlines()[1][1] == "@"

    def test_box_markers_drawn(self):
        art = render_attention_ascii(np.zeros((4, 6)), box=np.array([8, 8, 24, 24]),
                                     stride=8.0)
        assert "[" in art and "]" in art

    def test_constant_map_no_crash(self):
        render_attention_ascii(np.ones((3, 3)))


class TestAsciiScene:
    def test_shape(self, image):
        art = render_scene_ascii(image, cell=4)
        assert len(art.splitlines()) == 6

    def test_markers(self, image):
        art = render_scene_ascii(image, target_box=np.array([0, 0, 8, 8]),
                                 predicted_box=np.array([20, 12, 32, 20]))
        assert "T" in art and "P" in art


class TestPPM:
    def test_file_format(self, image, tmp_path):
        path = str(tmp_path / "out.ppm")
        save_ppm(path, image)
        with open(path, "rb") as handle:
            header = handle.readline()
            dims = handle.readline()
            maxval = handle.readline()
            payload = handle.read()
        assert header.strip() == b"P6"
        assert dims.strip() == b"36 24"
        assert maxval.strip() == b"255"
        assert len(payload) == 24 * 36 * 3

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(str(tmp_path / "x.ppm"), np.zeros((24, 36)))

    def test_values_clipped(self, tmp_path):
        path = str(tmp_path / "clip.ppm")
        save_ppm(path, np.full((3, 2, 2), 5.0))
        with open(path, "rb") as handle:
            handle.readline(); handle.readline(); handle.readline()
            assert set(handle.read()) == {255}


class TestOverlayAndBox:
    def test_overlay_shape_and_range(self, image):
        out = overlay_attention(image, np.random.default_rng(1).random((4, 6)))
        assert out.shape == image.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_overlay_boosts_red_at_hot_spot(self, image):
        attention = np.zeros((4, 6))
        attention[0, 0] = 1.0
        out = overlay_attention(image * 0.0, attention)
        assert out[0, 0, 0] > out[1, 0, 0]

    def test_draw_box_edges(self, image):
        out = draw_box(image, np.array([4.0, 4.0, 12.0, 12.0]), color=(1.0, 0.0, 0.0))
        assert np.allclose(out[:, 4, 8], [1.0, 0.0, 0.0])
        assert not np.allclose(out[:, 8, 8], [1.0, 0.0, 0.0])

    def test_draw_box_does_not_mutate(self, image):
        before = image.copy()
        draw_box(image, np.array([0.0, 0.0, 10.0, 10.0]))
        assert np.array_equal(image, before)

    def test_draw_box_clips(self, image):
        out = draw_box(image, np.array([-10.0, -10.0, 100.0, 100.0]))
        assert out.shape == image.shape
