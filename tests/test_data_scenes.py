"""Scene model and generator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import PERSON_CATEGORY, Scene, SceneGenerator, SceneObject
from repro.detection import iou_matrix


def make_object(category="dog", color="red", box=(0, 0, 10, 10)):
    return SceneObject(category=category, color=color, box=np.asarray(box, dtype=float))


class TestSceneObject:
    def test_geometry(self):
        obj = make_object(box=(2, 3, 6, 11))
        assert obj.width == 4 and obj.height == 8
        assert obj.area == 32
        assert obj.center == (4.0, 7.0)


class TestScene:
    def test_same_category(self):
        scene = Scene(48, 72, [make_object(), make_object(), make_object("car")])
        assert len(scene.same_category(scene.objects[0])) == 2

    def test_category_counts(self):
        scene = Scene(48, 72, [make_object(), make_object("car")])
        assert scene.category_counts() == {"dog": 1, "car": 1}

    def test_contains_person(self):
        scene = Scene(48, 72, [make_object(PERSON_CATEGORY)])
        assert scene.contains_person()

    def test_boxes_empty(self):
        assert Scene(48, 72).boxes().shape == (0, 4)


class TestSceneGenerator:
    def test_boxes_inside_canvas(self):
        gen = SceneGenerator(rng=np.random.default_rng(0))
        for _ in range(10):
            scene = gen.generate()
            boxes = scene.boxes()
            assert np.all(boxes[:, 0] >= 0) and np.all(boxes[:, 1] >= 0)
            assert np.all(boxes[:, 2] <= scene.width)
            assert np.all(boxes[:, 3] <= scene.height)

    def test_overlap_bounded(self):
        gen = SceneGenerator(max_overlap_iou=0.08, rng=np.random.default_rng(1))
        scene = gen.generate()
        ious = iou_matrix(scene.boxes(), scene.boxes())
        np.fill_diagonal(ious, 0.0)
        assert ious.max() <= 0.08 + 1e-9

    def test_require_person_true(self):
        gen = SceneGenerator(rng=np.random.default_rng(2))
        scene = gen.generate(require_person=True)
        persons = [o for o in scene.objects if o.category == PERSON_CATEGORY]
        assert len(persons) >= 2

    def test_require_person_false(self):
        gen = SceneGenerator(rng=np.random.default_rng(3))
        for _ in range(5):
            scene = gen.generate(require_person=False)
            assert not scene.contains_person()

    def test_distinct_colors_within_category(self):
        gen = SceneGenerator(distinct_colors=True, rng=np.random.default_rng(4))
        for _ in range(8):
            scene = gen.generate()
            for obj in scene.objects:
                group = scene.same_category(obj)
                colors = [o.color for o in group]
                assert len(set(colors)) == len(colors)

    def test_density_controls_group_size(self):
        dense = SceneGenerator(same_type_density=3.9, rng=np.random.default_rng(5))
        sparse = SceneGenerator(same_type_density=1.6, rng=np.random.default_rng(6))
        dense_max = np.mean([max(dense.generate().category_counts().values()) for _ in range(10)])
        sparse_max = np.mean([max(sparse.generate().category_counts().values()) for _ in range(10)])
        assert dense_max > sparse_max

    def test_canvas_too_small_rejected(self):
        with pytest.raises(ValueError):
            SceneGenerator(height=10, width=10, min_size=10)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_generated_scenes_valid(seed):
    gen = SceneGenerator(rng=np.random.default_rng(seed))
    scene = gen.generate()
    assert len(scene.objects) >= 2
    for obj in scene.objects:
        assert obj.width > 0 and obj.height > 0
