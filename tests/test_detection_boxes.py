"""Box primitives: IoU, clipping, conversions, offset encode/decode."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    box_area,
    boxes_to_cxcywh,
    clip_boxes,
    cxcywh_to_boxes,
    decode_offsets,
    encode_offsets,
    iou_matrix,
)


def random_boxes(n, seed=0, size=50.0):
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0, size, size=(n, 2))
    wh = rng.uniform(1, size / 2, size=(n, 2))
    return np.concatenate([xy, xy + wh], axis=1)


class TestArea:
    def test_simple(self):
        assert box_area(np.array([0.0, 0.0, 2.0, 3.0])) == 6.0

    def test_degenerate_is_zero(self):
        assert box_area(np.array([5.0, 5.0, 3.0, 3.0])) == 0.0


class TestIoU:
    def test_identical_boxes(self):
        box = np.array([[0.0, 0.0, 4.0, 4.0]])
        assert np.isclose(iou_matrix(box, box)[0, 0], 1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0.0, 0.0, 1.0, 1.0]])
        b = np.array([[5.0, 5.0, 6.0, 6.0]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0.0, 0.0, 2.0, 2.0]])
        b = np.array([[1.0, 0.0, 3.0, 2.0]])
        assert np.isclose(iou_matrix(a, b)[0, 0], 2.0 / 6.0)

    def test_matrix_shape(self):
        assert iou_matrix(random_boxes(3), random_boxes(5, 1)).shape == (3, 5)

    def test_1d_inputs_promoted(self):
        a = np.array([0.0, 0.0, 2.0, 2.0])
        assert iou_matrix(a, a).shape == (1, 1)


class TestClip:
    def test_clips_to_bounds(self):
        boxes = np.array([[-5.0, -5.0, 100.0, 100.0]])
        out = clip_boxes(boxes, height=20, width=30)
        assert np.allclose(out, [[0, 0, 30, 20]])

    def test_does_not_mutate_input(self):
        boxes = np.array([[-1.0, 0.0, 5.0, 5.0]])
        clip_boxes(boxes, 4, 4)
        assert boxes[0, 0] == -1.0


class TestConversions:
    def test_roundtrip(self):
        boxes = random_boxes(10)
        assert np.allclose(cxcywh_to_boxes(boxes_to_cxcywh(boxes)), boxes)

    def test_center_values(self):
        c = boxes_to_cxcywh(np.array([0.0, 0.0, 4.0, 2.0]))
        assert np.allclose(c, [2.0, 1.0, 4.0, 2.0])


class TestOffsets:
    def test_encode_identity_is_zero(self):
        boxes = random_boxes(5)
        assert np.allclose(encode_offsets(boxes, boxes), 0.0, atol=1e-9)

    def test_decode_inverts_encode(self):
        anchors = random_boxes(8, 0)
        targets = random_boxes(8, 1)
        offsets = encode_offsets(anchors, targets)
        assert np.allclose(decode_offsets(anchors, offsets), targets, atol=1e-6)

    def test_decode_clamps_explosions(self):
        anchor = np.array([0.0, 0.0, 10.0, 10.0])
        crazy = np.array([0.0, 0.0, 100.0, 100.0])
        decoded = decode_offsets(anchor, crazy)
        assert np.all(np.isfinite(decoded))


@settings(max_examples=40, deadline=None)
@given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000))
def test_property_iou_symmetric_and_bounded(seed_a, seed_b):
    a, b = random_boxes(4, seed_a), random_boxes(3, seed_b)
    ious = iou_matrix(a, b)
    assert np.all(ious >= 0.0) and np.all(ious <= 1.0 + 1e-9)
    assert np.allclose(ious, iou_matrix(b, a).T)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_encode_decode_roundtrip(seed):
    anchors = random_boxes(6, seed)
    targets = random_boxes(6, seed + 1)
    recovered = decode_offsets(anchors, encode_offsets(anchors, targets))
    assert np.allclose(recovered, targets, atol=1e-5)
