"""Full YOLLO model, trainer, and Grounder wrapper."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import Grounder, YolloConfig, YolloModel, YolloTrainer
from repro.data import REFCOCO, build_dataset
from repro.data.loader import encode_batch


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(REFCOCO.scaled(0.04))


@pytest.fixture(scope="module")
def cfg(dataset):
    return YolloConfig(
        backbone="tiny", d_model=12, d_rel=16, ffn_hidden=16, head_hidden=16,
        num_rel2att=2, max_query_length=max(6, dataset.max_query_length),
        batch_size=4,
    )


@pytest.fixture(scope="module")
def model(dataset, cfg):
    return YolloModel(cfg, vocab_size=len(dataset.vocab))


class TestForward:
    def test_output_shapes(self, dataset, cfg, model):
        batch = encode_batch(dataset["train"][:2], dataset.vocab, cfg.max_query_length)
        out = model(Tensor(batch["images"]), batch["token_ids"], batch["token_mask"])
        num_anchors = model.anchor_grid.num_anchors
        assert out.cls_logits.shape == (2, num_anchors, 2)
        assert out.reg_offsets.shape == (2, num_anchors, 4)
        assert len(out.attention_masks) == cfg.num_rel2att

    def test_predictions_are_valid_boxes(self, dataset, cfg, model):
        batch = encode_batch(dataset["val"][:3], dataset.vocab, cfg.max_query_length)
        preds = model.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        assert len(preds) == 3
        for p in preds:
            x1, y1, x2, y2 = p.box
            assert 0 <= x1 <= x2 <= cfg.image_width
            assert 0 <= y1 <= y2 <= cfg.image_height
            assert 0.0 <= p.score <= 1.0
            assert p.attention_map.shape == (model.encoder.grid_h, model.encoder.grid_w)

    def test_predict_restores_train_mode(self, dataset, cfg, model):
        batch = encode_batch(dataset["val"][:1], dataset.vocab, cfg.max_query_length)
        model.train()
        model.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        assert model.training


class TestTrainer:
    def test_loss_decreases_on_fixed_batch(self, dataset, cfg):
        model = YolloModel(cfg, vocab_size=len(dataset.vocab))
        trainer = YolloTrainer(model, dataset, cfg)
        from repro.core.trainer import TrainingHistory

        batch = encode_batch(dataset["train"][:4], dataset.vocab, cfg.max_query_length)
        history = TrainingHistory()
        first = trainer._step(batch, history)
        for _ in range(15):
            last = trainer._step(batch, history)
        assert last < first

    def test_train_records_history_and_curve(self, dataset, cfg):
        model = YolloModel(cfg, vocab_size=len(dataset.vocab))
        trainer = YolloTrainer(model, dataset, cfg)
        history = trainer.train(epochs=1, eval_every=1, eval_samples=2)
        assert history.iterations == len(history.losses)
        assert history.curve.iterations  # at least one eval point
        assert len(history.loss_components) == history.iterations

    def test_save_load_preserves_predictions(self, dataset, cfg, tmp_path):
        model = YolloModel(cfg, vocab_size=len(dataset.vocab))
        path = str(tmp_path / "yollo.npz")
        model.save(path)
        clone = YolloModel(cfg, vocab_size=len(dataset.vocab))
        clone.load(path)
        batch = encode_batch(dataset["val"][:2], dataset.vocab, cfg.max_query_length)
        a = model.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        b = clone.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        assert np.allclose(a[0].box, b[0].box)


class TestClauseConditionedInference:
    def _masks(self, model, cfg, batch_size):
        n = cfg.max_query_length
        masks = np.zeros((batch_size, 2, n))
        masks[:, 0, :2] = 1.0
        masks[:, 1, 1:3] = 1.0
        return masks

    def test_predict_accepts_clause_masks(self, dataset, cfg, model):
        batch = encode_batch(dataset["val"][:2], dataset.vocab,
                             cfg.max_query_length)
        preds = model.predict(batch["images"], batch["token_ids"],
                              batch["token_mask"],
                              clause_masks=self._masks(model, cfg, 2))
        assert len(preds) == 2
        for p in preds:
            assert np.all(np.isfinite(p.box))
            assert 0.0 <= p.score <= 1.0

    def test_zero_masks_match_flat_predictions(self, dataset, cfg, model):
        """All-zero clause rows take the flat path bit-exactly."""
        batch = encode_batch(dataset["val"][:2], dataset.vocab,
                             cfg.max_query_length)
        flat = model.predict(batch["images"], batch["token_ids"],
                             batch["token_mask"])
        zero = model.predict(batch["images"], batch["token_ids"],
                             batch["token_mask"],
                             clause_masks=np.zeros(
                                 (2, 2, cfg.max_query_length)))
        for a, b in zip(flat, zero):
            assert np.array_equal(a.box, b.box)
            assert a.score == b.score

    def test_grounder_single_clause_bit_exact(self, dataset, cfg, model):
        """Single-clause queries compile to None masks: the conditioned
        grounder is bit-exact with the plain one."""
        flat = Grounder(model, dataset.vocab)
        conditioned = Grounder(model, dataset.vocab,
                               clause_conditioning=True)
        image = dataset["val"][0].image
        a = flat.ground(image, "the red dog")
        b = conditioned.ground(image, "the red dog")
        assert np.array_equal(a.box, b.box)
        assert a.score == b.score

    def test_grounder_compositional_query(self, dataset, cfg, model):
        grounder = Grounder(model, dataset.vocab, clause_conditioning=True)
        image = dataset["val"][0].image
        prediction = grounder.ground(
            image, "there is a red car . the dog next to it")
        assert np.all(np.isfinite(prediction.box))

    def test_checkpoint_roundtrip_in_clause_mode(self, dataset, cfg,
                                                 tmp_path):
        """Clause conditioning adds no parameters; old checkpoints load."""
        model = YolloModel(cfg, vocab_size=len(dataset.vocab))
        path = str(tmp_path / "yollo.npz")
        model.save(path)
        clone = YolloModel(cfg, vocab_size=len(dataset.vocab))
        clone.load(path)
        grounder = Grounder(clone, dataset.vocab, clause_conditioning=True)
        reference = Grounder(model, dataset.vocab, clause_conditioning=True)
        image = dataset["val"][0].image
        query = "the dog next to the car that is to the left of the lamp"
        a = reference.ground(image, query)
        b = grounder.ground(image, query)
        assert np.array_equal(a.box, b.box)


class TestGrounder:
    def test_ground_single_query(self, dataset, cfg, model):
        grounder = Grounder(model, dataset.vocab)
        sample = dataset["val"][0]
        prediction = grounder.ground(sample.image, sample.query)
        assert prediction.box.shape == (4,)

    def test_ground_batch_protocol(self, dataset, cfg, model):
        grounder = Grounder(model, dataset.vocab)
        boxes = grounder(dataset["val"][:3])
        assert boxes.shape == (3, 4)

    def test_unknown_words_handled(self, dataset, cfg, model):
        grounder = Grounder(model, dataset.vocab)
        prediction = grounder.ground(dataset["val"][0].image, "xyzzy plugh")
        assert np.all(np.isfinite(prediction.box))
