"""Dataset assembly and batching."""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    REFCOCO,
    REFCOCO_PLUS,
    REFCOCOG,
    build_dataset,
    dataset_statistics,
    encode_batch,
    PERSON_CATEGORY,
)
from repro.text import Vocabulary


@pytest.fixture(scope="module")
def small_refcoco():
    return build_dataset(REFCOCO.scaled(0.06))


class TestBuildDataset:
    def test_split_sizes(self, small_refcoco):
        spec = small_refcoco.spec
        for split, scenes in spec.scenes_per_split.items():
            assert len(small_refcoco[split]) == scenes * spec.queries_per_scene

    def test_refcocog_has_no_test_splits(self):
        ds = build_dataset(REFCOCOG.scaled(0.04))
        assert set(ds.split_names()) == {"train", "val"}

    def test_testA_targets_are_persons(self, small_refcoco):
        for sample in small_refcoco["testA"]:
            target = sample.scene.objects[sample.target_index]
            assert target.category == PERSON_CATEGORY

    def test_testB_has_no_persons(self, small_refcoco):
        for sample in small_refcoco["testB"]:
            assert not sample.scene.contains_person()

    def test_target_box_matches_scene_object(self, small_refcoco):
        for sample in small_refcoco["val"]:
            expected = sample.scene.objects[sample.target_index].box
            assert np.allclose(sample.target_box, expected)

    def test_images_match_spec_size(self, small_refcoco):
        sample = small_refcoco["train"][0]
        spec = small_refcoco.spec
        assert sample.image.shape == (3, spec.image_height, spec.image_width)

    def test_deterministic_given_seed(self):
        a = build_dataset(REFCOCO.scaled(0.03))
        b = build_dataset(REFCOCO.scaled(0.03))
        assert a["val"][0].query == b["val"][0].query
        assert np.allclose(a["val"][0].target_box, b["val"][0].target_box)

    def test_external_vocab_used(self):
        vocab = Vocabulary(["external"])
        ds = build_dataset(REFCOCO.scaled(0.03), vocab=vocab)
        assert ds.vocab is vocab

    def test_statistics_fields(self, small_refcoco):
        stats = dataset_statistics(small_refcoco)
        assert stats["queries"] == small_refcoco.num_samples()
        assert stats["avg_query_length"] > 1.0
        assert stats["avg_same_type"] >= 1.0

    def test_statistics_query_type_mix_plain_dataset(self, small_refcoco):
        stats = dataset_statistics(small_refcoco)
        # A classic dataset is 100% single-referent queries.
        assert stats["query_type_mix"] == {"single": 1.0}
        for split, info in stats["splits"].items():
            assert info["queries"] == len(small_refcoco[split])
            assert info["query_type_mix"] == {"single": 1.0}

    def test_statistics_length_histogram(self, small_refcoco):
        stats = dataset_statistics(small_refcoco)
        for split, info in stats["splits"].items():
            histogram = info["query_length_histogram"]
            assert sum(histogram.values()) == len(small_refcoco[split])
            lengths = sorted({len(s.tokens) for s in small_refcoco[split]})
            assert sorted(histogram) == lengths
            assert all(count > 0 for count in histogram.values())

    def test_statistics_scenario_mix_sums_to_one(self):
        from repro.experiments import ExperimentContext, get_preset

        context = ExperimentContext(preset=get_preset("smoke"))
        stats = dataset_statistics(context.scenario_dataset("crowded"))
        mix = stats["query_type_mix"]
        assert set(mix) <= {"single", "multi", "no_target"}
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix.get("no_target", 0.0) > 0.0
        # Multi/no-target samples carry no unique referent, so the
        # same-type density falls back to the single-referent subset.
        assert stats["targets"] <= stats["queries"]

    def test_statistics_clause_depth_histogram(self, small_refcoco):
        stats = dataset_statistics(small_refcoco)
        for split, info in stats["splits"].items():
            histogram = info["clause_depth_histogram"]
            assert sum(histogram.values()) == len(small_refcoco[split])
            assert all(depth >= 0 for depth in histogram)

    def test_statistics_compositional_depths_spread(self):
        from repro.experiments import ExperimentContext, get_preset

        context = ExperimentContext(preset=get_preset("smoke"))
        stats = dataset_statistics(
            context.scenario_dataset("compositional"))
        histogram = stats["splits"]["eval"]["clause_depth_histogram"]
        # Nested relative clauses must show up beyond depth one.
        assert max(histogram) >= 2

    def test_scaled_keeps_minimum(self):
        spec = REFCOCO.scaled(0.0001)
        assert min(spec.scenes_per_split.values()) >= 2


class TestBatching:
    def test_encode_batch_shapes(self, small_refcoco):
        samples = small_refcoco["train"][:4]
        batch = encode_batch(samples, small_refcoco.vocab, max_query_length=7)
        assert batch["images"].shape[0] == 4
        assert batch["token_ids"].shape == (4, 7)
        assert batch["token_mask"].shape == (4, 7)
        assert batch["target_boxes"].shape == (4, 4)

    def test_iterator_covers_all_samples(self, small_refcoco):
        it = BatchIterator(small_refcoco["train"], small_refcoco.vocab, 7,
                           batch_size=5, shuffle=False)
        total = sum(batch["images"].shape[0] for batch in it)
        assert total == len(small_refcoco["train"])

    def test_drop_last(self, small_refcoco):
        samples = small_refcoco["train"][:7]
        it = BatchIterator(samples, small_refcoco.vocab, 7, batch_size=5,
                           drop_last=True, shuffle=False)
        batches = list(it)
        assert len(batches) == 1
        assert len(it) == 1

    def test_len_without_drop(self, small_refcoco):
        samples = small_refcoco["train"][:7]
        it = BatchIterator(samples, small_refcoco.vocab, 7, batch_size=5)
        assert len(it) == 2

    def test_shuffle_changes_order(self, small_refcoco):
        samples = small_refcoco["train"]
        it = BatchIterator(samples, small_refcoco.vocab, 7, batch_size=len(samples),
                           shuffle=True, rng=np.random.default_rng(0))
        first = next(iter(it))["target_boxes"]
        unshuffled = np.stack([s.target_box for s in samples])
        assert not np.allclose(first, unshuffled)

    def test_invalid_batch_size(self, small_refcoco):
        with pytest.raises(ValueError):
            BatchIterator([], small_refcoco.vocab, 7, batch_size=0)
