"""YOLLO feature encoder."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import FeatureEncoder, YolloConfig


@pytest.fixture(scope="module")
def config():
    return YolloConfig(backbone="tiny", d_model=16, max_query_length=6)


@pytest.fixture(scope="module")
def encoder(config):
    return FeatureEncoder(config, vocab_size=20)


def test_image_sequence_shape(encoder, config):
    images = Tensor(np.random.default_rng(0).random((2, 3, 48, 72)))
    out = encoder.encode_image(images)
    assert out.shape == (2, encoder.num_regions, config.d_model)


def test_grid_shape(encoder):
    gh, gw = encoder.grid_shape()
    assert gh * gw == encoder.num_regions


def test_query_sequence_shape(encoder, config):
    ids = np.array([[1, 2, 3, 0, 0, 0]])
    out = encoder.encode_query(ids)
    assert out.shape == (1, 6, config.d_model)


def test_query_too_long_rejected(encoder):
    with pytest.raises(ValueError):
        encoder.encode_query(np.zeros((1, 10), dtype=np.int64))


def test_positions_make_order_matter(encoder):
    forward = encoder.encode_query(np.array([[2, 3]]))
    reverse = encoder.encode_query(np.array([[3, 2]]))
    assert not np.allclose(forward.data[0, 0], reverse.data[0, 1])


def test_region_positions_break_translation_invariance(encoder):
    """Two identical image rows still get distinct region features."""
    image = np.zeros((1, 3, 48, 72))
    out = encoder.encode_image(Tensor(image)).data[0]
    assert not np.allclose(out[0], out[1])


def test_sinusoidal_variant():
    config = YolloConfig(backbone="tiny", d_model=16, max_query_length=6,
                         learned_positions=False)
    encoder = FeatureEncoder(config, vocab_size=10)
    assert encoder.position_table is None
    out = encoder.encode_query(np.array([[1, 2]]))
    assert out.shape == (1, 2, 16)


def test_pretrained_embeddings_loaded():
    config = YolloConfig(backbone="tiny", d_model=16, max_query_length=6)
    matrix = np.full((20, 8), 0.5)
    encoder = FeatureEncoder(config, vocab_size=20, pretrained_embeddings=matrix)
    assert np.allclose(encoder.word_embedding.weight.data[:, :8], 0.5)


def test_pretrained_embeddings_row_mismatch():
    config = YolloConfig(backbone="tiny", d_model=16, max_query_length=6)
    with pytest.raises(ValueError):
        FeatureEncoder(config, vocab_size=20, pretrained_embeddings=np.zeros((5, 8)))


def test_forward_returns_both(encoder):
    images = Tensor(np.random.default_rng(1).random((1, 3, 48, 72)))
    v, t = encoder(images, np.array([[1, 2, 0, 0, 0, 0]]))
    assert v.shape[1] == encoder.num_regions
    assert t.shape[1] == 6


class TestDilatedContextEncoder:
    def test_preserves_feature_map_shape(self):
        from repro.core import DilatedContextEncoder

        context = DilatedContextEncoder(8, dilations=(1, 2, 3))
        x = Tensor(np.random.default_rng(3).random((2, 8, 6, 9)))
        assert context(x).shape == (2, 8, 6, 9)

    def test_residual_blocks_start_near_identity_scale(self):
        from repro.core import DilatedContextEncoder

        context = DilatedContextEncoder(8, dilations=(2,))
        x = Tensor(np.random.default_rng(4).random((1, 8, 5, 5)))
        out = context(x).data
        # residual form: the input signal passes through
        assert not np.allclose(out, 0.0)

    def test_rejects_empty_dilations(self):
        from repro.core import DilatedContextEncoder

        with pytest.raises(ValueError):
            DilatedContextEncoder(8, dilations=())

    def test_build_context_encoder_none_and_unknown(self):
        from repro.core.encoder import build_context_encoder

        none_cfg = YolloConfig(backbone="tiny", d_model=16,
                               max_query_length=6)
        assert build_context_encoder(none_cfg, 8) is None
        bad = none_cfg.with_overrides(context_encoder="fancy")
        with pytest.raises(ValueError, match="fancy"):
            build_context_encoder(bad, 8)

    def test_encoder_with_context_keeps_region_grid(self):
        cfg = YolloConfig(backbone="tiny", d_model=16, max_query_length=6,
                          context_encoder="dilated",
                          encoder_dilations=(1, 2))
        enc = FeatureEncoder(cfg, vocab_size=20)
        assert enc.context is not None
        images = Tensor(np.random.default_rng(5).random((2, 3, 48, 72)))
        out = enc.encode_image(images)
        assert out.shape == (2, enc.num_regions, cfg.d_model)

    def test_context_changes_features(self):
        base = YolloConfig(backbone="tiny", d_model=16, max_query_length=6)
        from repro.utils import seed_everything

        seed_everything(11)
        plain = FeatureEncoder(base, vocab_size=20)
        seed_everything(11)
        dilated = FeatureEncoder(
            base.with_overrides(context_encoder="dilated"), vocab_size=20)
        images = Tensor(np.random.default_rng(6).random((1, 3, 48, 72)))
        assert not np.allclose(plain.encode_image(images).data,
                               dilated.encode_image(images).data)
