"""Word2Pix fusion: cross-attention shapes, padding, grads, stack wiring."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import Word2PixModule, Word2PixStack, YolloConfig
from repro.core.word2pix import build_fusion_stack


def config(**overrides):
    base = YolloConfig(backbone="tiny", d_model=8, d_rel=12, ffn_hidden=10,
                       max_query_length=4, num_rel2att=2)
    return base.with_overrides(**overrides) if overrides else base


def sequences(m=6, n=3, batch=2, seed=0):
    rng = np.random.default_rng(seed)
    v = Tensor(rng.normal(size=(batch, m, 8)), requires_grad=True)
    t = Tensor(rng.normal(size=(batch, n, 8)), requires_grad=True)
    return v, t


class TestWord2PixModule:
    def test_output_shapes(self):
        module = Word2PixModule(config())
        v, t = sequences()
        attended_v, att_v = module(v, t)
        assert attended_v.shape == v.shape
        assert att_v.shape == (2, 6)

    def test_padding_tokens_do_not_change_output(self):
        """A masked-out word must be invisible to every pixel."""
        module = Word2PixModule(config())
        v, t = sequences()
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0]])
        base_out, base_att = module(v, t, token_mask=mask)
        # clobber the padded word's features: nothing may move
        poked = Tensor(t.data.copy())
        poked.data[:, 2, :] = 1e3
        poked_out, poked_att = module(v, poked, token_mask=mask)
        assert np.allclose(base_out.data, poked_out.data)
        assert np.allclose(base_att.data, poked_att.data)

    def test_no_mask_means_all_words_count(self):
        module = Word2PixModule(config())
        v, t = sequences()
        out_none, _ = module(v, t)
        poked = Tensor(t.data.copy())
        poked.data[:, 2, :] += 1.0
        out_poked, _ = module(v, poked)
        assert not np.allclose(out_none.data, out_poked.data)

    def test_grads_flow_to_both_streams_and_weights(self):
        module = Word2PixModule(config())
        v, t = sequences()
        attended_v, _ = module(v, t)
        attended_v.sum().backward()
        assert v.grad is not None and np.abs(v.grad).sum() > 0
        assert t.grad is not None and np.abs(t.grad).sum() > 0
        assert module.query_proj.weight.grad is not None


class TestWord2PixStack:
    def test_stack_shapes_and_attention_masks(self):
        stack = Word2PixStack(config())
        v, t = sequences()
        out, masks = stack(v, t)
        assert out.shape == v.shape
        assert len(masks) == 2
        for mask in masks:
            assert mask.shape == (2, 6)

    def test_residual_composition(self):
        """Each block adds to the visual stream (query side is static)."""
        stack = Word2PixStack(config(num_rel2att=1))
        v, t = sequences()
        out, _ = stack(v, t)
        assert not np.allclose(out.data, v.data)

    def test_clause_masks_kwarg_ignored(self):
        """Word2Pix attention is already per-word; the clause kwarg is
        accepted for interface parity and must not change the output."""
        stack = Word2PixStack(config())
        v, t = sequences()
        out_plain, _ = stack(v, t)
        masks = np.zeros((2, 2, 3))
        masks[:, 0, :2] = 1.0
        masks[:, 1, 1:] = 1.0
        out_masked, _ = stack(v, t, clause_masks=masks)
        assert np.array_equal(out_plain.data, out_masked.data)

    def test_state_dict_layout_mirrors_rel2att(self):
        """Both fusion stacks key their blocks ``blocks.layer{i}.`` so the
        model's state-dict prefix is fusion-agnostic."""
        stack = Word2PixStack(config())
        keys = stack.state_dict().keys()
        assert any(key.startswith("blocks.layer0.") for key in keys)
        assert any(key.startswith("blocks.layer1.") for key in keys)
        assert "blocks.layer0.att_gain" in keys


class TestBuildFusionStack:
    def test_rel2att_default(self):
        from repro.core import Rel2AttStack

        assert isinstance(build_fusion_stack(config()), Rel2AttStack)

    def test_word2pix_selected(self):
        stack = build_fusion_stack(config(fusion="word2pix"))
        assert isinstance(stack, Word2PixStack)

    def test_unknown_fusion_lists_valid(self):
        bad = config(fusion="concat")
        with pytest.raises(ValueError) as excinfo:
            build_fusion_stack(bad)
        message = str(excinfo.value)
        assert "concat" in message
        assert "rel2att" in message and "word2pix" in message


class TestYolloWithWord2Pix:
    def test_full_model_forward_and_loss(self):
        from repro.core import YolloModel, yollo_loss

        cfg = config(fusion="word2pix", head_hidden=12)
        model = YolloModel(cfg, vocab_size=20)
        rng = np.random.default_rng(9)
        images = Tensor(rng.random((2, 3, cfg.image_height, cfg.image_width)))
        token_ids = np.array([[1, 2, 0, 0], [3, 4, 5, 0]])
        token_mask = np.array([[1.0, 1, 0, 0], [1, 1, 1, 0]])
        out = model(images, token_ids, token_mask)
        assert out.cls_logits.shape[0] == 2
        targets = np.array([[20.0, 20.0, 80.0, 80.0],
                            [10.0, 30.0, 60.0, 90.0]])
        breakdown = yollo_loss(out.attention_masks, out.cls_logits,
                               out.reg_offsets, targets, model.anchor_grid,
                               cfg)
        loss = breakdown.total
        assert np.isfinite(float(loss.data))
        loss.backward()
        grad = model.rel2att.blocks.layer0.query_proj.weight.grad
        assert grad is not None and np.abs(grad).sum() > 0
