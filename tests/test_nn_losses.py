"""Loss functions: cross-entropy, BCE, smooth-L1, margin ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, gradient_check
from repro.nn import (
    binary_cross_entropy_with_logits,
    margin_ranking_loss,
    smooth_l1,
    softmax_cross_entropy,
)


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestSoftmaxCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        targets = np.array([2])
        expected = -np.log(np.exp(3.0) / np.exp([1.0, 2.0, 3.0]).sum())
        loss = softmax_cross_entropy(Tensor(logits), targets)
        assert np.isclose(float(loss.data), expected)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0]]))
        assert float(softmax_cross_entropy(logits, np.array([0])).data) < 1e-6

    def test_weights_ignore_entries(self):
        logits = make((4, 3))
        targets = np.array([0, 1, 2, 0])
        weights = np.array([1.0, 1.0, 0.0, 0.0])
        weighted = softmax_cross_entropy(logits, targets, weights=weights)
        # Same mean over the two active entries.
        manual = softmax_cross_entropy(Tensor(logits.data[:2]), targets[:2])
        assert np.isclose(float(weighted.data), float(manual.data))

    def test_3d_logits(self):
        logits = make((2, 3, 5))
        targets = np.zeros((2, 3), dtype=np.int64)
        assert softmax_cross_entropy(logits, targets).size == 1

    def test_grad(self):
        gradient_check(
            lambda l: softmax_cross_entropy(l, np.array([0, 1, 2])), [make((3, 4))]
        )


class TestBCEWithLogits:
    def test_matches_naive_for_small_logits(self):
        logits = make((3, 4))
        targets = (np.random.default_rng(1).random((3, 4)) > 0.5).astype(float)
        probs = 1 / (1 + np.exp(-logits.data))
        naive = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert np.isclose(float(binary_cross_entropy_with_logits(logits, targets).data), naive)

    def test_stable_with_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(float(loss.data))
        assert float(loss.data) < 1e-6

    def test_grad(self):
        targets = (np.random.default_rng(2).random((3, 3)) > 0.5).astype(float)
        gradient_check(
            lambda l: binary_cross_entropy_with_logits(l, targets), [make((3, 3))]
        )


class TestSmoothL1:
    def test_quadratic_region(self):
        loss = smooth_l1(Tensor(np.array([0.4])), np.array([0.0]))
        assert np.isclose(loss.data[0], 0.5 * 0.4**2)

    def test_linear_region(self):
        loss = smooth_l1(Tensor(np.array([3.0])), np.array([0.0]))
        assert np.isclose(loss.data[0], 3.0 - 0.5)

    def test_beta_changes_crossover(self):
        loss = smooth_l1(Tensor(np.array([1.5])), np.array([0.0]), beta=2.0)
        assert np.isclose(loss.data[0], 1.5**2 / 4.0)

    def test_grad(self):
        gradient_check(lambda p: smooth_l1(p, np.zeros((3, 4))), [make((3, 4))])


class TestMarginRanking:
    def test_zero_when_separated(self):
        loss = margin_ranking_loss(Tensor(np.array(2.0)), Tensor(np.array([0.0])), 0.5)
        assert float(loss.data) == 0.0

    def test_penalises_violations(self):
        loss = margin_ranking_loss(Tensor(np.array(0.0)), Tensor(np.array([1.0])), 0.5)
        assert np.isclose(float(loss.data), 1.5)

    def test_grad(self):
        pos, neg = make((1,)), make((4,), 1)
        gradient_check(lambda p, n: margin_ranking_loss(p.sum(), n, 0.3), [pos, neg])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), classes=st.integers(2, 6))
def test_property_cross_entropy_nonnegative(seed, classes):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(4, classes)))
    targets = rng.integers(0, classes, size=4)
    assert float(softmax_cross_entropy(logits, targets).data) >= 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_smooth_l1_symmetric(seed):
    rng = np.random.default_rng(seed)
    diff = rng.normal(size=5)
    a = smooth_l1(Tensor(diff), np.zeros(5)).data
    b = smooth_l1(Tensor(-diff), np.zeros(5)).data
    assert np.allclose(a, b)
