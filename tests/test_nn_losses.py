"""Loss functions: cross-entropy, BCE, smooth-L1, margin ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, gradient_check
from repro.nn import (
    binary_cross_entropy_with_logits,
    margin_ranking_loss,
    smooth_l1,
    softmax_cross_entropy,
)


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestSoftmaxCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        targets = np.array([2])
        expected = -np.log(np.exp(3.0) / np.exp([1.0, 2.0, 3.0]).sum())
        loss = softmax_cross_entropy(Tensor(logits), targets)
        assert np.isclose(float(loss.data), expected)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0]]))
        assert float(softmax_cross_entropy(logits, np.array([0])).data) < 1e-6

    def test_weights_ignore_entries(self):
        logits = make((4, 3))
        targets = np.array([0, 1, 2, 0])
        weights = np.array([1.0, 1.0, 0.0, 0.0])
        weighted = softmax_cross_entropy(logits, targets, weights=weights)
        # Same mean over the two active entries.
        manual = softmax_cross_entropy(Tensor(logits.data[:2]), targets[:2])
        assert np.isclose(float(weighted.data), float(manual.data))

    def test_3d_logits(self):
        logits = make((2, 3, 5))
        targets = np.zeros((2, 3), dtype=np.int64)
        assert softmax_cross_entropy(logits, targets).size == 1

    def test_grad(self):
        gradient_check(
            lambda l: softmax_cross_entropy(l, np.array([0, 1, 2])), [make((3, 4))]
        )


class TestBCEWithLogits:
    def test_matches_naive_for_small_logits(self):
        logits = make((3, 4))
        targets = (np.random.default_rng(1).random((3, 4)) > 0.5).astype(float)
        probs = 1 / (1 + np.exp(-logits.data))
        naive = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert np.isclose(float(binary_cross_entropy_with_logits(logits, targets).data), naive)

    def test_stable_with_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(float(loss.data))
        assert float(loss.data) < 1e-6

    def test_grad(self):
        targets = (np.random.default_rng(2).random((3, 3)) > 0.5).astype(float)
        gradient_check(
            lambda l: binary_cross_entropy_with_logits(l, targets), [make((3, 3))]
        )


class TestSmoothL1:
    def test_quadratic_region(self):
        loss = smooth_l1(Tensor(np.array([0.4])), np.array([0.0]))
        assert np.isclose(loss.data[0], 0.5 * 0.4**2)

    def test_linear_region(self):
        loss = smooth_l1(Tensor(np.array([3.0])), np.array([0.0]))
        assert np.isclose(loss.data[0], 3.0 - 0.5)

    def test_beta_changes_crossover(self):
        loss = smooth_l1(Tensor(np.array([1.5])), np.array([0.0]), beta=2.0)
        assert np.isclose(loss.data[0], 1.5**2 / 4.0)

    def test_grad(self):
        gradient_check(lambda p: smooth_l1(p, np.zeros((3, 4))), [make((3, 4))])


class TestMarginRanking:
    def test_zero_when_separated(self):
        loss = margin_ranking_loss(Tensor(np.array(2.0)), Tensor(np.array([0.0])), 0.5)
        assert float(loss.data) == 0.0

    def test_penalises_violations(self):
        loss = margin_ranking_loss(Tensor(np.array(0.0)), Tensor(np.array([1.0])), 0.5)
        assert np.isclose(float(loss.data), 1.5)

    def test_grad(self):
        pos, neg = make((1,)), make((4,), 1)
        gradient_check(lambda p, n: margin_ranking_loss(p.sum(), n, 0.3), [pos, neg])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), classes=st.integers(2, 6))
def test_property_cross_entropy_nonnegative(seed, classes):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(4, classes)))
    targets = rng.integers(0, classes, size=4)
    assert float(softmax_cross_entropy(logits, targets).data) >= 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_smooth_l1_symmetric(seed):
    rng = np.random.default_rng(seed)
    diff = rng.normal(size=5)
    a = smooth_l1(Tensor(diff), np.zeros(5)).data
    b = smooth_l1(Tensor(-diff), np.zeros(5)).data
    assert np.allclose(a, b)


class TestSigmoidFocalLoss:
    def test_gamma_zero_no_alpha_is_exactly_bce(self):
        from repro.nn import sigmoid_focal_loss

        logits = make((4, 6), seed=3)
        targets = (np.random.default_rng(4).random((4, 6)) > 0.5).astype(float)
        focal = sigmoid_focal_loss(logits, targets, alpha=None, gamma=0.0)
        bce = binary_cross_entropy_with_logits(
            Tensor(logits.data), targets)
        assert float(focal.data) == float(bce.data), (
            "gamma=0 + alpha=None must reduce to BCE bit-for-bit")

    def test_weighted_reduction_matches_bce_at_gamma_zero(self):
        from repro.nn import sigmoid_focal_loss

        logits = make((8,), seed=5)
        targets = np.array([1.0, 0, 1, 0, 1, 0, 1, 0])
        weights = np.array([1.0, 1, 0, 0, 1, 1, 0, 0])
        focal = sigmoid_focal_loss(logits, targets, alpha=None, gamma=0.0,
                                   weights=weights)
        bce = binary_cross_entropy_with_logits(
            Tensor(logits.data), targets, weights=weights)
        assert float(focal.data) == float(bce.data)

    def test_modulation_downweights_easy_examples(self):
        from repro.nn import sigmoid_focal_loss

        # A confidently-correct positive (easy) vs an uncertain one
        # (hard): focal must shrink the easy example's share far more.
        easy = Tensor(np.array([6.0]), requires_grad=True)
        hard = Tensor(np.array([0.1]), requires_grad=True)
        targets = np.array([1.0])
        for logits in (easy, hard):
            bce = sigmoid_focal_loss(logits, targets, alpha=None, gamma=0.0)
            focal = sigmoid_focal_loss(logits, targets, alpha=None, gamma=2.0)
            ratio = float(focal.data) / float(bce.data)
            if logits is easy:
                easy_ratio = ratio
            else:
                hard_ratio = ratio
        assert easy_ratio < hard_ratio < 1.0

    def test_alpha_balances_classes(self):
        from repro.nn import sigmoid_focal_loss

        logits = Tensor(np.zeros(2))
        positive = sigmoid_focal_loss(logits, np.array([1.0, 1.0]),
                                      alpha=0.25, gamma=0.0)
        negative = sigmoid_focal_loss(logits, np.array([0.0, 0.0]),
                                      alpha=0.25, gamma=0.0)
        # identical logits, symmetric targets: only alpha distinguishes
        assert float(positive.data) == pytest.approx(
            float(negative.data) / 3.0)

    def test_grad(self):
        from repro.nn import sigmoid_focal_loss

        targets = (np.random.default_rng(7).random((3, 4)) > 0.5).astype(float)
        gradient_check(
            lambda l: sigmoid_focal_loss(l, targets, alpha=0.25, gamma=2.0),
            [make((3, 4), seed=8)],
        )

    def test_grad_gamma_one(self):
        from repro.nn import sigmoid_focal_loss

        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        gradient_check(
            lambda l: sigmoid_focal_loss(l, targets, alpha=None, gamma=1.0),
            [make((2, 2), seed=9)],
        )

    def test_rejects_negative_gamma(self):
        from repro.nn import sigmoid_focal_loss

        with pytest.raises(ValueError):
            sigmoid_focal_loss(make((2, 2)), np.zeros((2, 2)), gamma=-1.0)
