"""Serving fleet: routing, backpressure, deadlines, respawn, hot reload.

The multi-process tests are marked ``dist`` (included in the tier-1 run,
like ``test_dist.py``) and every test in this module runs under a
``faulthandler`` watchdog: a hung fleet dumps all thread stacks and
kills the test run instead of wedging CI.
"""

import faulthandler
import time

import numpy as np
import pytest

from repro.data.refcoco import GroundingSample
from repro.runtime import CheckpointManager, FaultPlan
from repro.serve import (
    DeadlineExceeded,
    FleetConfig,
    FleetRouter,
    FleetStopped,
    LatencyGrounder,
    Overloaded,
    ReloadError,
    ReplicaSpec,
    build_latency_grounder,
    run_soak,
    state_checksum,
    timed_trace,
)
from repro.utils.seeding import spawn_rng


@pytest.fixture(autouse=True)
def _watchdog():
    """Dump all stacks and abort if any fleet test wedges for 120s."""
    faulthandler.dump_traceback_later(120.0, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def make_samples(count, shape=(8, 8, 3), seed_name="fleet-samples"):
    rng = spawn_rng(seed_name)
    return [
        GroundingSample(
            image=rng.random(shape), query=f"object number {i}",
            tokens=[], target_box=np.zeros(4), target_index=-1,
            scene=None, split="test",
        )
        for i in range(count)
    ]


def latency_spec(latency=0.002, **overrides):
    kwargs = dict(
        builder=build_latency_grounder,
        builder_kwargs={"latency": latency},
        max_batch=4,
        cache_size=0,
    )
    kwargs.update(overrides)
    return ReplicaSpec(**kwargs)


def save_checkpoint(tmp_path, version, bias):
    manager = CheckpointManager(str(tmp_path))
    state = {"version": np.array([float(version)]),
             "bias": np.array([float(bias)])}
    return manager.save(state, int(version)), state


# ----------------------------------------------------------------------
# Pure-logic units (no subprocesses)
# ----------------------------------------------------------------------
class TestChecksum:
    def test_checksum_ignores_dtype_and_order(self):
        a = {"w": np.arange(6, dtype=np.float32).reshape(2, 3),
             "b": np.ones(3, dtype=np.float32)}
        b = {"b": np.ones(3, dtype=np.float64),
             "w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        assert state_checksum(a) == state_checksum(b)

    def test_checksum_distinguishes_values_and_shapes(self):
        base = {"w": np.zeros((2, 3))}
        assert state_checksum(base) != state_checksum({"w": np.ones((2, 3))})
        assert state_checksum(base) != state_checksum({"w": np.zeros((3, 2))})
        assert state_checksum(base) != state_checksum({"v": np.zeros((2, 3))})


class TestTimedTrace:
    def test_same_seed_same_trace(self):
        samples = make_samples(4)
        one = timed_trace(samples, 20, rate_qps=100.0, rng=spawn_rng("t"))
        two = timed_trace(samples, 20, rate_qps=100.0, rng=spawn_rng("t"))
        assert [r.arrival for r in one] == [r.arrival for r in two]
        assert [r.query for r in one] == [r.query for r in two]

    def test_arrivals_are_increasing_at_requested_rate(self):
        samples = make_samples(2)
        trace = timed_trace(samples, 200, rate_qps=50.0, rng=spawn_rng("t2"))
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals)
        mean_gap = arrivals[-1] / len(arrivals)
        assert 0.5 / 50.0 < mean_gap < 2.0 / 50.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            timed_trace(make_samples(1), 5, rate_qps=0.0)


class TestReplicaKillPlan:
    def test_fires_once_on_the_scheduled_ordinal(self):
        from repro.runtime.faults import SimulatedCrash

        plan = FaultPlan(kill_replica_on_request={1: 3})
        plan.on_replica_request(1, 1)
        plan.on_replica_request(1, 2)
        with pytest.raises(SimulatedCrash):
            plan.on_replica_request(1, 3)
        # fire-once: the same (kind, key) never trips again
        plan.on_replica_request(1, 3)
        plan.on_replica_request(0, 3)


class TestFleetConfig:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            FleetConfig(replicas=0)
        with pytest.raises(ValueError):
            FleetConfig(max_queue=0)
        with pytest.raises(ValueError):
            FleetConfig(retry_attempts=0)


# ----------------------------------------------------------------------
# Live fleets (spawned subprocess replicas)
# ----------------------------------------------------------------------
@pytest.mark.dist
class TestFleetServing:
    def test_requests_route_and_all_resolve(self):
        samples = make_samples(5)
        cfg = FleetConfig(replicas=2, max_queue=64, default_deadline=15.0)
        with FleetRouter(latency_spec(), cfg) as router:
            assert router.wait_healthy(60.0)
            futures = [router.submit(s.image, s.query)
                       for s in samples for _ in range(4)]
            boxes = [f.result(timeout=30.0) for f in futures]
        for box, sample in zip(boxes, [s for s in samples for _ in range(4)]):
            assert box.shape == (4,)
            assert box[0] == pytest.approx(float(sample.image.sum()))
        stats = router.stats()
        assert stats.completed == len(futures)
        assert stats.shed == 0
        # least-loaded routing used both replicas
        assert sum(1 for r in stats.replicas if r["served"] > 0) == 2

    def test_overload_sheds_with_typed_rejection(self):
        samples = make_samples(2)
        cfg = FleetConfig(replicas=1, max_queue=2, max_replica_inflight=1,
                          default_deadline=30.0)
        with FleetRouter(latency_spec(latency=0.05, max_batch=1), cfg) \
                as router:
            assert router.wait_healthy(60.0)
            futures = [router.submit(samples[i % 2].image, f"burst {i}")
                       for i in range(10)]
            outcomes = {"ok": 0, "shed": 0}
            for future in futures:
                try:
                    future.result(timeout=60.0)
                    outcomes["ok"] += 1
                except Overloaded:
                    outcomes["shed"] += 1
        assert outcomes["shed"] >= 1, "bounded queue never shed load"
        assert outcomes["ok"] >= 1
        assert outcomes["ok"] + outcomes["shed"] == 10
        assert router.stats().shed == outcomes["shed"]

    def test_deadline_retries_then_types_out(self):
        samples = make_samples(1)
        cfg = FleetConfig(replicas=2, max_queue=16,
                          retry_attempts=2, retry_base_delay=0.001,
                          retry_max_delay=0.01)
        # every forward takes 0.4s; a 0.05s deadline can never be met
        with FleetRouter(latency_spec(latency=0.4, max_batch=1), cfg) \
                as router:
            assert router.wait_healthy(60.0)
            future = router.submit(samples[0].image, samples[0].query,
                                   deadline=0.05)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30.0)
        stats = router.stats()
        assert stats.retries >= 1, "expired attempt was not retried"
        assert stats.deadline_exceeded == 1

    def test_crash_respawns_and_loses_nothing(self):
        samples = make_samples(4)
        plan = FaultPlan(kill_replica_on_request={0: 2})
        cfg = FleetConfig(replicas=2, max_queue=64, default_deadline=20.0,
                          heartbeat_timeout=3.0)
        with FleetRouter(latency_spec(fault_plan=plan), cfg) as router:
            assert router.wait_healthy(60.0)
            futures = [router.submit(samples[i % 4].image, f"req {i}")
                       for i in range(24)]
            boxes = [f.result(timeout=60.0) for f in futures]
            assert len(boxes) == 24
            assert router.wait_healthy(60.0), "replica count not restored"
        stats = router.stats()
        assert stats.respawns >= 1
        assert stats.completed == 24
        assert any(r["generation"] >= 1 for r in stats.replicas)

    def test_post_stop_submit_resolves_with_fleet_stopped(self):
        cfg = FleetConfig(replicas=1, max_queue=4)
        router = FleetRouter(latency_spec(), cfg).start()
        assert router.wait_healthy(60.0)
        router.stop()
        future = router.submit(np.ones((4, 4, 3)), "late request")
        with pytest.raises(FleetStopped):
            future.result(timeout=5.0)


@pytest.mark.dist
class TestHotReload:
    def test_rolling_reload_swaps_weights_without_drops(self, tmp_path):
        samples = make_samples(3)
        ckpt, state = save_checkpoint(tmp_path, version=7, bias=3)
        cfg = FleetConfig(replicas=2, max_queue=64, default_deadline=20.0)
        with FleetRouter(latency_spec(), cfg) as router:
            assert router.wait_healthy(60.0)
            before = router.ground(samples[0].image, samples[0].query)
            assert before[2] == 0.0 and before[3] == 1.0
            report = router.reload_weights(ckpt, timeout=60.0)
            assert report.checksum == state_checksum(state)
            assert len(report.replicas) == 2
            assert all(r["checksum"] == report.checksum
                       for r in report.replicas)
            after = router.ground(samples[0].image, samples[0].query)
            assert after[2] == 7.0 and after[3] == 3.0
        assert router.stats().reloads == 1

    def test_corrupt_checkpoint_is_rejected_before_any_replica(
            self, tmp_path):
        from repro.runtime import CheckpointCorruptError, corrupt_file

        ckpt, _ = save_checkpoint(tmp_path, version=9, bias=9)
        corrupt_file(ckpt)
        cfg = FleetConfig(replicas=1, max_queue=8)
        with FleetRouter(latency_spec(), cfg) as router:
            assert router.wait_healthy(60.0)
            with pytest.raises(CheckpointCorruptError):
                router.reload_weights(ckpt)
            # fleet still serves the old weights
            box = router.ground(np.ones((4, 4, 3)), "still up")
            assert box[2] == 0.0 and box[3] == 1.0

    def test_respawned_replica_joins_at_reloaded_weights(self, tmp_path):
        from repro.runtime.faults import SimulatedCrash  # noqa: F401

        samples = make_samples(2)
        ckpt, _ = save_checkpoint(tmp_path, version=5, bias=2)
        plan = FaultPlan(kill_replica_on_request={0: 1})
        cfg = FleetConfig(replicas=1, max_queue=16, default_deadline=20.0,
                          heartbeat_timeout=3.0)
        with FleetRouter(latency_spec(fault_plan=plan), cfg) as router:
            assert router.wait_healthy(60.0)
            report = router.reload_weights(ckpt, timeout=60.0)
            assert len(report.replicas) == 1
            # first request kills generation 0; the respawn must come
            # back at the *reloaded* weights, not the built-in defaults
            box = router.ground(samples[0].image, samples[0].query,
                                timeout=120.0)
            assert box[2] == 5.0 and box[3] == 2.0
        assert router.stats().respawns >= 1


@pytest.mark.dist
class TestRouterCache:
    """Router-tier shared cache + reload invalidation, end to end."""

    def test_hit_skips_replica_round_trip_and_is_mutation_safe(self):
        samples = make_samples(1)
        cfg = FleetConfig(replicas=2, max_queue=32, default_deadline=20.0,
                          router_cache=32)
        with FleetRouter(latency_spec(), cfg) as router:
            assert router.wait_healthy(60.0)
            first = router.ground(samples[0].image, samples[0].query)
            first[:] = -1.0  # clobbering the returned box ...
            second = router.ground(samples[0].image, samples[0].query)
            stats = router.stats()
        assert second[0] == pytest.approx(float(samples[0].image.sum()))
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.cache_hit_rate == pytest.approx(0.5)
        # the hit never reached a replica
        assert sum(r["served"] for r in stats.replicas) == 1

    def test_query_variants_share_entries_across_tiers(self):
        """Whitespace/case variants of one query normalise at the router
        front door: one router-cache entry, one replica round trip.
        Replica caches are on too, so a missed normalisation would show
        up as extra replica serves at either tier."""
        samples = make_samples(1)
        cfg = FleetConfig(replicas=2, max_queue=32, default_deadline=20.0,
                          router_cache=32)
        with FleetRouter(latency_spec(cache_size=16), cfg) as router:
            assert router.wait_healthy(60.0)
            first = router.ground(samples[0].image, "the red car")
            for variant in ["  The red car. ", "THE RED CAR",
                            "the  red\tcar!"]:
                again = router.ground(samples[0].image, variant)
                assert again.tobytes() == first.tobytes()
            stats = router.stats()
        assert stats.cache_hits == 3 and stats.cache_misses == 1
        assert sum(r["served"] for r in stats.replicas) == 1

    def test_reload_flushes_replica_lru(self, tmp_path):
        """THE headline regression: replica-private LRUs must be cleared
        by the reload message, or repeats keep serving old-weight boxes.

        Router cache off so the replica LRU is the only cache in play.
        """
        samples = make_samples(1)
        ckpt, _ = save_checkpoint(tmp_path, version=7, bias=3)
        cfg = FleetConfig(replicas=1, max_queue=16, default_deadline=20.0,
                          router_cache=0)
        with FleetRouter(latency_spec(cache_size=16), cfg) as router:
            assert router.wait_healthy(60.0)
            before = router.ground(samples[0].image, samples[0].query)
            assert before[2] == 0.0 and before[3] == 1.0
            # warm the replica LRU with the old-weight box
            router.ground(samples[0].image, samples[0].query)
            router.reload_weights(ckpt, timeout=60.0)
            after = router.ground(samples[0].image, samples[0].query)
        assert after[2] == 7.0 and after[3] == 3.0, (
            f"stale box served from unflushed replica LRU: {after.tolist()}")

    def test_completed_reload_bumps_epoch_and_invalidates(self, tmp_path):
        samples = make_samples(1)
        ckpt, _ = save_checkpoint(tmp_path, version=4, bias=6)
        cfg = FleetConfig(replicas=1, max_queue=16, default_deadline=20.0,
                          router_cache=32)
        with FleetRouter(latency_spec(), cfg) as router:
            assert router.wait_healthy(60.0)
            router.ground(samples[0].image, samples[0].query)
            hit = router.ground(samples[0].image, samples[0].query)
            assert hit[2] == 0.0  # served from router tier, old weights
            router.reload_weights(ckpt, timeout=60.0)
            after = router.ground(samples[0].image, samples[0].query)
            stats = router.stats()
        assert after[2] == 4.0 and after[3] == 6.0, (
            f"stale box served from router cache after reload: "
            f"{after.tolist()}")
        assert stats.cache_epoch == 1
        assert stats.cache_hits == 1 and stats.cache_misses == 2

    def test_failed_reload_keeps_old_epoch_serving(self, tmp_path):
        from repro.runtime import CheckpointCorruptError, corrupt_file

        samples = make_samples(1)
        ckpt, _ = save_checkpoint(tmp_path, version=9, bias=9)
        corrupt_file(ckpt)
        cfg = FleetConfig(replicas=1, max_queue=16, default_deadline=20.0,
                          router_cache=32)
        with FleetRouter(latency_spec(), cfg) as router:
            assert router.wait_healthy(60.0)
            warm = router.ground(samples[0].image, samples[0].query)
            with pytest.raises(CheckpointCorruptError):
                router.reload_weights(ckpt)
            # the aborted roll must NOT bump the epoch: the cached box is
            # still correct for the weights actually serving
            again = router.ground(samples[0].image, samples[0].query)
            stats = router.stats()
        assert again.tolist() == warm.tolist()
        assert stats.cache_epoch == 0
        assert stats.cache_hits == 1

    def test_hits_survive_replica_crash_and_respawn(self):
        samples = make_samples(1)
        plan = FaultPlan(kill_replica_on_request={0: 1})
        cfg = FleetConfig(replicas=1, max_queue=16, default_deadline=20.0,
                          heartbeat_timeout=3.0, router_cache=32)
        with FleetRouter(latency_spec(fault_plan=plan), cfg) as router:
            assert router.wait_healthy(60.0)
            # first request kills generation 0 mid-flight; the retry on
            # the respawn resolves it and populates the router cache
            warm = router.ground(samples[0].image, samples[0].query,
                                 timeout=120.0)
            hit = router.ground(samples[0].image, samples[0].query)
            stats = router.stats()
        assert hit.tolist() == warm.tolist()
        assert stats.respawns >= 1
        # the respawned replica has an empty private LRU, but the
        # router-tier entry outlives it (same weights epoch)
        assert stats.cache_hits >= 1
        assert stats.cache_epoch == 0

    def test_soak_repeated_queries_reload_and_crash(self, tmp_path):
        """The acceptance-criteria soak: repeated-query trace, mid-run
        rolling reload, injected crash — hit rate > 0, zero stale."""
        samples = make_samples(3)
        ckpt, _ = save_checkpoint(tmp_path, version=2, bias=4)
        # kill replica 0 on its first request: with the router cache
        # absorbing repeats, few requests reach replicas, and ties route
        # to index 0 — so the first miss reliably triggers the crash
        plan = FaultPlan(kill_replica_on_request={0: 1})
        cfg = FleetConfig(replicas=2, max_queue=128, default_deadline=20.0,
                          heartbeat_timeout=3.0, router_cache=128)
        trace = timed_trace(samples, 40, rate_qps=120.0,
                            repeat_fraction=0.6,
                            rng=spawn_rng("cache-soak"))
        with FleetRouter(latency_spec(fault_plan=plan), cfg) as router:
            assert router.wait_healthy(60.0)
            report = run_soak(
                router, trace, reload_at=20, reload_checkpoint=ckpt,
                settle_timeout=120.0,
                # boxes computed by the reloaded weights carry version 2
                post_reload_check=lambda box: box[2] == 2.0,
            )
            assert router.wait_healthy(60.0), report.render()
        assert report.lost == 0, report.render()
        assert report.stale_served == 0, report.render()
        assert report.reload_error is None, report.render()
        assert report.stats.respawns >= 1, report.render()
        assert report.stats.cache_hits > 0, report.render()
        violations = report.check(min_cache_hit_rate=0.01)
        assert violations == [], violations
        assert "cache" in report.stats.render()


@pytest.mark.dist
class TestSoakHarness:
    @pytest.mark.slow
    def test_soak_with_crash_and_reload_loses_nothing(self, tmp_path):
        samples = make_samples(6)
        ckpt, _ = save_checkpoint(tmp_path, version=2, bias=4)
        plan = FaultPlan(kill_replica_on_request={1: 4})
        # router cache off: this soak is about crash + reload resilience,
        # and the injected kill needs replica 1 to actually see its 4th
        # request (the cache-on soak lives in TestRouterCache)
        cfg = FleetConfig(replicas=3, max_queue=128, default_deadline=20.0,
                          heartbeat_timeout=3.0, router_cache=0)
        trace = timed_trace(samples, 60, rate_qps=150.0,
                            rng=spawn_rng("soak-test"))
        with FleetRouter(latency_spec(fault_plan=plan), cfg) as router:
            assert router.wait_healthy(60.0)
            report = run_soak(router, trace, reload_at=30,
                              reload_checkpoint=ckpt, settle_timeout=120.0)
            assert router.wait_healthy(60.0), report.render()
            stats = router.stats()
        assert report.lost == 0, report.render()
        assert report.submitted == 60
        assert report.resolved == 60
        assert report.reload_error is None, report.render()
        assert stats.respawns >= 1, report.render()
        assert stats.alive == 3, report.render()
        violations = report.check(expected_replicas=None, slo_p99=None)
        assert violations == [], violations

    def test_report_check_flags_violations(self):
        from repro.serve import FleetStats, SoakReport

        stats = FleetStats(
            submitted=10, completed=8, shed=0, retries=0,
            deadline_exceeded=0, failed=0, respawns=0, reloads=0,
            stale_responses=0, latency_p50=0.01, latency_p95=0.02,
            latency_p99=0.5, reload_seconds_total=0.0,
            replicas=({"index": 0, "state": "up", "generation": 0,
                       "depth": 0, "in_flight": 0, "served": 8},),
        )
        report = SoakReport(submitted=10, ok=8, shed=0, deadline=0,
                            failed=0, lost=2, wall_seconds=1.0, stats=stats)
        violations = report.check(slo_p99=0.1, expected_replicas=3)
        assert any("lost" in v for v in violations)
        assert any("p99" in v for v in violations)
        assert any("replicas" in v for v in violations)
        assert "LOST" in report.render()


@pytest.mark.dist
class TestHeterogeneousFleet:
    """Multiple presets behind one router: tagged routing, keyed cache."""

    def _specs(self):
        return [
            latency_spec(builder_kwargs={"latency": 0.002, "version": 1.0},
                         model_id="model-a"),
            latency_spec(builder_kwargs={"latency": 0.002, "version": 2.0},
                         model_id="model-b"),
        ]

    def test_model_tagged_requests_route_to_matching_replicas(self):
        samples = make_samples(2)
        cfg = FleetConfig(replicas=2, max_queue=32, default_deadline=20.0)
        with FleetRouter(self._specs(), cfg) as router:
            assert router.wait_healthy(60.0)
            a = router.ground(samples[0].image, samples[0].query,
                              model="model-a")
            b = router.ground(samples[0].image, samples[0].query,
                              model="model-b")
            stats = router.stats()
        # the "version" weight is the model identity made observable
        assert a[2] == 1.0 and b[2] == 2.0
        models = {r["model"] for r in stats.replicas}
        assert models == {"model-a", "model-b"}

    def test_cache_never_cross_serves_models(self):
        """THE regression: same (image, query) under two models must hit
        two distinct cache entries — a repeat only hits its own model."""
        samples = make_samples(1)
        cfg = FleetConfig(replicas=2, max_queue=32, default_deadline=20.0,
                          router_cache=32)
        with FleetRouter(self._specs(), cfg) as router:
            assert router.wait_healthy(60.0)
            first_a = router.ground(samples[0].image, samples[0].query,
                                    model="model-a")
            first_b = router.ground(samples[0].image, samples[0].query,
                                    model="model-b")
            assert router.stats().cache_hits == 0, (
                "model-b answered from model-a's cache entry")
            hit_a = router.ground(samples[0].image, samples[0].query,
                                  model="model-a")
            hit_b = router.ground(samples[0].image, samples[0].query,
                                  model="model-b")
            stats = router.stats()
        assert first_a[2] == 1.0 and first_b[2] == 2.0
        assert hit_a.tolist() == first_a.tolist()
        assert hit_b.tolist() == first_b.tolist()
        assert stats.cache_hits == 2 and stats.cache_misses == 2
        # only the two misses reached replicas
        assert sum(r["served"] for r in stats.replicas) == 2

    def test_untagged_requests_bypass_cache_but_resolve(self):
        samples = make_samples(1)
        cfg = FleetConfig(replicas=2, max_queue=32, default_deadline=20.0,
                          router_cache=32)
        with FleetRouter(self._specs(), cfg) as router:
            assert router.wait_healthy(60.0)
            one = router.ground(samples[0].image, samples[0].query)
            two = router.ground(samples[0].image, samples[0].query)
            stats = router.stats()
        # untagged answers depend on which replica served them, so they
        # must never enter (or hit) the shared cache
        assert stats.cache_hits == 0 and stats.cache_misses == 0
        assert one[2] in (1.0, 2.0) and two[2] in (1.0, 2.0)

    def test_unknown_model_is_typed_and_lists_fleet(self):
        from repro.serve import UnknownModel

        cfg = FleetConfig(replicas=2, max_queue=8)
        with FleetRouter(self._specs(), cfg) as router:
            assert router.wait_healthy(60.0)
            future = router.submit(np.ones((4, 4, 3)), "query",
                                   model="model-z")
            with pytest.raises(UnknownModel) as excinfo:
                future.result(timeout=10.0)
        assert "model-z" in str(excinfo.value)
        assert "model-a" in str(excinfo.value)
        assert "model-b" in str(excinfo.value)

    def test_reload_targets_one_model_only(self, tmp_path):
        samples = make_samples(1)
        ckpt, state = save_checkpoint(tmp_path, version=7, bias=3)
        cfg = FleetConfig(replicas=2, max_queue=32, default_deadline=20.0)
        with FleetRouter(self._specs(), cfg) as router:
            assert router.wait_healthy(60.0)
            with pytest.raises(ReloadError):
                router.reload_weights(ckpt)  # must name a model
            report = router.reload_weights(ckpt, timeout=60.0,
                                           model="model-a")
            assert report.checksum == state_checksum(state)
            assert len(report.replicas) == 1
            a = router.ground(samples[0].image, samples[0].query,
                              model="model-a")
            b = router.ground(samples[0].image, samples[0].query,
                              model="model-b")
        assert a[2] == 7.0, "model-a did not pick up the reload"
        assert b[2] == 2.0, "reload leaked into model-b's replicas"

    def test_reload_unknown_model_is_typed(self, tmp_path):
        from repro.serve import UnknownModel

        ckpt, _ = save_checkpoint(tmp_path, version=7, bias=3)
        cfg = FleetConfig(replicas=2, max_queue=8)
        with FleetRouter(self._specs(), cfg) as router:
            assert router.wait_healthy(60.0)
            with pytest.raises(UnknownModel):
                router.reload_weights(ckpt, model="model-z")

    def test_fewer_replicas_than_specs_rejected(self):
        with pytest.raises(ValueError):
            FleetRouter(self._specs(), FleetConfig(replicas=1))

    def test_empty_spec_list_rejected(self):
        with pytest.raises(ValueError):
            FleetRouter([], FleetConfig(replicas=2))


@pytest.mark.dist
class TestFleetStopSemantics:
    def test_stop_resolves_every_outstanding_future(self):
        samples = make_samples(2)
        cfg = FleetConfig(replicas=1, max_queue=64, max_replica_inflight=2,
                          default_deadline=60.0, stop_timeout=0.2)
        router = FleetRouter(latency_spec(latency=0.2, max_batch=1),
                             cfg).start()
        assert router.wait_healthy(60.0)
        futures = [router.submit(samples[i % 2].image, f"slow {i}")
                   for i in range(12)]
        time.sleep(0.05)
        router.stop()  # 0.2s grace cannot drain 12 x 0.2s requests
        unresolved = [f for f in futures if not f.done()]
        assert unresolved == [], f"{len(unresolved)} futures left hanging"
        kinds = set()
        for future in futures:
            exc = future.exception(timeout=1.0)
            kinds.add(type(exc).__name__ if exc else "ok")
        assert kinds <= {"ok", "FleetStopped"}, kinds
        assert "FleetStopped" in kinds, "grace window drained everything"
