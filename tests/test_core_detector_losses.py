"""Target detection network and the YOLLO losses (Eqs. 6-9)."""

import numpy as np
import pytest

from repro.autograd import Tensor, softmax
from repro.core import TargetDetectionNetwork, YolloConfig
from repro.core.losses import (
    attention_mask_loss,
    build_gt_mask,
    detection_loss,
    yollo_loss,
)


def config(**overrides):
    base = YolloConfig(backbone="tiny", d_model=8, head_hidden=10, max_query_length=4)
    return base.with_overrides(**overrides) if overrides else base


@pytest.fixture
def detector():
    return TargetDetectionNetwork(config(), grid_h=6, grid_w=9, stride=8)


class TestDetector:
    def test_output_shapes(self, detector):
        features = Tensor(np.random.default_rng(0).random((2, 8, 6, 9)))
        cls, reg = detector(features)
        num_anchors = detector.anchor_grid.num_anchors
        assert cls.shape == (2, num_anchors, 2)
        assert reg.shape == (2, num_anchors, 4)

    def test_anchor_grid_matches_config(self, detector):
        assert detector.anchor_grid.num_anchors_per_cell == 9

    def test_channel_to_anchor_alignment(self, detector):
        """Perturbing one cell's features only changes that cell's anchors."""
        base = np.zeros((1, 8, 6, 9))
        bumped = base.copy()
        bumped[0, :, 2, 3] = 5.0
        cls_base, _ = detector(Tensor(base))
        cls_bump, _ = detector(Tensor(bumped))
        diff = np.abs(cls_base.data - cls_bump.data).sum(axis=-1)[0]
        changed = np.flatnonzero(diff > 1e-9)
        cells = {detector.anchor_grid.cell_index(int(i))[:2] for i in changed}
        # The 3x3 head convs spread influence to neighbouring cells only.
        for row, col in cells:
            assert abs(row - 2) <= 2 and abs(col - 3) <= 2


class TestGtMask:
    def test_sums_to_one(self):
        boxes = np.array([[8.0, 8.0, 24.0, 24.0], [0.0, 0.0, 7.0, 7.0]])
        masks = build_gt_mask(boxes, grid_h=6, grid_w=9, stride=8)
        assert np.allclose(masks.sum(axis=1), 1.0)

    def test_mass_inside_box(self):
        boxes = np.array([[16.0, 8.0, 32.0, 24.0]])
        mask = build_gt_mask(boxes, 6, 9, 8).reshape(6, 9)
        assert mask[1:3, 2:4].sum() == pytest.approx(1.0)
        assert mask[0].sum() == 0.0

    def test_tiny_box_still_covered(self):
        boxes = np.array([[1.0, 1.0, 2.0, 2.0]])
        mask = build_gt_mask(boxes, 6, 9, 8)
        assert mask.sum() == pytest.approx(1.0)


class TestAttentionLoss:
    def test_optimal_at_matching_distribution(self):
        gt = build_gt_mask(np.array([[8.0, 8.0, 24.0, 24.0]]), 6, 9, 8)
        aligned = Tensor(np.log(gt + 1e-9))
        uniform = Tensor(np.zeros_like(gt))
        assert float(attention_mask_loss(aligned, gt).data) < float(
            attention_mask_loss(uniform, gt).data
        )

    def test_gradient_direction(self):
        gt = build_gt_mask(np.array([[8.0, 8.0, 24.0, 24.0]]), 6, 9, 8)
        att = Tensor(np.zeros_like(gt), requires_grad=True)
        attention_mask_loss(att, gt).backward()
        inside = gt[0] > 0
        # Gradient pushes attention up inside the box, down outside.
        assert att.grad[0][inside].mean() < 0
        assert att.grad[0][~inside].mean() > 0


class TestDetectionLoss:
    def test_returns_finite_losses(self, detector):
        cfg = config()
        rng = np.random.default_rng(0)
        cls = Tensor(rng.normal(size=(2, detector.anchor_grid.num_anchors, 2)),
                     requires_grad=True)
        reg = Tensor(rng.normal(size=(2, detector.anchor_grid.num_anchors, 4)),
                     requires_grad=True)
        boxes = np.array([[8.0, 8.0, 24.0, 24.0], [30.0, 20.0, 50.0, 40.0]])
        cls_loss, reg_loss = detection_loss(cls, reg, boxes, detector.anchor_grid, cfg)
        assert np.isfinite(float(cls_loss.data))
        assert np.isfinite(float(reg_loss.data))

    def test_perfect_predictions_give_small_loss(self, detector):
        from repro.detection import AnchorMatcher

        cfg = config()
        anchors = detector.anchor_grid.all_anchors()
        box = np.array([[8.0, 8.0, 24.0, 24.0]])
        match = AnchorMatcher(cfg.rho_high, cfg.rho_low).match(anchors, box[0])
        logits = np.zeros((1, len(anchors), 2))
        logits[0, :, 0] = 10.0
        logits[0, match.positive_indices, 0] = 0.0
        logits[0, match.positive_indices, 1] = 10.0
        reg = np.zeros((1, len(anchors), 4))
        reg[0] = match.offsets
        cls_loss, reg_loss = detection_loss(
            Tensor(logits), Tensor(reg), box, detector.anchor_grid, cfg
        )
        assert float(cls_loss.data) < 1e-3
        assert float(reg_loss.data) < 1e-6


class TestYolloLoss:
    def test_breakdown_components(self, detector):
        cfg = config()
        rng = np.random.default_rng(1)
        num_anchors = detector.anchor_grid.num_anchors
        masks = [Tensor(rng.normal(size=(1, 54)), requires_grad=True) for _ in range(3)]
        cls = Tensor(rng.normal(size=(1, num_anchors, 2)), requires_grad=True)
        reg = Tensor(rng.normal(size=(1, num_anchors, 4)), requires_grad=True)
        boxes = np.array([[8.0, 8.0, 24.0, 24.0]])
        breakdown = yollo_loss(masks, cls, reg, boxes, detector.anchor_grid, cfg)
        total = cfg.lambda_att * breakdown.att + breakdown.cls + cfg.lambda_reg * breakdown.reg
        assert float(breakdown.total.data) == pytest.approx(total, rel=1e-6)

    def test_last_module_only_supervision(self, detector):
        cfg = config(att_loss_on_all_modules=False)
        rng = np.random.default_rng(2)
        num_anchors = detector.anchor_grid.num_anchors
        masks = [
            Tensor(rng.normal(size=(1, 54)), requires_grad=True) for _ in range(3)
        ]
        cls = Tensor(rng.normal(size=(1, num_anchors, 2)))
        reg = Tensor(rng.normal(size=(1, num_anchors, 4)))
        boxes = np.array([[8.0, 8.0, 24.0, 24.0]])
        breakdown = yollo_loss(masks, cls, reg, boxes, detector.anchor_grid, cfg)
        breakdown.total.backward()
        assert masks[0].grad is None
        assert masks[-1].grad is not None
