"""Cross-module integration: a miniature end-to-end reproduction.

Trains a small YOLLO model briefly and checks the pieces cooperate.
Short CPU training budgets sit on optimisation plateaus, so the
assertions target robust signals: the total loss must fall
substantially, the attention must beat the uniform prior, and the
one-stage / two-stage paradigms must share the evaluation protocol.
"""

import numpy as np
import pytest

from repro.autograd import set_default_dtype
from repro.core import Grounder, YolloConfig, YolloModel, YolloTrainer
from repro.data import REFCOCO, build_dataset
from repro.eval import evaluate_grounder, time_grounder
from repro.twostage import ListenerMatcher, SegmentationProposer, TwoStageGrounder
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def setup():
    seed_everything(11)
    dataset = build_dataset(REFCOCO.scaled(0.08))
    cfg = YolloConfig(
        backbone="tiny", d_model=16, d_rel=24, ffn_hidden=24, head_hidden=24,
        num_rel2att=2, max_query_length=max(6, dataset.max_query_length),
        batch_size=8,
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    trainer = YolloTrainer(model, dataset, cfg)
    history = trainer.train(epochs=25)
    return dataset, cfg, model, trainer, history


def test_training_reduces_total_loss(setup):
    _, _, _, _, history = setup
    first = np.mean(history.losses[:5])
    last = np.mean(history.losses[-5:])
    assert last < 0.8 * first


def test_attention_loss_below_uniform(setup):
    """The attention CE must end below the uniform-distribution level."""
    dataset, _, model, _, history = setup
    uniform = np.log(model.encoder.num_regions)
    assert history.loss_components[-1]["att"] < uniform


def test_attention_concentrates_on_targets(setup):
    dataset, _, model, trainer, _ = setup
    from repro.core.losses import build_gt_mask

    samples = dataset["train"][:16]
    boxes = np.stack([s.target_box for s in samples])
    gt = build_gt_mask(boxes, model.encoder.grid_h, model.encoder.grid_w,
                       model.encoder.backbone.stride)
    hits = []
    for sample, mask in zip(samples, gt):
        pred = trainer.grounder.ground(sample.image, sample.query)
        flat = pred.attention_map.reshape(-1)
        hits.append(mask[flat.argmax()] > 0)
    # The box prior covers ~8-15% of cells; trained attention must beat it.
    assert np.mean(hits) > 0.15


def test_predictions_are_nondegenerate(setup):
    dataset, cfg, _, trainer, _ = setup
    boxes = trainer.grounder.ground_batch(dataset["val"][:8])
    widths = boxes[:, 2] - boxes[:, 0]
    heights = boxes[:, 3] - boxes[:, 1]
    assert np.all(widths > 1.0) and np.all(heights > 1.0)


def test_same_eval_path_for_both_paradigms(setup):
    dataset, _, _, trainer, _ = setup
    listener = ListenerMatcher(dataset.vocab, embed_dim=12,
                               max_query_length=dataset.max_query_length)
    two_stage = TwoStageGrounder(
        SegmentationProposer(rng=np.random.default_rng(0)), {"listener": listener}
    )
    for grounder in (trainer.grounder, two_stage):
        report = evaluate_grounder(grounder, dataset["val"][:4])
        assert 0.0 <= report.acc_at_50 <= 1.0


def test_timing_protocol_for_both_paradigms(setup):
    dataset, _, _, trainer, _ = setup
    report = time_grounder(trainer.grounder.ground_batch, dataset["val"][:3], warmup=1)
    assert report.mean > 0


def test_float32_training_step_runs(setup):
    """One float32 step end-to-end (the experiment-harness configuration)."""
    dataset, cfg, _, _, _ = setup
    set_default_dtype(np.float32)
    try:
        seed_everything(5)
        model = YolloModel(cfg, vocab_size=len(dataset.vocab))
        trainer = YolloTrainer(model, dataset, cfg)
        history = trainer.train(epochs=1)
        assert np.all(np.isfinite(history.losses))
    finally:
        set_default_dtype(np.float64)


def test_trainer_publishes_shared_metrics(setup):
    """YolloTrainer reports steps/timings through the repro.obs registry."""
    from repro.obs import MetricsRegistry

    dataset, cfg, _, _, _ = setup
    registry = MetricsRegistry()
    seed_everything(17)
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    trainer = YolloTrainer(model, dataset, cfg, metrics=registry)
    trainer.begin_run(iterations=2)
    loss = None
    for _ in range(2):
        loss = trainer.forward_backward()
        trainer.apply_step(loss)
    assert registry.counter("train.steps").value == 2
    assert registry.histogram("train.forward_backward_seconds").count == 2
    assert registry.histogram("train.apply_seconds").count == 2
    assert registry.gauge("train.loss").value == pytest.approx(loss)
