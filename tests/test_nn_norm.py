"""Normalisation layers: batch, group, layer norm."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradient_check
from repro.nn import BatchNorm2d, GroupNorm2d, LayerNorm


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(2.0, 3.0, size=shape),
                  requires_grad=True)


class TestBatchNorm2d:
    def test_normalises_in_train_mode(self):
        bn = BatchNorm2d(3)
        out = bn(make((8, 3, 4, 4))).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        bn = BatchNorm2d(2, momentum=0.5)
        bn(make((4, 2, 3, 3)))
        assert not np.allclose(bn.running_mean, 0.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        for seed in range(20):
            bn(make((8, 2, 3, 3), seed))
        bn.eval()
        x = make((1, 2, 3, 3), 99)
        out = bn(x).data
        expected = (x.data - bn.running_mean.reshape(1, -1, 1, 1)) / np.sqrt(
            bn.running_var.reshape(1, -1, 1, 1) + bn.eps
        )
        assert np.allclose(out, expected)

    def test_running_stats_are_registered_buffers(self):
        bn = BatchNorm2d(2)
        assert set(dict(bn.named_buffers())) == {"running_mean", "running_var"}
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_running_stats_survive_state_dict_roundtrip(self):
        # Regression: running statistics used to be plain attributes
        # silently dropped from checkpoints, so a restored model's
        # eval-mode predictions diverged from the original.
        source = BatchNorm2d(2)
        for seed in range(10):
            source(make((8, 2, 3, 3), seed))
        restored = BatchNorm2d(2)
        restored.load_state_dict(source.state_dict())
        assert np.array_equal(restored.running_mean, source.running_mean)
        assert np.array_equal(restored.running_var, source.running_var)
        source.eval()
        restored.eval()
        x = make((2, 2, 3, 3), 99)
        assert np.array_equal(source(x).data, restored(x).data)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            BatchNorm2d(2)(make((3, 2)))

    def test_grad(self):
        bn = BatchNorm2d(2)
        gradient_check(lambda *i: bn(i[0]), [make((3, 2, 3, 3))] + bn.parameters(),
                       atol=1e-3, rtol=1e-3)


class TestGroupNorm2d:
    def test_batch_independence(self):
        """Per-sample stats: output for sample 0 is unchanged by sample 1."""
        gn = GroupNorm2d(4)
        a = make((1, 4, 3, 3), 0)
        b = make((1, 4, 3, 3), 1)
        together = gn(Tensor(np.concatenate([a.data, b.data]))).data[0]
        alone = gn(a).data[0]
        assert np.allclose(together, alone)

    def test_train_eval_identical(self):
        gn = GroupNorm2d(4)
        x = make((2, 4, 3, 3))
        train_out = gn(x).data
        gn.eval()
        assert np.allclose(gn(x).data, train_out)

    def test_falls_back_to_one_group(self):
        gn = GroupNorm2d(6, num_groups=4)  # 6 % 4 != 0
        assert gn.num_groups == 1

    def test_grad(self):
        gn = GroupNorm2d(4, num_groups=2)
        gradient_check(lambda *i: gn(i[0]), [make((2, 4, 3, 3))] + gn.parameters(),
                       atol=1e-3, rtol=1e-3)


class TestLayerNorm:
    def test_last_axis_normalised(self):
        ln = LayerNorm(8)
        out = ln(make((4, 8))).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)

    def test_affine_parameters_apply(self):
        ln = LayerNorm(4)
        ln.weight.data[:] = 2.0
        ln.bias.data[:] = 1.0
        out = ln(make((3, 4))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_grad(self):
        ln = LayerNorm(5)
        gradient_check(lambda *i: ln(i[0]), [make((2, 3, 5))] + ln.parameters(),
                       atol=1e-3, rtol=1e-3)
