"""Layers: linear, conv, embedding, dropout, activations, FFN."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradient_check
from repro import nn


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestLinear:
    def test_shape(self):
        assert nn.Linear(4, 7)(make((5, 4))).shape == (5, 7)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_3d_input(self):
        assert nn.Linear(4, 2)(make((2, 5, 4))).shape == (2, 5, 2)

    def test_grad(self):
        layer = nn.Linear(3, 2)
        gradient_check(lambda *i: layer(i[0]), [make((4, 3))] + layer.parameters())


class TestConv2d:
    def test_shape_with_padding(self):
        assert nn.Conv2d(3, 6, 3, padding=1)(make((2, 3, 5, 5))).shape == (2, 6, 5, 5)

    def test_stride(self):
        assert nn.Conv2d(3, 6, 3, stride=2, padding=1)(make((1, 3, 8, 8))).shape == (1, 6, 4, 4)

    def test_grad(self):
        layer = nn.Conv2d(2, 3, 3, padding=1)
        gradient_check(lambda *i: layer(i[0]), [make((1, 2, 4, 4))] + layer.parameters())


class TestEmbedding:
    def test_padding_idx_zero_initialised(self):
        emb = nn.Embedding(5, 4, padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_lookup_shape(self):
        emb = nn.Embedding(10, 6)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 6)


class TestDropout:
    def test_eval_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = make((4, 4))
        assert np.allclose(layer(x).data, x.data)

    def test_train_scales_kept_units(self):
        layer = nn.Dropout(0.5)
        x = Tensor(np.ones((2000,)))
        out = layer(x).data
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert 0.3 < (out > 0).mean() < 0.7

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_zero_probability_identity(self):
        x = make((3,))
        assert np.allclose(nn.Dropout(0.0)(x).data, x.data)


class TestActivations:
    def test_relu(self):
        assert np.allclose(nn.ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_tanh_sigmoid_bounds(self):
        x = make((10,))
        assert np.all(np.abs(nn.Tanh()(x).data) <= 1.0)
        out = nn.Sigmoid()(x).data
        assert np.all((out > 0) & (out < 1))

    def test_leaky_relu(self):
        out = nn.LeakyReLU(0.2)(Tensor([-1.0])).data
        assert np.allclose(out, [-0.2])

    def test_flatten(self):
        assert nn.Flatten()(make((2, 3, 4))).shape == (2, 12)


class TestFeedForward:
    def test_shape(self):
        ffn = nn.FeedForward(4, 8, 6)
        assert ffn(make((3, 4))).shape == (3, 6)

    def test_grad_flows_through_both_layers(self):
        ffn = nn.FeedForward(3, 5, 2)
        x = make((2, 3))
        ffn(x).sum().backward()
        assert ffn.fc1.weight.grad is not None
        assert ffn.fc2.weight.grad is not None


class TestDilatedConv2d:
    def test_expanded_kernel_is_zero_stuffed(self):
        layer = nn.DilatedConv2d(2, 3, kernel_size=3, dilation=2)
        expanded = layer.expanded_weight().data
        assert expanded.shape == (3, 2, 5, 5)
        manual = np.zeros_like(expanded)
        manual[:, :, ::2, ::2] = layer.weight.data
        assert np.array_equal(expanded, manual)
        # the zero taps really are zero
        assert np.array_equal(expanded[:, :, 1::2, :], 
                              np.zeros_like(expanded[:, :, 1::2, :]))

    def test_dilation_one_matches_conv2d_bitwise(self):
        dilated = nn.DilatedConv2d(2, 4, kernel_size=3, dilation=1)
        plain = nn.Conv2d(2, 4, kernel_size=3, padding=1)
        plain.weight.data[:] = dilated.weight.data
        x = make((1, 2, 6, 6))
        assert np.array_equal(dilated(x).data, plain(x).data)

    def test_same_padding_preserves_spatial_size(self):
        for dilation in (1, 2, 3):
            layer = nn.DilatedConv2d(3, 3, kernel_size=3, dilation=dilation)
            assert layer(make((1, 3, 9, 9))).shape == (1, 3, 9, 9)

    def test_matches_conv_on_expanded_kernel(self):
        """Dilated conv == standard conv run with the zero-stuffed kernel."""
        layer = nn.DilatedConv2d(2, 3, kernel_size=3, dilation=2)
        reference = nn.Conv2d(2, 3, kernel_size=5, padding=2)
        reference.weight.data[:] = layer.expanded_weight().data
        x = make((2, 2, 8, 8))
        assert np.allclose(layer(x).data, reference(x).data)

    def test_grad_reaches_dense_weight(self):
        layer = nn.DilatedConv2d(2, 2, kernel_size=3, dilation=2)
        gradient_check(lambda *i: layer(i[0]),
                       [make((1, 2, 6, 6))] + layer.parameters())

    def test_rejects_bad_dilation(self):
        with pytest.raises(ValueError):
            nn.DilatedConv2d(2, 2, kernel_size=3, dilation=0)
