"""Test-suite fixtures: deterministic seeding and dtype isolation."""

import numpy as np
import pytest

from repro.autograd import set_default_dtype
from repro.utils import seed_everything


@pytest.fixture(autouse=True)
def _deterministic():
    """Every test starts from the same seed and float64 tensors."""
    set_default_dtype(np.float64)
    seed_everything(1234)
    yield
    set_default_dtype(np.float64)


@pytest.fixture
def rng():
    return np.random.default_rng(99)
