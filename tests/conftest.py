"""Test-suite fixtures: deterministic seeding and dtype isolation."""

from contextlib import contextmanager

import numpy as np
import pytest

from repro.autograd import set_default_dtype
from repro.utils import seed_everything


@contextmanager
def record_grad_children():
    """Spy on ``Tensor._make_child``: collect every grad-tracked tensor.

    Inference paths wrapped in ``no_grad()`` must leave the yielded list
    empty — the regression contract for the no-graph inference work.
    """
    from repro.autograd.tensor import Tensor

    original = Tensor._make_child
    tracked = []

    def spy(self, data, parents):
        out = original(self, data, parents)
        if out.requires_grad:
            tracked.append(out)
        return out

    Tensor._make_child = spy
    try:
        yield tracked
    finally:
        Tensor._make_child = original


@pytest.fixture(autouse=True, scope="module")
def _deterministic_module():
    """Module-scoped fixtures (shared datasets, pretrained models) build
    from the same seed whether the module runs alone or mid-suite.

    Without this, a module-scoped fixture is instantiated *before* the
    per-test reseed below and inherits whatever RNG state the previous
    test left behind — so `pytest tests/test_x.py` and a full run would
    exercise different data.
    """
    seed_everything(1234)


@pytest.fixture(autouse=True)
def _deterministic():
    """Every test starts from the same seed and float64 tensors."""
    set_default_dtype(np.float64)
    seed_everything(1234)
    yield
    set_default_dtype(np.float64)


@pytest.fixture
def rng():
    return np.random.default_rng(99)
