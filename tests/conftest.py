"""Test-suite fixtures: deterministic seeding and dtype isolation."""

import numpy as np
import pytest

from repro.autograd import set_default_dtype
from repro.utils import seed_everything


@pytest.fixture(autouse=True, scope="module")
def _deterministic_module():
    """Module-scoped fixtures (shared datasets, pretrained models) build
    from the same seed whether the module runs alone or mid-suite.

    Without this, a module-scoped fixture is instantiated *before* the
    per-test reseed below and inherits whatever RNG state the previous
    test left behind — so `pytest tests/test_x.py` and a full run would
    exercise different data.
    """
    seed_everything(1234)


@pytest.fixture(autouse=True)
def _deterministic():
    """Every test starts from the same seed and float64 tensors."""
    set_default_dtype(np.float64)
    seed_everything(1234)
    yield
    set_default_dtype(np.float64)


@pytest.fixture
def rng():
    return np.random.default_rng(99)
