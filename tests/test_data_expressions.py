"""Referring-expression grammar: semantics and verified uniqueness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ExpressionGenerator, Scene, SceneObject
from repro.data.expressions import (
    Constraints,
    LOCATION_WORDS,
    describe_location,
    describe_size,
    relation_between,
)
from repro.data.scenes import SceneGenerator
from repro.text import tokenize


def obj(category, color, box):
    return SceneObject(category=category, color=color, box=np.asarray(box, dtype=float))


@pytest.fixture
def two_dogs():
    return Scene(48, 72, [
        obj("dog", "red", (2, 20, 14, 30)),    # left
        obj("dog", "blue", (50, 20, 62, 30)),  # right
    ])


class TestDescriptors:
    def test_location_extremes(self, two_dogs):
        group = two_dogs.objects
        assert describe_location(group[0], group) == "left"
        assert describe_location(group[1], group) == "right"

    def test_location_none_for_singleton(self, two_dogs):
        assert describe_location(two_dogs.objects[0], [two_dogs.objects[0]]) is None

    def test_size_extremes(self):
        big = obj("dog", "red", (0, 0, 20, 20))
        small = obj("dog", "red", (30, 30, 36, 36))
        assert describe_size(big, [big, small]) == "big"
        assert describe_size(small, [big, small]) == "small"

    def test_size_none_when_similar(self):
        a = obj("dog", "red", (0, 0, 10, 10))
        b = obj("dog", "red", (20, 20, 30, 30))
        assert describe_size(a, [a, b]) is None

    def test_relation_directions(self):
        anchor = obj("car", "red", (30, 20, 40, 30))
        left = obj("dog", "red", (2, 20, 12, 30))
        above = obj("dog", "red", (30, 0, 40, 8))
        assert relation_between(left, anchor) == "left of"
        assert relation_between(above, anchor) == "above"

    def test_relation_next_to(self):
        anchor = obj("car", "red", (30, 20, 40, 30))
        close = obj("dog", "red", (32, 22, 42, 32))
        assert relation_between(close, anchor) == "next to"


class TestConstraints:
    def test_category_filter(self, two_dogs):
        assert len(Constraints(category="dog").resolve(two_dogs)) == 2
        assert Constraints(category="car").resolve(two_dogs) == []

    def test_color_filter(self, two_dogs):
        out = Constraints(category="dog", color="red").resolve(two_dogs)
        assert len(out) == 1 and out[0].color == "red"

    def test_location_selector(self, two_dogs):
        out = Constraints(category="dog", location="left").resolve(two_dogs)
        assert out == [two_dogs.objects[0]]

    def test_size_selector(self):
        scene = Scene(48, 72, [
            obj("dog", "red", (0, 0, 20, 20)),
            obj("dog", "blue", (30, 30, 36, 36)),
        ])
        out = Constraints(category="dog", size="big").resolve(scene)
        assert out == [scene.objects[0]]

    def test_ambiguous_size_resolves_empty(self):
        scene = Scene(48, 72, [
            obj("dog", "red", (0, 0, 10, 10)),
            obj("dog", "blue", (20, 20, 30, 30)),
        ])
        assert Constraints(category="dog", size="big").resolve(scene) == []

    def test_relation_requires_unique_anchor(self):
        scene = Scene(48, 72, [
            obj("dog", "red", (2, 20, 12, 30)),
            obj("car", "red", (30, 20, 40, 30)),
            obj("car", "red", (50, 20, 60, 30)),
        ])
        c = Constraints(category="dog", relation="left of",
                        anchor_category="car", anchor_color="red")
        assert c.resolve(scene) == []


class TestGenerators:
    def test_flavor_validation(self):
        with pytest.raises(ValueError):
            ExpressionGenerator("bogus")

    @pytest.mark.parametrize("flavor", ["refcoco", "refcoco+", "refcocog"])
    def test_generated_expressions_are_unique_references(self, flavor):
        rng = np.random.default_rng(0)
        gen = SceneGenerator(distinct_colors=True, rng=rng)
        expr = ExpressionGenerator(flavor, rng=rng)
        checked = 0
        for _ in range(12):
            scene = gen.generate(rng=rng)
            for target in scene.objects:
                query = expr.generate(scene, target, rng=rng)
                if query is None:
                    continue
                checked += 1
                constraints = expr._find_unique_constraints(scene, target, rng)
                resolved = constraints.resolve(scene)
                assert len(resolved) == 1 and resolved[0] is target
        assert checked > 10

    def test_refcoco_plus_never_uses_location_words(self):
        rng = np.random.default_rng(1)
        gen = SceneGenerator(distinct_colors=True, rng=rng)
        expr = ExpressionGenerator("refcoco+", rng=rng)
        for _ in range(15):
            scene = gen.generate(rng=rng)
            for target in scene.objects:
                query = expr.generate(scene, target, rng=rng)
                if query:
                    assert not set(tokenize(query)) & set(LOCATION_WORDS), query

    def test_refcocog_sentences_are_long(self):
        rng = np.random.default_rng(2)
        gen = SceneGenerator(same_type_density=1.6, rng=rng)
        expr = ExpressionGenerator("refcocog", rng=rng)
        lengths = []
        for _ in range(10):
            scene = gen.generate(rng=rng)
            for target in scene.objects:
                query = expr.generate(scene, target, rng=rng)
                if query:
                    lengths.append(len(tokenize(query)))
        assert np.mean(lengths) > 4.0

    def test_query_mentions_target_category(self):
        rng = np.random.default_rng(3)
        gen = SceneGenerator(rng=rng)
        expr = ExpressionGenerator("refcoco", rng=rng)
        scene = gen.generate(rng=rng)
        target = scene.objects[0]
        query = expr.generate(scene, target, rng=rng)
        if query is not None:
            assert target.category in tokenize(query)
