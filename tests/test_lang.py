"""Structured query understanding: parser, trees, semantics, lowering."""

import numpy as np
import pytest

from repro.data.scenes import Scene, SceneObject
from repro.lang import (
    UnsupportedRelationError,
    clause_contexts,
    clause_token_masks,
    pad_clause_masks,
    parse,
    resolve_tree,
)
from repro.scenarios import available_scenarios, get_scenario
from repro.text import tokenize


def _scene(objects):
    scene = Scene(48, 72)
    scene.objects.extend(objects)
    return scene


def _obj(category, color, x1, y1, x2, y2):
    return SceneObject(category=category, color=color,
                       box=np.asarray([x1, y1, x2, y2], dtype=np.float64))


# ----------------------------------------------------------------------
# Parser: grammar families
# ----------------------------------------------------------------------
class TestParserFamilies:
    def test_bare_attribute_reference(self):
        tree = parse("the big red car")
        assert not tree.is_trivial
        entity = tree.entities[tree.targets[0]]
        assert entity.category == "car"
        kinds = {(a.kind, a.value) for a in entity.attributes}
        assert ("size", "big") in kinds and ("color", "red") in kinds
        assert tree.depth() == 0

    def test_relational_clause(self):
        tree = parse("the dog to the left of the red car")
        assert tree.depth() == 1
        clause = tree.clauses[0]
        assert clause.relation == "left of"
        assert tree.entities[clause.target].category == "dog"
        assert tree.entities[clause.anchor].category == "car"

    def test_driving_ego_forms(self):
        tree = parse("the nearest red car to my left past the blue truck")
        assert not tree.is_trivial
        target = tree.entities[tree.targets[0]]
        assert target.category == "car"
        assert target.attribute("ordinal") is not None
        relations = {c.relation for c in tree.clauses_of(tree.targets[0])}
        assert "side:left" in relations and "past" in relations

    def test_crowded_quantified_plural(self):
        tree = parse("all the blue balls")
        entity = tree.entities[tree.targets[0]]
        assert entity.quantified_all and entity.plural
        assert entity.category == "ball"

    def test_nested_relative_clause_depth(self):
        tree = parse(
            "the dog next to the car that is to the left of the lamp")
        assert tree.depth() == 2

    def test_negated_attribute(self):
        tree = parse("the car that is not red")
        entity = tree.entities[tree.targets[0]]
        negated = [a for a in entity.attributes if a.negated]
        assert negated and negated[0].kind == "color"
        assert negated[0].value == "red"

    def test_conjunction_two_targets(self):
        tree = parse("the red car and the blue dog")
        assert len(tree.targets) == 2
        cats = [tree.entities[t].category for t in tree.targets]
        assert cats == ["car", "dog"]

    def test_cross_sentence_anaphora(self):
        tree = parse("there is a red car . the dog next to it")
        assert tree.num_sentences == 2
        pronouns = [e for e in tree.entities if e.pronoun is not None]
        assert pronouns and pronouns[0].antecedent is not None
        antecedent = tree.entities[pronouns[0].antecedent]
        assert antecedent.category == "car"
        # Targets come from the final sentence only.
        assert [tree.entities[t].category for t in tree.targets] == ["dog"]

    def test_person_pronoun_agreement(self):
        tree = parse("a man in a red shirt . the hat he is wearing")
        pronouns = [e for e in tree.entities if e.pronoun == "he"]
        assert pronouns and pronouns[0].antecedent is not None
        assert tree.entities[pronouns[0].antecedent].head == "man"

    def test_possessive_query(self):
        tree = parse("the man's hat")
        assert tree.token_sequence() == ["the", "man", "hat"]

    def test_degenerate_inputs_are_trivial(self):
        assert parse("").is_trivial
        assert parse("???").is_trivial
        assert parse("of of of").is_trivial


# ----------------------------------------------------------------------
# Tree schema invariants
# ----------------------------------------------------------------------
class TestTreeInvariants:
    QUERIES = [
        "the red car",
        "the dog to the left of the red car",
        "the nearest red car to my left past the blue truck",
        "all the blue balls",
        "the dog next to the car that is to the left of the lamp",
        "the car that is not red",
        "the red car and the blue dog",
        "there is a red car . the dog next to it",
        "a man in a red shirt . the hat he is wearing",
        "the man's hat",
        "the second pedestrian on my right",
        "the purple dog",
        "left-most dog",
        "",
    ]

    def test_round_trip(self):
        for query in self.QUERIES:
            tree = parse(query)
            assert tree.token_sequence() == tokenize(query), query

    def test_segments_tile_token_range(self):
        for query in self.QUERIES:
            tree = parse(query)
            position = 0
            for _, (start, end) in tree.segments:
                assert start == position
                assert end >= start
                position = end
            assert position == len(tree.tokens), query

    def test_spans_within_range(self):
        for query in self.QUERIES:
            tree = parse(query)
            for entity in tree.entities:
                start, end = entity.span
                assert 0 <= start <= end <= len(tree.tokens)
            for clause in tree.clauses:
                assert 0 <= clause.target < len(tree.entities)
                if clause.anchor is not None:
                    assert 0 <= clause.anchor < len(tree.entities)

    def test_depth_cycle_guard(self):
        # Self-referential antecedent links must not hang depth().
        tree = parse("there is a red car . the dog next to it")
        assert tree.depth() >= 1


# ----------------------------------------------------------------------
# Clause-mask lowering
# ----------------------------------------------------------------------
class TestClauseMasks:
    def test_single_clause_falls_back(self):
        assert clause_token_masks(parse("the red car"), 24) is None
        assert clause_token_masks(
            parse("the dog to the left of the car"), 24) is None

    def test_trivial_falls_back(self):
        assert clause_token_masks(parse(""), 24) is None
        assert clause_contexts(parse("???")) == []

    def test_multi_clause_produces_rows(self):
        masks = clause_token_masks(
            parse("the nearest red car to my left past the blue truck"), 24)
        assert masks is not None
        assert masks.shape[1] == 24
        assert masks.shape[0] >= 2
        assert set(np.unique(masks)) <= {0.0, 1.0}

    def test_anaphora_contexts(self):
        tree = parse("there is a red car . the dog next to it")
        contexts = clause_contexts(tree)
        assert len(contexts) >= 3  # head + clause + antecedent link
        masks = clause_token_masks(tree, 24)
        assert masks is not None

    def test_truncation_demotes_to_flat(self):
        tree = parse(
            "the dog next to the car that is to the left of the lamp")
        assert clause_token_masks(tree, 24) is not None
        # A 2-token budget empties the nested clause's rows, leaving a
        # single non-empty context: the query falls back to flat tokens.
        assert clause_token_masks(tree, 2) is None

    def test_pad_clause_masks(self):
        rows = [None, np.ones((3, 8)), np.ones((2, 8))]
        batch = pad_clause_masks(rows, 8)
        assert batch.shape == (3, 3, 8)
        assert not batch[0].any()
        assert batch[2, 2].sum() == 0  # short sample zero-padded
        assert pad_clause_masks([None, None], 8) is None


# ----------------------------------------------------------------------
# Scene semantics
# ----------------------------------------------------------------------
class TestSemantics:
    def test_attribute_filter(self):
        scene = _scene([_obj("car", "red", 5, 5, 15, 15),
                        _obj("car", "blue", 30, 5, 40, 15),
                        _obj("dog", "red", 50, 30, 60, 40)])
        resolved = resolve_tree(parse("the red car"), scene)
        assert len(resolved) == 1 and resolved[0] is scene.objects[0]

    def test_negated_color(self):
        scene = _scene([_obj("car", "red", 5, 5, 15, 15),
                        _obj("car", "blue", 30, 5, 40, 15)])
        resolved = resolve_tree(parse("the car that is not red"), scene)
        assert len(resolved) == 1 and resolved[0].color == "blue"

    def test_directional_relation(self):
        scene = _scene([_obj("dog", "red", 5, 5, 15, 15),
                        _obj("car", "blue", 40, 5, 50, 15)])
        resolved = resolve_tree(
            parse("the dog to the left of the blue car"), scene)
        assert len(resolved) == 1 and resolved[0].category == "dog"

    def test_anaphora_resolution(self):
        scene = _scene([_obj("car", "red", 40, 5, 50, 15),
                        _obj("dog", "blue", 5, 5, 15, 15)])
        resolved = resolve_tree(
            parse("there is a red car . the dog to the left of it"), scene)
        assert len(resolved) == 1 and resolved[0].category == "dog"

    def test_no_target_resolves_empty(self):
        scene = _scene([_obj("car", "red", 40, 5, 50, 15)])
        resolved = resolve_tree(
            parse("there is a red car . the dog next to it"), scene)
        assert resolved == []

    def test_conjunction_resolves_both(self):
        scene = _scene([_obj("car", "red", 5, 5, 15, 15),
                        _obj("dog", "blue", 40, 5, 50, 15)])
        resolved = resolve_tree(
            parse("the red car and the blue dog"), scene)
        assert len(resolved) == 2

    def test_quantified_plural_ranked_by_area(self):
        scene = _scene([_obj("ball", "blue", 5, 5, 10, 10),
                        _obj("ball", "blue", 20, 5, 40, 25),
                        _obj("ball", "red", 50, 5, 55, 10)])
        resolved = resolve_tree(parse("all the blue balls"), scene)
        assert len(resolved) == 2
        areas = [o.area for o in resolved]
        assert areas == sorted(areas, reverse=True)

    def test_ambiguous_singular_resolves_empty(self):
        scene = _scene([_obj("car", "red", 5, 5, 15, 15),
                        _obj("car", "red", 40, 5, 50, 15)])
        assert resolve_tree(parse("the red car"), scene) == []

    def test_unsupported_relation_raises(self):
        scene = _scene([_obj("person", "red", 5, 5, 15, 15),
                        _obj("chair", "blue", 40, 5, 50, 15)])
        tree = parse("the person holding the blue chair")
        if not tree.is_trivial and tree.clauses:
            with pytest.raises(UnsupportedRelationError):
                resolve_tree(tree, scene)


# ----------------------------------------------------------------------
# Property: every registered scenario parses non-trivially & round-trips
# ----------------------------------------------------------------------
class TestScenarioCoverage:
    @pytest.mark.parametrize("name", ["driving", "crowded", "weak",
                                      "compositional"])
    def test_registered_scenarios_parse(self, name):
        assert name in available_scenarios()
        samples = get_scenario(name).eval_samples(4)
        assert samples
        for sample in samples:
            tree = parse(sample.query)
            assert not tree.is_trivial, sample.query
            assert tree.token_sequence() == tokenize(sample.query), \
                sample.query
