"""Serving engine: micro-batching, LRU cache, telemetry, traces."""

import threading
import time

import numpy as np
import pytest

from repro.core import Grounder, YolloConfig, YolloModel
from repro.data import REFCOCO, build_dataset
from repro.serve import (
    EngineDrainTimeout,
    EngineStopped,
    LRUCache,
    ServeEngine,
    ServerStats,
    TraceRequest,
    image_digest,
    synthetic_trace,
)
from repro.utils import seed_everything


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
class StubGrounder:
    """Deterministic grounder that records every batch it is handed."""

    def __init__(self, fail=False):
        self.batches = []
        self.fail = fail

    def __call__(self, samples):
        if self.fail:
            raise RuntimeError("model exploded")
        self.batches.append(len(samples))
        return np.stack(
            [
                np.array([s.image.sum(), len(s.tokens), 1.0, 2.0])
                for s in samples
            ]
        )


def make_image(value, shape=(3, 4, 6)):
    return np.full(shape, float(value))


@pytest.fixture(scope="module")
def tiny_grounder():
    seed_everything(11)
    dataset = build_dataset(REFCOCO.scaled(0.05))
    cfg = YolloConfig(
        backbone="tiny", d_model=16, d_rel=24, ffn_hidden=24, head_hidden=24,
        num_rel2att=2, max_query_length=max(6, dataset.max_query_length),
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    model.eval()
    return Grounder(model, dataset.vocab), dataset


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1 and "a" in cache

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now coldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_image_digest_content_sensitive(self):
        a = make_image(1.0)
        assert image_digest(a) == image_digest(a.copy())
        assert image_digest(a) != image_digest(make_image(2.0))
        assert image_digest(a) != image_digest(a.astype(np.float32))


# ----------------------------------------------------------------------
# Engine behaviour (stub grounder)
# ----------------------------------------------------------------------
class TestServeEngine:
    def test_all_requests_resolve_with_correct_results(self):
        stub = StubGrounder()
        with ServeEngine(stub, max_batch=4, max_wait=0.001) as engine:
            futures = [
                engine.submit(make_image(i), f"query {i}") for i in range(10)
            ]
            boxes = [f.result(timeout=10) for f in futures]
        for i, box in enumerate(boxes):
            assert box[0] == pytest.approx(make_image(i).sum())
        assert all(size <= 4 for size in stub.batches)
        assert sum(stub.batches) == 10  # every unique request computed once

    def test_ground_many_preserves_order(self):
        stub = StubGrounder()
        requests = [TraceRequest(make_image(i), f"q{i}") for i in range(7)]
        with ServeEngine(stub, max_batch=3) as engine:
            boxes = engine.ground_many(requests)
        assert boxes.shape == (7, 4)
        for i in range(7):
            assert boxes[i, 0] == pytest.approx(make_image(i).sum())

    def test_partial_batch_flushes_after_max_wait(self):
        stub = StubGrounder()
        with ServeEngine(stub, max_batch=64, max_wait=0.01) as engine:
            box = engine.ground(make_image(3), "lonely request", timeout=10)
        assert box[0] == pytest.approx(make_image(3).sum())
        assert stub.batches == [1]

    def test_cache_hit_skips_forward_and_is_byte_identical(self):
        stub = StubGrounder()
        image = make_image(5)
        with ServeEngine(stub, max_batch=4) as engine:
            first = engine.ground(image, "red dog", timeout=10)
            second = engine.ground(image, "red dog", timeout=10)
            stats = engine.stats()
        assert sum(stub.batches) == 1  # second request never reached the model
        assert first.tobytes() == second.tobytes()
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.cache_hit_rate == pytest.approx(0.5)

    def test_in_flight_duplicates_deduplicated(self):
        stub = StubGrounder()
        image = make_image(9)
        with ServeEngine(stub, max_batch=8) as engine:
            futures = [engine.submit(image, "same query") for _ in range(6)]
            boxes = [f.result(timeout=10) for f in futures]
            stats = engine.stats()
        assert sum(stub.batches) == 1  # one forward slot for six requests
        assert all(b.tobytes() == boxes[0].tobytes() for b in boxes)
        assert stats.cache_hits == 5 and stats.cache_misses == 1

    def test_query_variants_share_one_cache_entry(self):
        """Whitespace/case/trailing-punctuation variants normalise at the
        front door and hit one cache entry."""
        stub = StubGrounder()
        image = make_image(7)
        with ServeEngine(stub, max_batch=4) as engine:
            first = engine.ground(image, "the red car", timeout=10)
            for variant in ["  The red car. ", "THE RED CAR",
                            "the  red\tcar!"]:
                again = engine.ground(image, variant, timeout=10)
                assert again.tobytes() == first.tobytes()
            stats = engine.stats()
        assert sum(stub.batches) == 1
        assert stats.cache_hits == 3 and stats.cache_misses == 1

    def test_cached_result_is_immutable_copy(self):
        stub = StubGrounder()
        image = make_image(2)
        with ServeEngine(stub) as engine:
            first = engine.ground(image, "q", timeout=10)
            first[:] = -1.0  # clobbering the returned array ...
            second = engine.ground(image, "q", timeout=10)
        assert second[0] == pytest.approx(image.sum())  # ... cannot poison the cache

    def test_cache_disabled_recomputes(self):
        stub = StubGrounder()
        image = make_image(4)
        with ServeEngine(stub, cache_size=0) as engine:
            engine.ground(image, "q", timeout=10)
            engine.ground(image, "q", timeout=10)
            stats = engine.stats()
        assert sum(stub.batches) == 2
        assert stats.cache_hits == 0

    def test_grounder_failure_propagates_to_waiters(self):
        with ServeEngine(StubGrounder(fail=True)) as engine:
            future = engine.submit(make_image(1), "q")
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=10)

    def test_stats_snapshot_counts_and_percentiles(self):
        stub = StubGrounder()
        with ServeEngine(stub, max_batch=4) as engine:
            engine.ground_many(
                [TraceRequest(make_image(i), f"q{i}") for i in range(8)]
            )
            stats = engine.stats()
        assert isinstance(stats, ServerStats)
        assert stats.requests == 8 and stats.completed == 8
        assert stats.batches == len(stub.batches)
        assert stats.latency_p50 <= stats.latency_p95 <= stats.latency_p99
        assert stats.timing.num_queries == 8
        assert stats.throughput_qps > 0
        assert sum(stats.batch_histogram.values()) == stats.batches
        report = stats.render()
        assert "qps" in report and "hit-rate" in report

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ServeEngine(StubGrounder(), max_batch=0)
        with pytest.raises(ValueError):
            ServeEngine(StubGrounder(), max_wait=-1.0)

    def test_stop_is_idempotent_and_restartable(self):
        stub = StubGrounder()
        engine = ServeEngine(stub)
        engine.stop()  # never started: no-op
        assert engine.ground(make_image(1), "a", timeout=10) is not None
        engine.stop()
        engine.stop()
        assert engine.ground(make_image(2), "b", timeout=10) is not None
        engine.stop()


# ----------------------------------------------------------------------
# Stop / submit race (shutdown semantics)
# ----------------------------------------------------------------------
class _BlockingGrounder:
    """Grounder that parks inside the forward until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, samples):
        self.entered.set()
        assert self.release.wait(30.0), "blocking grounder never released"
        return np.zeros((len(samples), 4))


class TestStopSemantics:
    def test_drain_timeout_keeps_thread_and_reports(self):
        blocker = _BlockingGrounder()
        engine = ServeEngine(blocker, max_batch=1, cache_size=0)
        future = engine.submit(make_image(1), "q")
        assert blocker.entered.wait(10.0)
        with pytest.raises(EngineDrainTimeout):
            engine.stop(timeout=0.05)
        # the worker is still referenced and still truthfully running
        assert engine.running
        blocker.release.set()
        engine.stop(timeout=10.0)  # second stop finishes the shutdown
        assert not engine.running
        assert future.result(timeout=5.0) is not None

    def test_submit_during_stop_raises_engine_stopped(self):
        blocker = _BlockingGrounder()
        engine = ServeEngine(blocker, max_batch=1, cache_size=0)
        engine.submit(make_image(1), "q")
        assert blocker.entered.wait(10.0)

        errors = []

        def stopper():
            try:
                engine.stop(timeout=10.0)
            except EngineDrainTimeout as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=stopper)
        thread.start()
        # wait until stop() has actually entered its draining phase
        deadline = time.perf_counter() + 5.0
        while not engine._stopping and time.perf_counter() < deadline:
            time.sleep(0.001)
        assert engine._stopping, "stop() never reached the draining phase"
        with pytest.raises(EngineStopped):
            engine.submit(make_image(2), "rejected")
        blocker.release.set()
        thread.join(10.0)
        assert not thread.is_alive() and errors == []
        assert not engine.running

    def test_leftover_queued_requests_resolve_with_engine_stopped(self):
        # White-box: a request stranded behind the shutdown sentinel (the
        # pre-fix race) must be resolved by stop(), not left hanging.
        from concurrent.futures import Future

        from repro.serve.engine import _SHUTDOWN, _Pending, _make_sample

        engine = ServeEngine(StubGrounder(), cache_size=0)
        orphan: Future = Future()
        engine._queue.put(_SHUTDOWN)
        engine._queue.put(_Pending(
            _make_sample(make_image(3), "orphan"), ("k", "orphan"),
            orphan, 0.0))
        engine.stop()
        with pytest.raises(EngineStopped):
            orphan.result(timeout=5.0)

    def test_stop_never_started_engine_fails_stranded_futures(self):
        from concurrent.futures import Future

        from repro.serve.engine import _Pending, _make_sample

        engine = ServeEngine(StubGrounder(), cache_size=0)
        orphan: Future = Future()
        engine._queue.put(_Pending(
            _make_sample(make_image(4), "orphan"), ("k", "orphan"),
            orphan, 0.0))
        engine.stop()
        with pytest.raises(EngineStopped):
            orphan.result(timeout=5.0)


# ----------------------------------------------------------------------
# Cache invalidation (weight reloads flush the response cache)
# ----------------------------------------------------------------------
class _CountingBlockingGrounder:
    """Blocking grounder that also counts forwards and returns real boxes."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, samples):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(30.0), "blocking grounder never released"
        return np.stack(
            [np.array([s.image.sum(), len(s.tokens), 1.0, 2.0])
             for s in samples]
        )


class TestClearCache:
    def test_clear_cache_forces_recompute(self):
        stub = StubGrounder()
        image = make_image(3)
        with ServeEngine(stub) as engine:
            engine.ground(image, "q", timeout=10)
            engine.clear_cache()
            engine.ground(image, "q", timeout=10)
            stats = engine.stats()
        assert sum(stub.batches) == 2  # no hit across the clear
        assert stats.cache_misses == 2 and stats.cache_hits == 0

    def test_clear_preserves_stats_tallies(self):
        stub = StubGrounder()
        image = make_image(6)
        with ServeEngine(stub) as engine:
            engine.ground(image, "q", timeout=10)
            engine.ground(image, "q", timeout=10)  # hit
            engine.clear_cache()
            stats = engine.stats()
        assert stats.cache_hits == 1 and stats.cache_misses == 1

    def test_clear_during_in_flight_batch_blocks_reinsert(self):
        """A forward racing ``clear_cache`` must not repopulate the cache.

        The batch snapshot was computed by the *old* weights; letting it
        land after the clear would resurrect exactly the staleness the
        clear exists to remove.  The waiter still gets its box.
        """
        blocker = _CountingBlockingGrounder()
        image = make_image(7)
        with ServeEngine(blocker, max_wait=0.005) as engine:
            future = engine.submit(image, "q")
            assert blocker.entered.wait(10.0)
            engine.clear_cache()  # fires while the forward is in flight
            blocker.release.set()
            box = future.result(timeout=10.0)
            assert box[0] == pytest.approx(image.sum())
            # The in-flight result must NOT have been inserted: the same
            # request goes back to the model.
            second = engine.ground(image, "q", timeout=10.0)
            assert second[0] == pytest.approx(image.sum())
        assert blocker.calls == 2

    def test_stats_and_registry_counters_agree_live(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        stub = StubGrounder()
        image = make_image(8)
        with ServeEngine(stub, metrics=registry) as engine:
            engine.ground(image, "q", timeout=10)
            engine.ground(image, "q", timeout=10)
            stats = engine.stats()
        # LRUCache is the counting authority; the registry mirrors it.
        assert stats.cache_hits == registry.counter("serve.cache_hits").value
        assert stats.cache_misses \
            == registry.counter("serve.cache_misses").value
        assert stats.cache_evictions == 0


# ----------------------------------------------------------------------
# Synthetic traces
# ----------------------------------------------------------------------
class TestSyntheticTrace:
    def test_deterministic_given_rng(self, tiny_grounder):
        _, dataset = tiny_grounder
        pool = list(dataset["val"])
        a = synthetic_trace(pool, 20, rng=np.random.default_rng(3))
        b = synthetic_trace(pool, 20, rng=np.random.default_rng(3))
        assert [r.query for r in a] == [r.query for r in b]

    def test_repeats_present_at_high_fraction(self, tiny_grounder):
        _, dataset = tiny_grounder
        pool = list(dataset["val"])
        trace = synthetic_trace(pool, 50, repeat_fraction=0.9,
                                rng=np.random.default_rng(0))
        assert len(trace) == 50
        keys = [(id(r.image), r.query) for r in trace]
        assert len(set(keys)) < len(keys)

    def test_validation(self, tiny_grounder):
        _, dataset = tiny_grounder
        with pytest.raises(ValueError):
            synthetic_trace([], 5)
        with pytest.raises(ValueError):
            synthetic_trace(list(dataset["val"]), 5, repeat_fraction=1.5)


# ----------------------------------------------------------------------
# End-to-end with the real YOLLO grounder
# ----------------------------------------------------------------------
class TestServeYollo:
    def test_engine_matches_direct_predictions(self, tiny_grounder):
        grounder, dataset = tiny_grounder
        samples = list(dataset["val"])
        direct = grounder.ground_batch(samples)
        with grounder.serve(max_batch=4) as engine:
            served = engine.ground_many(
                [TraceRequest(s.image, s.query) for s in samples]
            )
        assert np.array_equal(served, direct)

    def test_cached_response_byte_identical_to_uncached(self, tiny_grounder):
        grounder, dataset = tiny_grounder
        sample = dataset["val"][0]
        with grounder.serve() as engine:
            uncached = engine.ground(sample.image, sample.query, timeout=30)
            cached = engine.ground(sample.image, sample.query, timeout=30)
            stats = engine.stats()
        assert uncached.tobytes() == cached.tobytes()
        assert stats.cache_hits == 1

    def test_model_stays_in_eval_mode_under_serving(self, tiny_grounder):
        grounder, dataset = tiny_grounder
        grounder.model.eval()
        sample = dataset["val"][0]
        with grounder.serve() as engine:
            engine.ground(sample.image, sample.query, timeout=30)
        assert not grounder.model.training


# ----------------------------------------------------------------------
# Compiled serving
# ----------------------------------------------------------------------
class TestServeCompiled:
    def test_compiled_serving_matches_eager_and_records_compiles(
        self, tiny_grounder
    ):
        grounder, dataset = tiny_grounder
        samples = list(dataset["val"])[:4]
        eager = grounder.ground_batch(samples)
        grounder.compile()
        try:
            with grounder.serve(max_batch=4) as engine:
                served = engine.ground_many(
                    [TraceRequest(s.image, s.query) for s in samples]
                )
                stats = engine.stats()
            assert served.tobytes() == eager.tobytes()
            assert stats.compile_count >= 1
            assert stats.compile_ms_total > 0.0
            assert "compile" in stats.render()
            assert stats.as_dict()["compile_count"] == stats.compile_count
        finally:
            grounder.uncompile()

    def test_eager_engine_records_no_compiles(self, tiny_grounder):
        grounder, dataset = tiny_grounder
        sample = dataset["val"][0]
        with grounder.serve() as engine:
            engine.ground(sample.image, sample.query, timeout=30)
            stats = engine.stats()
        assert stats.compile_count == 0
        assert "compile" not in stats.render()

    def test_cached_hit_skips_plan_lookup_entirely(self, tiny_grounder):
        grounder, dataset = tiny_grounder
        sample = dataset["val"][0]
        grounder.compile()
        try:
            with grounder.serve() as engine:
                engine.ground(sample.image, sample.query, timeout=30)
                lookups_after_miss = grounder.plan_cache.lookups
                cached = engine.ground(sample.image, sample.query, timeout=30)
                stats = engine.stats()
            # The repeat was answered from the response cache before any
            # plan-cache interaction: the lookup counter never moved.
            assert stats.cache_hits == 1
            assert grounder.plan_cache.lookups == lookups_after_miss
            assert cached.shape == (4,)
        finally:
            grounder.uncompile()

    def test_two_shapes_racing_keep_plan_cache_consistent(self, tiny_grounder):
        import threading

        grounder, dataset = tiny_grounder
        samples = list(dataset["val"])
        expected = {
            batch: grounder.ground_batch(samples[:batch]) for batch in (1, 2)
        }
        grounder.compile(max_plans=4)
        errors = []

        def pound(batch):
            try:
                for _ in range(5):
                    got = grounder.ground_batch(samples[:batch])
                    assert got.tobytes() == expected[batch].tobytes()
            except BaseException as exc:
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=pound, args=(batch,))
                for batch in (1, 2, 1, 2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors[0]
            stats = grounder.plan_cache.stats()
            # Two batch shapes raced their first compiles: every miss
            # compiled exactly once, counters stayed coherent, and both
            # plans survived (no spurious evictions).
            assert stats["plans"] == 2
            assert stats["evictions"] == 0
            assert stats["lookups"] >= 20
            assert stats["hits"] + stats["compiles"] == stats["lookups"]
        finally:
            grounder.uncompile()

    def test_concurrent_submitters_compile_under_serving(self, tiny_grounder):
        import threading

        grounder, dataset = tiny_grounder
        samples = list(dataset["val"])[:6]
        eager = grounder.ground_batch(samples)
        grounder.compile(max_plans=8)
        errors = []
        try:
            # cache_size=0: every request must reach the model, so the
            # racing submitters genuinely exercise plan compilation for
            # whatever batch shapes the engine happens to form.
            with grounder.serve(max_batch=4, max_wait=0.001,
                                cache_size=0) as engine:

                def submit(index):
                    try:
                        sample = samples[index % len(samples)]
                        got = engine.ground(sample.image, sample.query,
                                            timeout=60)
                        assert got.tobytes() == eager[
                            index % len(samples)
                        ].tobytes()
                    except BaseException as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(target=submit, args=(i,))
                    for i in range(12)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                stats = engine.stats()
            assert not errors, errors[0]
            assert stats.completed == 12
            cache_stats = grounder.plan_cache.stats()
            assert cache_stats["hits"] + cache_stats["compiles"] == \
                cache_stats["lookups"]
            assert cache_stats["evictions"] == 0
        finally:
            grounder.uncompile()

    def test_compile_ms_histogram_lives_in_engine_registry(self, tiny_grounder):
        grounder, dataset = tiny_grounder
        sample = dataset["val"][0]
        grounder.compile()
        try:
            with grounder.serve() as engine:
                engine.ground(sample.image, sample.query, timeout=30)
                histogram = engine.metrics.histogram("serve.compile_ms")
                assert len(histogram.values()) >= 1
        finally:
            grounder.uncompile()


# ----------------------------------------------------------------------
# Shared observability registry
# ----------------------------------------------------------------------
class TestServeMetrics:
    def test_engine_publishes_into_injected_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        stub = StubGrounder()
        with ServeEngine(stub, max_batch=4, metrics=registry) as engine:
            engine.ground(make_image(1), "a", timeout=10)
            engine.ground(make_image(1), "a", timeout=10)  # cache hit
        assert engine.metrics is registry
        assert registry.counter("serve.requests").value == 2
        assert registry.counter("serve.cache_hits").value == 1
        assert registry.histogram("serve.latency_seconds").count == 2
        snap = registry.snapshot()
        assert snap["serve.latency_seconds"]["count"] == 2

    def test_default_registry_is_private_per_engine(self):
        first = ServeEngine(StubGrounder())
        second = ServeEngine(StubGrounder())
        assert first.metrics is not second.metrics

    def test_stats_quantiles_match_shared_histogram(self):
        from repro.obs.metrics import percentiles
        from repro.serve.stats import StatsRecorder

        recorder = StatsRecorder()
        latencies = [0.010, 0.020, 0.030, 0.500]
        for latency in latencies:
            recorder.record_request()
            recorder.record_completion(latency, hit=False)
        stats = recorder.snapshot()
        p50, p95, p99 = percentiles(latencies, (50.0, 95.0, 99.0))
        assert stats.latency_p50 == p50
        assert stats.latency_p95 == p95
        assert stats.latency_p99 == p99
        # ServerStats quantiles and the embedded TimingReport agree.
        assert stats.timing.p50 == stats.latency_p50
        assert stats.timing.p99 == stats.latency_p99

    def test_reset_only_touches_serve_metrics(self):
        from repro.obs import MetricsRegistry
        from repro.serve.stats import StatsRecorder

        registry = MetricsRegistry()
        registry.counter("train.steps").inc(3)
        recorder = StatsRecorder(registry=registry)
        recorder.record_request()
        recorder.reset()
        assert registry.counter("serve.requests").value == 0
        assert registry.counter("train.steps").value == 3

    def test_batch_spans_recorded_while_collecting(self):
        from repro.obs import collect_spans

        stub = StubGrounder()
        with collect_spans() as spans:
            with ServeEngine(stub, max_batch=2) as engine:
                engine.ground(make_image(3), "q", timeout=10)
        assert spans.calls.get("serve.batch", 0) >= 1


# ----------------------------------------------------------------------
# No-graph inference regression
# ----------------------------------------------------------------------
class TestInferenceAllocatesNoGraph:
    def test_predict_builds_no_grad_tensors(self, tiny_grounder):
        from tests.conftest import record_grad_children

        grounder, dataset = tiny_grounder
        sample = dataset["val"][0]
        with record_grad_children() as tracked:
            grounder.ground(sample.image, sample.query)
        assert tracked == [], (
            f"inference allocated {len(tracked)} grad-tracked tensors"
        )

    def test_serve_engine_builds_no_grad_tensors(self, tiny_grounder):
        from tests.conftest import record_grad_children

        grounder, dataset = tiny_grounder
        sample = dataset["val"][0]
        with record_grad_children() as tracked:
            with grounder.serve() as engine:
                engine.ground(sample.image, sample.query, timeout=30)
        assert tracked == []
