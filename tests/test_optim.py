"""Optimisers and learning-rate schedules."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Parameter
from repro.optim import SGD, Adam, ConstantLR, StepLR, WarmupCosineLR, clip_grad_norm


def quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


class TestSGD:
    def test_plain_step(self):
        p = quadratic_param()
        p.grad = np.array([1.0, -1.0])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [4.9, -2.9])

    def test_momentum_accumulates(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(2):
            p.grad = np.array([1.0, 0.0])
            opt.step()
        # Second step uses velocity 1.9.
        assert np.isclose(p.data[0], 5.0 - 0.1 - 0.1 * 1.9)

    def test_weight_decay(self):
        p = quadratic_param()
        p.grad = np.zeros(2)
        SGD([p], lr=0.1, weight_decay=1.0).step()
        assert np.allclose(p.data, [4.5, -2.7])

    def test_skips_gradless_params(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [5.0, -3.0])

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            p.grad = 2 * p.data  # d/dp ||p||^2
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([0.5])
        opt.step()
        assert np.isclose(p.data[0], 1.0 - 0.1, atol=1e-6)

    def test_trains_linear_regression(self):
        layer = Linear(1, 1)
        opt = Adam(layer.parameters(), lr=0.05)
        x = np.linspace(-1, 1, 32).reshape(-1, 1)
        y = 3 * x - 1
        for _ in range(400):
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 1e-3


class TestClipGradNorm:
    def test_no_clip_under_threshold(self):
        p = quadratic_param()
        p.grad = np.array([0.3, 0.4])
        norm = clip_grad_norm([p], 10.0)
        assert np.isclose(norm, 0.5)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clips_to_max_norm(self):
        p = quadratic_param()
        p.grad = np.array([3.0, 4.0])
        clip_grad_norm([p], 1.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)


class TestSchedulers:
    def test_constant(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.5)
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == 0.5

    def test_step_decay(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_warmup_cosine_shape(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = WarmupCosineLR(opt, warmup_steps=2, total_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < lrs[1] <= 1.0  # warmup rises
        assert lrs[-1] < 0.1  # decays toward zero

    def test_warmup_cosine_validates(self):
        opt = SGD([quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            WarmupCosineLR(opt, warmup_steps=5, total_steps=5)

    @pytest.mark.parametrize("make_sched", [
        lambda opt: StepLR(opt, step_size=2, gamma=0.5),
        lambda opt: WarmupCosineLR(opt, warmup_steps=2, total_steps=12),
    ])
    def test_state_dict_resumes_schedule_position(self, make_sched):
        # Regression: schedulers used to restart from step 0 on resume,
        # replaying the warmup/decay from scratch.
        opt = SGD([quadratic_param()], lr=1.0)
        sched = make_sched(opt)
        for _ in range(5):
            sched.step()
        snapshot = sched.state_dict()
        straight = [sched.step() for _ in range(5)]

        fresh_opt = SGD([quadratic_param()], lr=1.0)
        fresh = make_sched(fresh_opt)
        fresh.load_state_dict(snapshot)
        assert fresh.step_count == 5
        assert fresh_opt.lr == pytest.approx(sched.compute_lr(5))
        resumed = [fresh.step() for _ in range(5)]
        assert resumed == straight

    def test_cross_type_scheduler_load_rejected(self):
        opt = SGD([quadratic_param()], lr=1.0)
        step = StepLR(opt, step_size=2)
        cosine = WarmupCosineLR(SGD([quadratic_param()], lr=1.0),
                                warmup_steps=2, total_steps=10)
        with pytest.raises(ValueError):
            cosine.load_state_dict(step.state_dict())
