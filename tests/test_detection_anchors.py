"""Anchor grid generation."""

import numpy as np
import pytest

from repro.detection import AnchorGrid


@pytest.fixture
def grid():
    return AnchorGrid(grid_h=4, grid_w=6, stride=8, scales=(16.0,), aspect_ratios=(1.0, 2.0))


def test_counts(grid):
    assert grid.num_anchors_per_cell == 2
    assert grid.num_anchors == 4 * 6 * 2
    assert len(grid.all_anchors()) == grid.num_anchors


def test_base_anchor_area_preserved():
    grid = AnchorGrid(2, 2, 8, scales=(16.0,), aspect_ratios=(0.5, 1.0, 2.0))
    base = grid.base_anchors()
    areas = (base[:, 2] - base[:, 0]) * (base[:, 3] - base[:, 1])
    assert np.allclose(areas, 16.0**2)


def test_aspect_ratios_applied():
    grid = AnchorGrid(1, 1, 8, scales=(16.0,), aspect_ratios=(2.0,))
    base = grid.base_anchors()[0]
    width, height = base[2] - base[0], base[3] - base[1]
    assert np.isclose(height / width, 2.0)


def test_anchors_centred_on_cells(grid):
    anchors = grid.all_anchors()
    first = anchors[0]
    cx = (first[0] + first[2]) / 2
    cy = (first[1] + first[3]) / 2
    assert np.isclose(cx, 4.0) and np.isclose(cy, 4.0)  # (0.5 * stride)


def test_row_major_ordering(grid):
    anchors = grid.all_anchors()
    k = grid.num_anchors_per_cell
    # Second cell (row 0, col 1) is centred one stride to the right.
    second_cell = anchors[k]
    assert np.isclose((second_cell[0] + second_cell[2]) / 2, 12.0)


def test_cell_index_roundtrip(grid):
    for flat in (0, 7, grid.num_anchors - 1):
        row, col, k = grid.cell_index(flat)
        assert 0 <= row < grid.grid_h
        assert 0 <= col < grid.grid_w
        assert flat == (row * grid.grid_w + col) * grid.num_anchors_per_cell + k
