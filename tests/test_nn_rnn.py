"""Recurrent cells: LSTM, GRU, sequence unrolling with masks."""

import numpy as np

from repro.autograd import Tensor, gradient_check
from repro.nn import GRUCell, LSTM, LSTMCell


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(4, 6)
        h, c = cell.initial_state(3)
        h2, c2 = cell(make((3, 4)), (h, c))
        assert h2.shape == (3, 6) and c2.shape == (3, 6)

    def test_forget_bias_initialised(self):
        cell = LSTMCell(2, 3)
        assert np.allclose(cell.gates.bias.data[3:6], 1.0)

    def test_grad(self):
        cell = LSTMCell(3, 4)
        x = make((2, 3))

        def run(x):
            h, c = cell.initial_state(2)
            h, c = cell(x, (h, c))
            return h + c

        gradient_check(run, [x])


class TestGRUCell:
    def test_shape(self):
        cell = GRUCell(4, 5)
        out = cell(make((2, 4)), cell.initial_state(2))
        assert out.shape == (2, 5)

    def test_grad(self):
        cell = GRUCell(3, 4)
        x = make((2, 3))
        gradient_check(lambda x: cell(x, cell.initial_state(2)), [x])


class TestLSTMSequence:
    def test_output_shapes(self):
        lstm = LSTM(4, 6)
        outputs, (h, c) = lstm(make((2, 5, 4)))
        assert outputs.shape == (2, 5, 6)
        assert h.shape == (2, 6)

    def test_mask_freezes_state(self):
        """Padded steps must not change the final hidden state."""
        lstm = LSTM(3, 4)
        x = make((1, 4, 3))
        mask_short = np.array([[1, 1, 0, 0]])
        _, (h_masked, _) = lstm(x, mask=mask_short)
        x_short = Tensor(x.data[:, :2])
        _, (h_exact, _) = lstm(x_short)
        assert np.allclose(h_masked.data, h_exact.data)

    def test_mask_varies_per_sample(self):
        lstm = LSTM(3, 4)
        x = make((2, 3, 3))
        mask = np.array([[1, 0, 0], [1, 1, 1]])
        outputs, _ = lstm(x, mask=mask)
        # Sample 0 output frozen after step 0.
        assert np.allclose(outputs.data[0, 0], outputs.data[0, 2])

    def test_grad(self):
        lstm = LSTM(2, 3)
        x = make((2, 3, 2))
        mask = np.array([[1, 1, 1], [1, 1, 0]])
        gradient_check(lambda x: lstm(x, mask=mask)[0], [x])
