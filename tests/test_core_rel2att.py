"""Rel2Att modules: relation map, attention masks, ablations, padding."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import Rel2AttModule, Rel2AttStack, YolloConfig
from repro.core.rel2att import _relation_weight_mask


def config(**overrides):
    base = YolloConfig(backbone="tiny", d_model=8, d_rel=12, ffn_hidden=10,
                       max_query_length=4, num_rel2att=2)
    return base.with_overrides(**overrides) if overrides else base


def sequences(m=6, n=3, batch=2, seed=0):
    rng = np.random.default_rng(seed)
    v = Tensor(rng.normal(size=(batch, m, 8)), requires_grad=True)
    t = Tensor(rng.normal(size=(batch, n, 8)), requires_grad=True)
    return v, t


class TestWeightMask:
    def test_full_mask_is_ones(self):
        mask = _relation_weight_mask(1, 4, 2, None, True, True)
        assert np.allclose(mask, 1.0)

    def test_self_blocks_wiped(self):
        mask = _relation_weight_mask(1, 4, 2, None, False, True)[0]
        assert np.allclose(mask[:4, :4], 0.0)
        assert np.allclose(mask[4:, 4:], 0.0)
        assert np.allclose(mask[:4, 4:], 1.0)

    def test_co_blocks_wiped(self):
        mask = _relation_weight_mask(1, 4, 2, None, True, False)[0]
        assert np.allclose(mask[:4, 4:], 0.0)
        assert np.allclose(mask[4:, :4], 0.0)
        assert np.allclose(mask[:4, :4], 1.0)

    def test_padding_zeroes_rows_and_columns(self):
        token_mask = np.array([[1.0, 0.0]])
        mask = _relation_weight_mask(1, 3, 2, token_mask, True, True)[0]
        assert np.allclose(mask[:, 4], 0.0)
        assert np.allclose(mask[4, :], 0.0)
        assert np.allclose(mask[3, :4], 1.0)


class TestRel2AttModule:
    def test_output_shapes(self):
        module = Rel2AttModule(config())
        v, t = sequences()
        av, at, att_v, att_t = module(v, t)
        assert av.shape == v.shape and at.shape == t.shape
        assert att_v.shape == (2, 6) and att_t.shape == (2, 3)

    def test_relation_map_shape(self):
        module = Rel2AttModule(config())
        v, t = sequences()
        assert module.relation_map(v, t).shape == (2, 9, 9)

    def test_padded_tokens_get_zero_attention(self):
        module = Rel2AttModule(config())
        v, t = sequences()
        token_mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        _, _, _, att_t = module(v, t, token_mask)
        assert np.allclose(att_t.data[0, 2], 0.0)
        assert np.allclose(att_t.data[1, 1:], 0.0)

    def test_padding_content_invariance(self):
        """Garbage in padded token slots must not change att_v."""
        module = Rel2AttModule(config())
        v, t = sequences()
        token_mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0]])
        _, _, att_v_a, _ = module(v, t, token_mask)
        t_garbage = Tensor(t.data.copy())
        t_garbage.data[:, 2] = 99.0
        _, _, att_v_b, _ = module(v, t_garbage, token_mask)
        assert np.allclose(att_v_a.data, att_v_b.data)

    def test_no_co_attention_makes_image_query_blind(self):
        module = Rel2AttModule(config(use_co_attention=False))
        v, t = sequences()
        _, _, att_a, _ = module(v, t)
        t_other = Tensor(np.random.default_rng(42).normal(size=t.shape))
        _, _, att_b, _ = module(v, t_other)
        assert np.allclose(att_a.data, att_b.data)

    def test_gain_scales_attention(self):
        cfg_small = config(att_gain_init=1.0)
        cfg_big = config(att_gain_init=10.0)
        from repro.utils import seed_everything

        seed_everything(5)
        small = Rel2AttModule(cfg_small)
        seed_everything(5)
        big = Rel2AttModule(cfg_big)
        v, t = sequences()
        _, _, att_small, _ = small(v, t)
        _, _, att_big, _ = big(v, t)
        assert np.allclose(att_big.data, 10.0 * att_small.data)

    def test_gradients_flow_to_inputs(self):
        module = Rel2AttModule(config())
        v, t = sequences()
        av, at, _, _ = module(v, t)
        (av.sum() + at.sum()).backward()
        assert v.grad is not None and t.grad is not None


class TestClauseConditioning:
    def _masks(self, batch=2, clauses=2, n=3):
        masks = np.zeros((batch, clauses, n))
        masks[:, 0, :2] = 1.0
        masks[:, 1, 1:] = 1.0
        return masks

    def test_zero_rows_bit_exact(self):
        """All-zero clause rows are indistinguishable from no masks."""
        module = Rel2AttModule(config())
        v, t = sequences()
        _, _, att_v_a, att_t_a = module(v, t)
        _, _, att_v_b, att_t_b = module(
            v, t, clause_masks=np.zeros((2, 3, 3)))
        assert np.array_equal(att_v_a.data, att_v_b.data)
        assert np.array_equal(att_t_a.data, att_t_b.data)

    def test_single_active_clause_bit_exact(self):
        """One active clause is below the conditioning threshold."""
        module = Rel2AttModule(config())
        v, t = sequences()
        masks = np.zeros((2, 2, 3))
        masks[:, 0, :] = 1.0
        _, _, att_v_a, att_t_a = module(v, t)
        _, _, att_v_b, att_t_b = module(v, t, clause_masks=masks)
        assert np.array_equal(att_v_a.data, att_v_b.data)
        assert np.array_equal(att_t_a.data, att_t_b.data)

    def test_two_clauses_change_attention(self):
        module = Rel2AttModule(config())
        v, t = sequences()
        _, _, att_v_flat, _ = module(v, t)
        _, _, att_v_cond, _ = module(v, t, clause_masks=self._masks())
        assert not np.allclose(att_v_flat.data, att_v_cond.data)

    def test_mixed_batch_per_sample_fallback(self):
        """Zero-row samples stay bit-exact inside a conditioned batch."""
        module = Rel2AttModule(config())
        v, t = sequences()
        masks = self._masks()
        masks[0] = 0.0  # sample 0 falls back, sample 1 conditions
        _, _, att_v_flat, att_t_flat = module(v, t)
        _, _, att_v, att_t = module(v, t, clause_masks=masks)
        assert np.array_equal(att_v.data[0], att_v_flat.data[0])
        assert np.array_equal(att_t.data[0], att_t_flat.data[0])
        assert not np.allclose(att_v.data[1], att_v_flat.data[1])

    def test_token_mask_still_respected(self):
        """PAD positions stay zero even when a clause row covers them."""
        module = Rel2AttModule(config())
        v, t = sequences()
        token_mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0]])
        masks = np.zeros((2, 2, 3))
        masks[:, 0, 0] = 1.0
        masks[:, 1, 1:] = 1.0  # overlaps the PAD slot
        _, _, _, att_t = module(v, t, token_mask, masks)
        assert np.allclose(att_t.data[:, 2], 0.0)

    def test_gradients_flow_with_clause_masks(self):
        module = Rel2AttModule(config())
        v, t = sequences()
        av, at, _, _ = module(v, t, clause_masks=self._masks())
        (av.sum() + at.sum()).backward()
        assert v.grad is not None and t.grad is not None

    def test_no_new_parameters(self):
        """Clause conditioning is pure pooling; checkpoints stay loadable."""
        module = Rel2AttModule(config())
        v, t = sequences()
        module(v, t, clause_masks=self._masks())
        names = set(module.state_dict())
        fresh = set(Rel2AttModule(config()).state_dict())
        assert names == fresh

    def test_stack_accepts_clause_masks(self):
        stack = Rel2AttStack(config())
        v, t = sequences()
        out_flat, _ = stack(v, t)
        out_cond, masks = stack(v, t, clause_masks=self._masks())
        assert out_cond.shape == v.shape
        assert len(masks) == 2
        assert not np.allclose(out_flat.data, out_cond.data)


class TestRel2AttStack:
    def test_stack_depth_respected(self):
        stack = Rel2AttStack(config())
        v, t = sequences()
        out, masks = stack(v, t)
        assert len(masks) == 2
        assert out.shape == v.shape

    def test_residual_connections_change_features(self):
        stack = Rel2AttStack(config())
        v, t = sequences()
        out, _ = stack(v, t)
        assert not np.allclose(out.data, v.data)

    def test_bounded_reweighting_stays_finite(self):
        """Large-magnitude inputs must not overflow through the stack."""
        stack = Rel2AttStack(config(num_rel2att=3))
        rng = np.random.default_rng(0)
        v = Tensor(rng.normal(scale=30.0, size=(1, 6, 8)))
        t = Tensor(rng.normal(scale=30.0, size=(1, 3, 8)))
        out, masks = stack(v, t)
        assert np.all(np.isfinite(out.data))
        assert all(np.all(np.isfinite(m.data)) for m in masks)
