"""Graph compiler: tracing, optimisation passes, plans, compiled predict."""

import numpy as np
import pytest

from repro import autograd
from repro.autograd import Tensor, no_grad
from repro.core import Grounder, YolloConfig, YolloModel
from repro.data import REFCOCO, build_dataset
from repro.data.loader import encode_batch
from repro.graph import (
    ExecutionPlan,
    PlanCache,
    eliminate_dead_nodes,
    fold_batchnorm,
    fold_constants,
    fuse_epilogues,
    optimize_graph,
    trace,
)
from repro.nn.norm import BatchNorm2d
from repro.utils import seed_everything


@pytest.fixture(scope="module")
def dataset():
    seed_everything(29)
    return build_dataset(REFCOCO.scaled(0.04))


def make_model(dataset, backbone="tiny"):
    seed_everything(31)
    cfg = YolloConfig(
        backbone=backbone, d_model=12, d_rel=16, ffn_hidden=16, head_hidden=16,
        num_rel2att=2, max_query_length=max(6, dataset.max_query_length),
        batch_size=4,
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    model.eval()
    return model, cfg


def batch_of(dataset, cfg, n=3, split="val"):
    return encode_batch(dataset[split][:n], dataset.vocab, cfg.max_query_length)


def assert_predictions_bitwise_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.box.tobytes() == b.box.tobytes()
        assert a.score == b.score
        assert a.anchor_index == b.anchor_index
        assert a.attention_map.tobytes() == b.attention_map.tobytes()


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTrace:
    def test_records_ops_inputs_and_constants(self):
        weight = Tensor(np.arange(6.0).reshape(3, 2))

        def fn(x):
            return (x.matmul(weight.transpose(1, 0)) + 1.0).relu()

        x = Tensor(np.ones((4, 2)))
        traced = trace(fn, x, name="toy")
        ops = traced.graph.op_counts()
        assert len(traced.graph.inputs) == 1
        assert ops.get("matmul") == 1
        assert ops.get("add") == 1
        assert ops.get("relu") == 1
        # The weight and its transpose are trace-time constants.
        assert ops.get("constant", 0) >= 1

    def test_replay_matches_eager_on_fresh_inputs(self):
        weight = Tensor(np.linspace(-1.0, 1.0, 12).reshape(3, 4))

        def fn(x):
            return (x.matmul(weight) - 0.25).relu().sum(axis=1)

        traced = trace(fn, Tensor(np.zeros((2, 3))))
        optimize_graph(traced.graph)
        plan = ExecutionPlan(traced)
        fresh = Tensor(np.linspace(-2.0, 2.0, 6).reshape(2, 3))
        eager = fn(fresh).data
        compiled = plan.run(fresh).data
        assert eager.tobytes() == compiled.tobytes()

    def test_pytree_output_structure_roundtrips(self):
        def fn(x):
            doubled = x * 2.0
            return {"pair": (doubled, x + 1.0), "list": [x.relu()]}

        x = Tensor(np.array([[1.0, -1.0]]))
        traced = trace(fn, x)
        plan = ExecutionPlan(traced)
        out = plan.run(x)
        assert set(out) == {"pair", "list"}
        assert isinstance(out["pair"], tuple) and len(out["pair"]) == 2
        np.testing.assert_array_equal(out["pair"][0].data, [[2.0, -2.0]])
        np.testing.assert_array_equal(out["list"][0].data, [[1.0, 0.0]])

    def test_model_forward_traces_without_fallbacks(self, dataset):
        model, cfg = make_model(dataset)
        batch = batch_of(dataset, cfg)
        with no_grad():
            traced = trace(
                model.forward, Tensor(batch["images"]),
                batch["token_ids"], batch["token_mask"],
            )
        optimize_graph(traced.graph)
        plan = ExecutionPlan(traced)
        assert plan.fallbacks == 0


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
class TestPasses:
    def test_fold_constants_collapses_constant_subtree(self):
        w = Tensor(np.full((2, 2), 3.0))

        def fn(x):
            return x + (w * 2.0).transpose(1, 0)

        traced = trace(fn, Tensor(np.zeros((2, 2))))
        folded = fold_constants(traced.graph)
        assert folded >= 2  # the mul and the transpose
        ops = traced.graph.op_counts()
        assert "mul" not in ops and "transpose" not in ops

    def test_dead_node_elimination_counts_and_removes(self):
        def fn(x):
            unused = x * 100.0  # noqa: F841 — traced but not returned
            return x + 1.0

        traced = trace(fn, Tensor(np.ones(3)))
        before = len(traced.graph)
        removed = eliminate_dead_nodes(traced.graph)
        assert removed == 2  # the mul and its lifted 100.0 constant
        assert len(traced.graph) == before - 2
        assert "mul" not in traced.graph.op_counts()

    def test_batchnorm_chain_folds_to_single_affine(self):
        mean = Tensor(np.array([1.0, -2.0]).reshape(1, 2, 1, 1))
        denom = Tensor(np.array([2.0, 4.0]).reshape(1, 2, 1, 1))
        scale = Tensor(np.array([0.5, 1.5]).reshape(1, 2, 1, 1))
        shift = Tensor(np.array([0.1, -0.1]).reshape(1, 2, 1, 1))

        def fn(x):
            return ((x - mean) / denom) * scale + shift

        x = Tensor(np.arange(16.0).reshape(1, 2, 2, 4))
        traced = trace(fn, x)
        fold_constants(traced.graph)
        assert fold_batchnorm(traced.graph) == 1
        assert len(traced.graph.find("bn_affine")) == 1
        for op in ("sub", "div", "mul", "add"):
            assert op not in traced.graph.op_counts()
        plan = ExecutionPlan(traced)
        fresh = Tensor(np.linspace(-3.0, 3.0, 16).reshape(1, 2, 2, 4))
        assert plan.run(fresh).data.tobytes() == fn(fresh).data.tobytes()

    def test_conv_relu_fuses_into_one_node(self):
        weight = Tensor(np.linspace(-0.5, 0.5, 2 * 3 * 3 * 3).reshape(2, 3, 3, 3))
        bias = Tensor(np.array([0.25, -0.25]))

        def fn(x):
            # Call through the module so the tracer's patched binding is
            # the one resolved (frozen ``from … import conv2d`` names in
            # non-repro modules are deliberately left untouched).
            return autograd.conv2d(x, weight, bias, stride=1, padding=1).relu()

        x = Tensor(np.random.default_rng(5).normal(size=(2, 3, 6, 6)))
        traced = trace(fn, x)
        fold_constants(traced.graph)
        assert fuse_epilogues(traced.graph) == 1
        eliminate_dead_nodes(traced.graph)
        fused = traced.graph.find("conv2d")
        assert len(fused) == 1 and fused[0].name == "conv2d+relu"
        assert "relu" not in traced.graph.op_counts()
        plan = ExecutionPlan(traced)
        fresh = Tensor(np.random.default_rng(6).normal(size=(2, 3, 6, 6)))
        assert plan.run(fresh).data.tobytes() == fn(fresh).data.tobytes()

    def test_model_level_batchnorm_folding_count(self, dataset):
        model, cfg = make_model(dataset, backbone="tiny-bn")
        batch = batch_of(dataset, cfg)
        with no_grad():
            traced = trace(
                model.forward, Tensor(batch["images"]),
                batch["token_ids"], batch["token_mask"],
            )
        counts = optimize_graph(traced.graph)
        bn_modules = sum(
            isinstance(m, BatchNorm2d) for m in model.modules()
        )
        assert bn_modules > 0
        assert counts["folded_batchnorm"] == bn_modules
        assert counts["fused_epilogues"] > 0
        assert counts["eliminated_dead"] > 0

    def test_model_level_fusion_on_norm_free_backbone(self, dataset):
        model, cfg = make_model(dataset, backbone="tiny")
        batch = batch_of(dataset, cfg)
        with no_grad():
            traced = trace(
                model.forward, Tensor(batch["images"]),
                batch["token_ids"], batch["token_mask"],
            )
        counts = optimize_graph(traced.graph)
        assert counts["folded_batchnorm"] == 0
        assert counts["fused_epilogues"] > 0
        names = {node.name for node in traced.graph.nodes}
        assert any(name.startswith("conv2d+") for name in names)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class TestExecutor:
    def _plan(self):
        w1 = Tensor(np.linspace(-1.0, 1.0, 16).reshape(4, 4))
        w2 = Tensor(np.linspace(1.0, -1.0, 16).reshape(4, 4))

        def fn(x):
            h = (x.matmul(w1) + 0.5).relu()
            h = (h.matmul(w2) - 0.5).relu()
            return h.sum(axis=1)

        traced = trace(fn, Tensor(np.zeros((8, 4))))
        optimize_graph(traced.graph)
        return fn, ExecutionPlan(traced)

    def test_arena_reuses_buffers(self):
        _, plan = self._plan()
        assert plan.arena_reuses > 0
        assert plan.arena_buffers < plan.num_kernels

    def test_outputs_are_private_copies(self):
        fn, plan = self._plan()
        x = Tensor(np.random.default_rng(0).normal(size=(8, 4)))
        first = plan.run(x)
        first_bytes = first.data.tobytes()
        first.data[:] = np.nan  # clobber the returned array
        second = plan.run(x)
        assert second.data.tobytes() == first_bytes

    def test_shape_mismatch_is_rejected(self):
        from repro.graph.executor import CompileError

        _, plan = self._plan()
        with pytest.raises(CompileError):
            plan.run(Tensor(np.zeros((3, 4))))

    def test_describe_mentions_kernels_and_arena(self):
        _, plan = self._plan()
        text = plan.describe()
        assert "kernels" in text and "arena" in text


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_lru_eviction_and_counters(self):
        cache = PlanCache(max_plans=2)
        cache.store("a", object(), 1.0)
        cache.store("b", object(), 2.0)
        assert cache.get("a") is not None  # refresh: "b" is coldest
        cache.store("c", object(), 3.0)
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["compiles"] == 3
        assert stats["lookups"] == 4 and stats["hits"] == 3

    def test_drain_compile_events_empties_queue(self):
        cache = PlanCache()
        cache.store("k1", object(), 12.5)
        cache.store("k2", object(), 2.5)
        events = cache.drain_compile_events()
        assert [key for key, _ in events] == ["k1", "k2"]
        assert sum(ms for _, ms in events) == 15.0
        assert cache.drain_compile_events() == []

    def test_clear_resets_plans(self):
        cache = PlanCache()
        cache.store("k", object(), 1.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_concurrent_get_store_keeps_counters_consistent(self):
        import threading

        cache = PlanCache(max_plans=8)
        workers = 8
        rounds = 200
        misses = [0] * workers

        def pound(tid):
            key = ("shape-a", "shape-b")[tid % 2]
            for _ in range(rounds):
                if cache.get(key) is None:
                    misses[tid] += 1
                    cache.store(key, object(), 0.1)

        threads = [
            threading.Thread(target=pound, args=(tid,))
            for tid in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats()
        # Two shapes racing: every lookup is counted exactly once, every
        # miss compiled exactly once, and nothing was evicted or lost.
        assert stats["lookups"] == workers * rounds
        assert stats["compiles"] == sum(misses)
        assert stats["hits"] == stats["lookups"] - sum(misses)
        assert stats["evictions"] == 0
        assert stats["plans"] == 2
        assert cache.get("shape-a") is not None
        assert cache.get("shape-b") is not None

    def test_eviction_frees_evicted_plans_arena(self):
        import gc
        import weakref

        def make_plan(batch):
            w = Tensor(np.linspace(-1.0, 1.0, 16).reshape(4, 4))

            def fn(x):
                return (x.matmul(w) + 1.0).relu().sum(axis=1)

            traced = trace(fn, Tensor(np.zeros((batch, 4))))
            optimize_graph(traced.graph)
            return ExecutionPlan(traced)

        small = make_plan(2)
        big = make_plan(64)
        assert big.arena_bytes > small.arena_bytes
        evicted = weakref.ref(big)

        cache = PlanCache(max_plans=1)
        cache.store((64, 4), big, 1.0)
        del big
        cache.store((2, 4), small, 1.0)  # evicts the large plan
        gc.collect()

        assert cache.stats()["evictions"] == 1
        # The evicted plan (and with it the arena backing its kernels)
        # is actually collectable — the cache keeps no hidden reference.
        assert evicted() is None
        retained = sum(
            plan.arena_bytes for plan in cache._plans.values()
        )
        assert retained == small.arena_bytes
        assert f"{small.arena_bytes / 1024:.1f} KiB" in small.describe()


# ----------------------------------------------------------------------
# Compiled predict — bit-exactness across presets
# ----------------------------------------------------------------------
class TestCompiledPredict:
    @pytest.mark.parametrize(
        "backbone", ["tiny", "tiny-bn", "resnet50-bn", "vgg"]
    )
    def test_compiled_matches_eager_bitwise(self, dataset, backbone):
        model, cfg = make_model(dataset, backbone=backbone)
        batch = batch_of(dataset, cfg, n=3)
        eager = model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"]
        )
        model.compile()
        compiled = model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"]
        )
        again = model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"]
        )
        assert_predictions_bitwise_equal(eager, compiled)
        assert_predictions_bitwise_equal(eager, again)
        stats = model.plan_cache.stats()
        assert stats["compiles"] == 1 and stats["hits"] == 1

    def test_compiled_matches_eager_without_mask(self, dataset):
        model, cfg = make_model(dataset)
        batch = batch_of(dataset, cfg, n=2)
        eager = model.predict(batch["images"], batch["token_ids"], None)
        model.compile()
        compiled = model.predict(batch["images"], batch["token_ids"], None)
        assert_predictions_bitwise_equal(eager, compiled)

    def test_distinct_batch_shapes_compile_distinct_plans(self, dataset):
        model, cfg = make_model(dataset)
        model.compile()
        big = batch_of(dataset, cfg, n=3)
        small = batch_of(dataset, cfg, n=1)
        model.predict(big["images"], big["token_ids"], big["token_mask"])
        model.predict(small["images"], small["token_ids"], small["token_mask"])
        assert len(model.plan_cache) == 2

    def test_bit_exact_after_checkpoint_roundtrip(self, dataset, tmp_path):
        model, cfg = make_model(dataset, backbone="tiny-bn")
        batch = batch_of(dataset, cfg, n=2)
        model.compile()
        before = model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"]
        )
        state = model.state_dict()
        model.load_state_dict(state)
        assert len(model.plan_cache) == 0  # plans invalidated by new weights
        after = model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"]
        )
        assert_predictions_bitwise_equal(before, after)

    def test_train_mode_invalidates_plans(self, dataset):
        model, cfg = make_model(dataset)
        batch = batch_of(dataset, cfg, n=1)
        model.compile()
        model.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        assert len(model.plan_cache) == 1
        model.train()
        assert len(model.plan_cache) == 0

    def test_uncompile_restores_eager_predict(self, dataset):
        model, cfg = make_model(dataset)
        batch = batch_of(dataset, cfg, n=1)
        model.compile()
        model.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        model.uncompile()
        assert model.plan_cache is None
        # Eager path still works and matches.
        model.predict(batch["images"], batch["token_ids"], batch["token_mask"])

    def test_grounder_compile_roundtrip(self, dataset):
        model, cfg = make_model(dataset)
        grounder = Grounder(model, dataset.vocab)
        samples = dataset["val"][:2]
        eager = grounder.ground_batch(samples)
        grounder.compile()
        compiled = grounder.ground_batch(samples)
        assert eager.tobytes() == compiled.tobytes()
        assert grounder.plan_cache is model.plan_cache
        grounder.uncompile()
        assert grounder.plan_cache is None


# ----------------------------------------------------------------------
# Observability integration
# ----------------------------------------------------------------------
class TestProfilerAttribution:
    def test_plan_execution_records_op_events_and_span(self, dataset):
        from repro.obs import profile

        model, cfg = make_model(dataset)
        batch = batch_of(dataset, cfg, n=1)
        model.compile()
        # Compile outside the profiled region: steady-state attribution.
        model.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        with profile() as prof:
            model.predict(
                batch["images"], batch["token_ids"], batch["token_mask"]
            )
        names = {stat.name for stat in prof.op_stats()}
        assert any("conv2d" in name for name in names)
        span_totals = prof.span_totals()
        assert "graph.execute" in span_totals
        assert "yollo.forward" in span_totals

    def test_tracing_under_active_profiler_succeeds(self, dataset):
        from repro.obs import profile

        model, cfg = make_model(dataset)
        batch = batch_of(dataset, cfg, n=1)
        model.compile()
        with profile():
            compiled = model.predict(
                batch["images"], batch["token_ids"], batch["token_mask"]
            )
        model.uncompile()
        eager = model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"]
        )
        assert_predictions_bitwise_equal(eager, compiled)
