"""Scene rasterisation."""

import numpy as np

from repro.data import COLOR_VALUES, Scene, SceneObject
from repro.data.render import GLYPHS, render_object, render_scene


def scene_with(category="ball", color="red", box=(10, 10, 30, 30)):
    obj = SceneObject(category=category, color=color, box=np.asarray(box, dtype=float))
    return Scene(48, 72, [obj])


def test_output_shape_and_range():
    image = render_scene(scene_with(), rng=np.random.default_rng(0))
    assert image.shape == (3, 48, 72)
    assert image.min() >= 0.0 and image.max() <= 1.0


def test_object_pixels_take_color():
    image = render_scene(scene_with("cup", "blue"), noise_std=0.0)
    center = image[:, 20, 20]
    assert np.allclose(center, COLOR_VALUES["blue"])


def test_background_darker_than_objects():
    image = render_scene(scene_with(color="white"), noise_std=0.0)
    assert image[:, 0, 0].mean() < 0.2


def test_every_category_has_distinct_glyph():
    masks = {name: fn(16, 16) for name, fn in GLYPHS.items()}
    names = list(masks)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            assert not np.array_equal(masks[names[i]], masks[names[j]])


def test_glyphs_nonempty_at_small_sizes():
    for name, fn in GLYPHS.items():
        assert fn(8, 8).sum() > 0, name


def test_render_object_clips_to_canvas():
    canvas = np.zeros((3, 20, 20))
    obj = SceneObject("ball", "red", np.array([15.0, 15.0, 30.0, 30.0]))
    render_object(canvas, obj)  # must not raise
    assert canvas.sum() > 0


def test_determinism_with_seeded_rng():
    a = render_scene(scene_with(), rng=np.random.default_rng(5))
    b = render_scene(scene_with(), rng=np.random.default_rng(5))
    assert np.array_equal(a, b)


def test_noise_controlled_by_std():
    clean = render_scene(scene_with(), noise_std=0.0)
    noisy = render_scene(scene_with(), noise_std=0.05, rng=np.random.default_rng(1))
    assert not np.array_equal(clean, noisy)
