"""The gradient checker itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradient_check
from repro.autograd.tensor import _unbroadcast


def test_detects_incorrect_gradient():
    """A hand-built op with a deliberately wrong backward must fail."""

    def buggy_double(x: Tensor) -> Tensor:
        out = x._make_child(x.data * 2.0, (x,))

        def backward(grad):
            x._accumulate(grad * 3.0)  # wrong: should be 2.0

        out._backward = backward
        return out

    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(AssertionError):
        gradient_check(buggy_double, [x])


def test_passes_correct_gradient():
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3)), requires_grad=True)
    assert gradient_check(lambda x: x * 2 + 1, [x])


def test_reports_missing_gradient():
    def disconnected(x: Tensor) -> Tensor:
        return Tensor(x.data * 2.0, requires_grad=True)

    x = Tensor(np.ones(2), requires_grad=True)
    with pytest.raises((AssertionError, RuntimeError)):
        gradient_check(disconnected, [x])


def test_skips_inputs_without_grad():
    x = Tensor(np.ones(2), requires_grad=True)
    const = Tensor(np.ones(2), requires_grad=False)
    assert gradient_check(lambda a, b: a * b, [x, const])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_leading_axis_summed(self):
        assert _unbroadcast(np.ones((4, 2)), (2,)).tolist() == [4.0, 4.0]

    def test_size_one_axis_summed(self):
        out = _unbroadcast(np.ones((3, 5)), (3, 1))
        assert out.shape == (3, 1)
        assert np.allclose(out, 5.0)

    def test_scalar_target(self):
        assert _unbroadcast(np.ones((2, 2)), ()) == 4.0
