"""Backbones: ResNet/VGG trunks, presets, synthetic pre-training."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.backbone import (
    BACKBONE_PRESETS,
    ClassificationHead,
    MiniResNet,
    MiniVGG,
    build_backbone,
    load_pretrained_backbone,
    pretrain_backbone,
)
from repro.backbone.resnet import BasicBlock, make_norm


def images(n=2, h=48, w=72, seed=0):
    return Tensor(np.random.default_rng(seed).random((n, 3, h, w)))


class TestMiniResNet:
    def test_output_shape_and_stride(self):
        net = MiniResNet(stage_channels=(8, 12), blocks_per_stage=(1, 1))
        assert net.stride == 8
        out = net(images())
        assert out.shape == (2, 12, 6, 9)

    def test_feature_shape_helper(self):
        net = MiniResNet(stage_channels=(8,), blocks_per_stage=(1,))
        assert net.feature_shape(48, 72) == (8, 12, 18)

    def test_depth_increases_parameters(self):
        shallow = MiniResNet(blocks_per_stage=(1, 1))
        deep = MiniResNet(blocks_per_stage=(2, 2))
        assert deep.num_parameters() > shallow.num_parameters()

    def test_mismatched_config_rejected(self):
        with pytest.raises(ValueError):
            MiniResNet(stage_channels=(8, 12), blocks_per_stage=(1,))

    def test_gradients_reach_stem(self):
        net = MiniResNet(stem_channels=4, stage_channels=(6,), blocks_per_stage=(1,))
        out = net(images(1, 16, 16))
        out.sum().backward()
        assert net.stem.weight.grad is not None


class TestBasicBlock:
    def test_shortcut_created_on_channel_change(self):
        assert BasicBlock(4, 8).shortcut is not None
        assert BasicBlock(8, 8).shortcut is None

    def test_identity_block_preserves_shape(self):
        block = BasicBlock(6, 6)
        x = images(1, 8, 8).data[:, :3]
        x6 = Tensor(np.concatenate([x, x], axis=1))
        assert block(x6).shape == x6.shape


class TestNorms:
    def test_make_norm_kinds(self):
        assert make_norm("group", 8).__class__.__name__ == "GroupNorm2d"
        assert make_norm("batch", 8).__class__.__name__ == "BatchNorm2d"
        assert make_norm("none", 8).__class__.__name__ == "Identity"

    def test_unknown_norm(self):
        with pytest.raises(ValueError):
            make_norm("spectral", 8)


class TestMiniVGG:
    def test_output_shape(self):
        net = MiniVGG(stage_channels=(8, 12, 16))
        assert net.stride == 8
        assert net(images()).shape == (2, 16, 6, 9)


class TestPresets:
    @pytest.mark.parametrize("name", sorted(BACKBONE_PRESETS))
    def test_preset_builds_and_runs(self, name):
        net = build_backbone(name)
        out = net(images(1))
        assert out.shape[2] == 48 // net.stride

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            build_backbone("resnet9000")

    def test_resnet101_deeper_than_resnet50(self):
        assert (build_backbone("resnet101").num_parameters()
                > build_backbone("resnet50").num_parameters())


class TestPretraining:
    def test_history_recorded(self):
        net = build_backbone("tiny")
        history = pretrain_backbone(net, steps=3, batch_size=4)
        assert len(history["loss"]) == 3
        assert all(np.isfinite(history["loss"]))

    def test_classification_head_shapes(self):
        head = ClassificationHead(16)
        features = Tensor(np.random.default_rng(0).random((2, 16, 4, 6)))
        cats, colors = head(features)
        assert cats.shape[0] == 2 and colors.shape[0] == 2

    def test_cache_roundtrip(self, tmp_path):
        first = load_pretrained_backbone("tiny", steps=2, cache_dir=str(tmp_path))
        second = load_pretrained_backbone("tiny", steps=2, cache_dir=str(tmp_path))
        a = dict(first.named_parameters())
        b = dict(second.named_parameters())
        assert all(np.allclose(a[k].data, b[k].data) for k in a)

    def test_cache_miss_does_not_perturb_global_rng(self, tmp_path):
        # Regression: the pretrain head used to draw its initial weights
        # from the process-global generator, which only the cache-miss
        # path constructs — so a cold-cache run and a warm-cache run of
        # the same seed produced entirely different downstream models.
        from repro.utils import get_rng, seed_everything

        seed_everything(0)
        cold = load_pretrained_backbone("tiny", steps=2, cache_dir=str(tmp_path))
        after_cold = get_rng().random(8)

        seed_everything(0)
        warm = load_pretrained_backbone("tiny", steps=2, cache_dir=str(tmp_path))
        after_warm = get_rng().random(8)

        assert np.array_equal(after_cold, after_warm)
        a, b = cold.state_dict(), warm.state_dict()
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_cache_roundtrips_buffers(self, tmp_path):
        # BatchNorm running statistics must survive the pretrain cache.
        first = load_pretrained_backbone("tiny-bn", steps=2, cache_dir=str(tmp_path))
        second = load_pretrained_backbone("tiny-bn", steps=2, cache_dir=str(tmp_path))
        a, b = dict(first.named_buffers()), dict(second.named_buffers())
        assert a and set(a) == set(b)
        assert all(np.array_equal(a[k], b[k]) for k in a)
