"""Module system: registration, parameter collection, persistence."""

import os

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, Parameter, Sequential


class Child(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))


class Parent(Module):
    def __init__(self):
        super().__init__()
        self.child = Child()
        self.bias = Parameter(np.zeros(2))


def test_parameter_requires_grad():
    assert Parameter(np.ones(2)).requires_grad


def test_recursive_named_parameters():
    names = dict(Parent().named_parameters())
    assert set(names) == {"bias", "child.weight"}


def test_num_parameters():
    assert Parent().num_parameters() == 5


def test_modules_iterates_tree():
    assert len(list(Parent().modules())) == 2


def test_zero_grad_clears():
    model = Parent()
    for p in model.parameters():
        p.grad = np.ones_like(p.data)
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters())


def test_train_eval_propagates():
    model = Parent()
    model.eval()
    assert not model.child.training
    model.train()
    assert model.child.training


def test_state_dict_roundtrip():
    a, b = Parent(), Parent()
    a.bias.data[:] = 7.0
    b.load_state_dict(a.state_dict())
    assert np.allclose(b.bias.data, 7.0)


def test_state_dict_returns_copies():
    model = Parent()
    state = model.state_dict()
    state["bias"][:] = 99.0
    assert model.bias.data[0] == 0.0


def test_load_state_dict_missing_key():
    with pytest.raises(KeyError):
        Parent().load_state_dict({"bias": np.zeros(2)})


def test_load_state_dict_shape_mismatch():
    state = Parent().state_dict()
    state["bias"] = np.zeros(5)
    with pytest.raises(ValueError):
        Parent().load_state_dict(state)


def test_save_load_file(tmp_path):
    path = os.path.join(tmp_path, "model.npz")
    a = Parent()
    a.child.weight.data[:] = 3.0
    a.save(path)
    b = Parent()
    b.load(path)
    assert np.allclose(b.child.weight.data, 3.0)


def test_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module()(1)


def test_sequential_indexing_and_len():
    seq = Sequential(Linear(2, 3), Linear(3, 4))
    assert len(seq) == 2
    assert isinstance(seq[1], Linear)
    assert seq(Tensor(np.ones((1, 2)))).shape == (1, 4)


# ----------------------------------------------------------------------
# Buffers (persistent non-trainable state)
# ----------------------------------------------------------------------
class Stateful(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))
        self.register_buffer("counter", np.zeros(3))


class StatefulParent(Module):
    def __init__(self):
        super().__init__()
        self.child = Stateful()
        self.register_buffer("offset", np.full(2, 5.0))


class TestBuffers:
    def test_named_buffers_recursive(self):
        names = dict(StatefulParent().named_buffers())
        assert set(names) == {"offset", "child.counter"}

    def test_buffers_not_parameters(self):
        model = StatefulParent()
        assert {name for name, _ in model.named_parameters()} == {"child.weight"}
        assert len(model.buffers()) == 2

    def test_reassignment_keeps_registry_in_sync(self):
        model = Stateful()
        model.counter = model.counter + 7.0  # exponential-average style update
        assert np.allclose(dict(model.named_buffers())["counter"], 7.0)
        assert np.allclose(model.state_dict()["counter"], 7.0)

    def test_state_dict_includes_buffers_and_roundtrips(self):
        a, b = StatefulParent(), StatefulParent()
        a.child.counter = np.array([1.0, 2.0, 3.0])
        a.offset = np.array([8.0, 9.0])
        b.load_state_dict(a.state_dict())
        assert np.array_equal(b.child.counter, [1.0, 2.0, 3.0])
        assert np.array_equal(b.offset, [8.0, 9.0])

    def test_state_dict_returns_buffer_copies(self):
        model = StatefulParent()
        state = model.state_dict()
        state["offset"][:] = -1.0
        assert model.offset[0] == 5.0

    def test_missing_buffer_key_rejected(self):
        state = StatefulParent().state_dict()
        del state["child.counter"]
        with pytest.raises(KeyError):
            StatefulParent().load_state_dict(state)

    def test_buffer_shape_mismatch_rejected(self):
        state = StatefulParent().state_dict()
        state["offset"] = np.zeros(9)
        with pytest.raises(ValueError):
            StatefulParent().load_state_dict(state)

    def test_buffers_survive_npz_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "model.npz")
        a = StatefulParent()
        a.child.counter = np.array([4.0, 5.0, 6.0])
        a.save(path)
        b = StatefulParent()
        b.load(path)
        assert np.array_equal(b.child.counter, [4.0, 5.0, 6.0])
