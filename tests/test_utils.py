"""Utilities: seeding and progress logging."""

import numpy as np

from repro.utils import ProgressLogger, get_rng, seed_everything, spawn_rng


class TestSeeding:
    def test_seed_everything_reproducible(self):
        seed_everything(5)
        a = get_rng().random(4)
        seed_everything(5)
        b = get_rng().random(4)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        seed_everything(5)
        a = get_rng().random(4)
        seed_everything(6)
        b = get_rng().random(4)
        assert not np.allclose(a, b)

    def test_spawn_rng_tag_isolated(self):
        seed_everything(5)
        a = spawn_rng("alpha").random(4)
        b = spawn_rng("beta").random(4)
        assert not np.allclose(a, b)

    def test_spawn_rng_deterministic_per_tag(self):
        seed_everything(5)
        a = spawn_rng("alpha").random(4)
        seed_everything(5)
        b = spawn_rng("alpha").random(4)
        assert np.allclose(a, b)

    def test_spawn_rng_independent_of_global_stream(self):
        seed_everything(5)
        get_rng().random(100)  # consume the global stream
        a = spawn_rng("alpha").random(4)
        seed_everything(5)
        b = spawn_rng("alpha").random(4)
        assert np.allclose(a, b)


class TestProgressLogger:
    def test_log_respects_enabled(self, capsys):
        ProgressLogger("tag", enabled=False).log("hidden")
        assert capsys.readouterr().err == ""
        ProgressLogger("tag", enabled=True).log("shown")
        assert "shown" in capsys.readouterr().err

    def test_prefix_included(self, capsys):
        ProgressLogger("prefix").log("msg")
        assert "[prefix]" in capsys.readouterr().err

    def test_periodic_rate_limited(self, capsys):
        logger = ProgressLogger("p", min_interval=3600.0)
        logger.periodic("first")
        logger.periodic("second")
        err = capsys.readouterr().err
        assert "first" in err and "second" not in err
