"""Fault-tolerant training runtime: checkpoints, guards, retry, recovery.

Covers the acceptance criteria of the runtime layer: atomic checksummed
checkpoints with rotation and corruption fallback, NaN skip-step and
rollback recovery, retry/backoff with graceful degradation, and the
bit-exact kill/resume equivalence of the supervised YOLLO trainer.
"""

import math
import os

import numpy as np
import pytest

from repro.core import YolloConfig, YolloModel, YolloTrainer
from repro.data import REFCOCO, build_dataset
from repro.nn import Parameter
from repro.optim import SGD, Adam, clip_grad_norm
from repro.runtime import (
    AnomalyGuard,
    CallbackTask,
    CheckpointCorruptError,
    CheckpointManager,
    FaultPlan,
    FingerprintMismatchError,
    GuardAction,
    RetryExhaustedError,
    SimulatedCrash,
    TrainingAborted,
    TrainingSupervisor,
    config_fingerprint,
    corrupt_file,
    graceful,
    retry_call,
)
from repro.utils import seed_everything


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def payload(value: float) -> dict:
    return {"weights": np.full(8, value), "note": "payload"}


def make_toy_task(total: int = 20, lr: float = 0.1):
    """Gradient descent on ||p||^2 via the CallbackTask adapter."""
    param = Parameter(np.array([2.0, -3.0]))
    optimizer = SGD([param], lr=lr)
    losses = []

    def forward_backward(step: int) -> float:
        param.grad = 2.0 * param.data
        return float((param.data ** 2).sum())

    def apply_update(step: int, loss: float) -> None:
        optimizer.step()
        losses.append(loss)

    task = CallbackTask(
        total_iterations=total,
        forward_backward=forward_backward,
        apply_update=apply_update,
        optimizer=optimizer,
        rng=np.random.default_rng(0),
        fingerprint_data={"task": "toy", "lr": lr},
        extra_state=lambda: {"losses": list(losses)},
        load_extra_state=lambda s: losses.__setitem__(slice(None), s["losses"]),
        result=lambda: losses,
    )
    return task, param, losses


def make_yollo_trainer(seed: int = 7, backbone: str = "tiny", scheduler=None):
    """A tiny but real YOLLO trainer (used for the kill/resume tests)."""
    seed_everything(seed)
    dataset = build_dataset(REFCOCO.scaled(0.03))
    cfg = YolloConfig(
        backbone=backbone, d_model=16, d_rel=24, ffn_hidden=24, head_hidden=24,
        num_rel2att=2, batch_size=4,
        max_query_length=max(6, dataset.max_query_length),
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    return YolloTrainer(model, dataset, cfg, scheduler=scheduler)


# ----------------------------------------------------------------------
# CheckpointManager
# ----------------------------------------------------------------------
class TestCheckpointManager:
    def test_save_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), fingerprint="abc")
        path = manager.save(payload(3.0), iteration=5)
        loaded = manager.load(path)
        assert loaded.iteration == 5
        assert loaded.fingerprint == "abc"
        assert np.allclose(loaded.payload["weights"], 3.0)
        assert not os.path.exists(path + ".tmp")  # atomic rename cleaned up

    def test_rotation_keeps_last_k(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep=2)
        for iteration in (1, 2, 3, 4):
            manager.save(payload(iteration), iteration)
        names = [os.path.basename(p) for p in manager.paths()]
        assert names == ["ckpt-00000003.ckpt", "ckpt-00000004.ckpt"]

    @pytest.mark.parametrize("mode", ["truncate", "flip", "zero"])
    def test_checksum_detects_corruption(self, tmp_path, mode):
        manager = CheckpointManager(str(tmp_path))
        path = manager.save(payload(1.0), iteration=1)
        corrupt_file(path, mode=mode)
        with pytest.raises(CheckpointCorruptError):
            manager.load(path)

    def test_load_latest_falls_back_over_corrupt_rotation(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep=3)
        for iteration in (1, 2, 3):
            manager.save(payload(iteration), iteration)
        corrupt_file(manager.path_for(3), mode="flip")
        latest = manager.load_latest()
        assert latest is not None and latest.iteration == 2

    def test_load_latest_none_when_all_corrupt(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(payload(1.0), iteration=1)
        corrupt_file(manager.path_for(1), mode="truncate")
        assert manager.load_latest() is None

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        CheckpointManager(str(tmp_path), fingerprint="aaa").save(payload(1.0), 1)
        reader = CheckpointManager(str(tmp_path), fingerprint="bbb")
        with pytest.raises(FingerprintMismatchError):
            reader.load_latest()

    def test_config_fingerprint_stable_and_sensitive(self):
        a = config_fingerprint({"lr": 0.1, "bs": 4})
        b = config_fingerprint({"bs": 4, "lr": 0.1})  # key order irrelevant
        c = config_fingerprint({"lr": 0.2, "bs": 4})
        assert a == b and a != c


# ----------------------------------------------------------------------
# AnomalyGuard
# ----------------------------------------------------------------------
class TestAnomalyGuard:
    def test_finite_loss_proceeds(self):
        guard = AnomalyGuard()
        assert guard.assess(1.0).action is GuardAction.PROCEED

    def test_nan_loss_skips_then_rolls_back(self):
        guard = AnomalyGuard(max_consecutive=3)
        assert guard.assess(float("nan")).action is GuardAction.SKIP
        assert guard.assess(float("inf")).action is GuardAction.SKIP
        assert guard.assess(float("nan")).action is GuardAction.ROLLBACK

    def test_nonfinite_gradient_detected(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([0.0, np.nan, 0.0])
        verdict = AnomalyGuard().assess(1.0, [param])
        assert verdict.action is GuardAction.SKIP
        assert "gradient" in verdict.reason

    def test_healthy_step_resets_streak(self):
        guard = AnomalyGuard(max_consecutive=2)
        guard.assess(float("nan"))
        guard.assess(1.0)
        assert guard.assess(float("nan")).action is GuardAction.SKIP

    def test_loss_spike_detected_once_window_full(self):
        guard = AnomalyGuard(spike_factor=10.0, spike_window=5)
        for _ in range(4):
            assert guard.assess(1.0).action is GuardAction.PROCEED
        # Window not yet full: a huge loss is still tolerated.
        assert guard.assess(1000.0).action is GuardAction.PROCEED
        guard.reset()
        for _ in range(5):
            guard.assess(1.0)
        assert guard.assess(1000.0).action is GuardAction.SKIP


# ----------------------------------------------------------------------
# Retry / graceful degradation
# ----------------------------------------------------------------------
class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        result = retry_call(flaky, attempts=4, sleep=sleeps.append,
                            rng=np.random.default_rng(0))
        assert result == "ok" and calls["n"] == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0] * 1.0  # backoff grows (modulo jitter cap)

    def test_exhaustion_raises_with_cause(self):
        def always_fails():
            raise OSError("disk on fire")

        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(always_fails, attempts=2, sleep=lambda _: None)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_non_retryable_exception_propagates(self):
        def bad():
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(bad, attempts=3, retry_on=(OSError,), sleep=lambda _: None)

    def test_graceful_swallows_and_reports(self):
        ok, value = graceful(lambda: 1 / 0, default=-1)
        assert not ok and value == -1
        ok, value = graceful(lambda: 42)
        assert ok and value == 42


class TestBackoffDelay:
    """Edge cases of the shared jittered-exponential-backoff schedule."""

    def test_jitter_stays_within_documented_bounds(self):
        from repro.runtime import backoff_delay

        rng = np.random.default_rng(7)
        for attempt in range(1, 8):
            deterministic = min(2.0, 0.05 * 2.0 ** (attempt - 1))
            for _ in range(50):
                delay = backoff_delay(attempt, base_delay=0.05,
                                      max_delay=2.0, jitter=0.5, rng=rng)
                assert deterministic <= delay <= deterministic * 1.5

    def test_zero_jitter_is_exactly_exponential(self):
        from repro.runtime import backoff_delay

        rng = np.random.default_rng(0)
        delays = [backoff_delay(k, base_delay=0.1, max_delay=100.0,
                                jitter=0.0, rng=rng)
                  for k in range(1, 5)]
        assert delays == [pytest.approx(0.1 * 2.0 ** k) for k in range(4)]

    def test_max_delay_clamps_the_exponential(self):
        from repro.runtime import backoff_delay

        rng = np.random.default_rng(3)
        # attempt 40 would be base * 2**39 without the cap
        delay = backoff_delay(40, base_delay=0.05, max_delay=1.0,
                              jitter=0.5, rng=rng)
        assert 1.0 <= delay <= 1.5

    def test_attempt_is_one_based(self):
        from repro.runtime import backoff_delay

        with pytest.raises(ValueError):
            backoff_delay(0)
        with pytest.raises(ValueError):
            backoff_delay(-1)

    def test_retry_call_sleeps_follow_backoff_schedule(self):
        from repro.runtime import backoff_delay

        sleeps = []

        def always_fails():
            raise OSError("transient")

        with pytest.raises(RetryExhaustedError):
            retry_call(always_fails, attempts=4, base_delay=0.05,
                       max_delay=0.12, jitter=0.5, sleep=sleeps.append,
                       rng=np.random.default_rng(11))
        replay_rng = np.random.default_rng(11)
        expected = [backoff_delay(k, base_delay=0.05, max_delay=0.12,
                                  jitter=0.5, rng=replay_rng)
                    for k in range(1, 4)]
        assert sleeps == [pytest.approx(e) for e in expected]
        # the clamp bit: attempts 2 and 3 both cap at max_delay pre-jitter
        assert all(0.12 <= s <= 0.18 for s in sleeps[1:])

    def test_non_retryable_exception_does_not_sleep(self):
        sleeps = []

        def bad():
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(bad, attempts=5, retry_on=(OSError,),
                       sleep=sleeps.append, rng=np.random.default_rng(2))
        assert sleeps == []


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_nan_grad_fires_once(self):
        plan = FaultPlan(nan_grad_at={3})
        param = Parameter(np.zeros(2))
        param.grad = np.zeros(2)
        plan.mutate_gradients(3, [param])
        assert np.isnan(param.grad[0])
        param.grad = np.zeros(2)
        plan.mutate_gradients(3, [param])  # spent: fires only once
        assert np.isfinite(param.grad).all()

    def test_persistent_fault_with_fire_once_off(self):
        plan = FaultPlan(nonfinite_loss_at={1}, fire_once=False)
        assert math.isnan(plan.mutate_loss(1, 0.5))
        assert math.isnan(plan.mutate_loss(1, 0.5))

    def test_crash_raises_simulated_crash(self):
        plan = FaultPlan(crash_at_iteration=2)
        plan.before_step(1)
        with pytest.raises(SimulatedCrash):
            plan.before_step(2)


# ----------------------------------------------------------------------
# Supervisor recovery paths (toy task)
# ----------------------------------------------------------------------
class TestSupervisorRecovery:
    def test_plain_run_matches_unsupervised_descent(self, tmp_path):
        task, param, losses = make_toy_task(total=10)
        report = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=4).run()
        assert report.iterations == 10 and len(losses) == 10
        assert losses[-1] < losses[0]
        assert report.checkpoint_writes >= 3  # 4, 8 and the final one

    def test_nan_gradient_is_skipped_not_fatal(self, tmp_path):
        task, param, losses = make_toy_task(total=10)
        plan = FaultPlan(nan_grad_at={4})
        report = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=3, fault_plan=plan).run()
        assert report.iterations == 10
        assert report.skipped_steps == 1
        assert len(losses) == 9  # the poisoned step was discarded
        assert np.isfinite(param.data).all()

    def test_rollback_after_repeated_anomalies(self, tmp_path):
        task, param, losses = make_toy_task(total=12)
        plan = FaultPlan(nan_grad_at={5, 6})  # two consecutive transients
        guard = AnomalyGuard(max_consecutive=2)
        report = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=2, guard=guard,
                                    fault_plan=plan).run()
        assert report.rollbacks == 1
        assert report.skipped_steps == 1  # first anomaly skipped, second rolled back
        assert report.iterations == 12
        assert np.isfinite(param.data).all()

    def test_rollback_budget_exhaustion_aborts(self, tmp_path):
        task, _, _ = make_toy_task(total=6)
        # Persistent NaN at every iteration: rollback cannot help.
        plan = FaultPlan(nan_grad_at=set(range(1, 100)), fire_once=False)
        guard = AnomalyGuard(max_consecutive=1)
        supervisor = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                        checkpoint_every=2, guard=guard,
                                        fault_plan=plan, max_rollbacks=3)
        with pytest.raises(TrainingAborted):
            supervisor.run()

    def test_rollback_without_any_checkpoint_uses_start_snapshot(self):
        task, param, _ = make_toy_task(total=8)
        plan = FaultPlan(nan_grad_at={2, 3})
        guard = AnomalyGuard(max_consecutive=2)
        report = TrainingSupervisor(task, guard=guard, fault_plan=plan).run()
        assert report.rollbacks == 1
        assert report.iterations == 8
        assert np.isfinite(param.data).all()

    def test_checkpoint_io_error_is_retried(self, tmp_path):
        task, _, _ = make_toy_task(total=8)
        plan = FaultPlan(checkpoint_io_error_on={0})  # first write attempt fails
        report = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=4, fault_plan=plan,
                                    retry_sleep=lambda _: None).run()
        assert report.iterations == 8
        assert report.checkpoint_failures == 0  # retry recovered
        assert report.checkpoint_writes >= 2

    def test_persistent_checkpoint_failure_degrades_gracefully(self, tmp_path):
        task, _, losses = make_toy_task(total=6)
        # Every write attempt of the first logical save fails.
        plan = FaultPlan(checkpoint_io_error_on=set(range(100)), fire_once=False)
        report = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=2, fault_plan=plan,
                                    io_retry_attempts=2,
                                    retry_sleep=lambda _: None).run()
        assert report.iterations == 6  # the run still completed
        assert report.checkpoint_failures >= 1
        assert len(losses) == 6

    def test_resume_continues_toy_run(self, tmp_path):
        task, param, losses = make_toy_task(total=10)
        plan = FaultPlan(crash_at_iteration=7)
        supervisor = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                        checkpoint_every=3, fault_plan=plan)
        with pytest.raises(SimulatedCrash):
            supervisor.run()

        fresh_task, fresh_param, fresh_losses = make_toy_task(total=10)
        report = TrainingSupervisor(fresh_task, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=3, resume=True).run()
        assert report.resumed_from == 6
        assert report.iterations == 10
        assert len(fresh_losses) == 10


# ----------------------------------------------------------------------
# Bit-exact kill/resume on the real YOLLO trainer
# ----------------------------------------------------------------------
class TestKillResumeEquivalence:
    TOTAL = 8
    KILL_AT = 5  # crash before iteration 5; checkpoint_every=2 => resume from 4

    def test_resumed_run_is_bit_exact(self, tmp_path):
        # Reference: 2N iterations straight through, no supervisor involved.
        straight = make_yollo_trainer(seed=7)
        straight.begin_run(iterations=self.TOTAL)
        while straight.iteration < straight.total_iterations:
            straight.apply_step(straight.forward_backward())

        # Killed run: identical fresh setup, crash mid-flight.
        killed = make_yollo_trainer(seed=7)
        killed.begin_run(iterations=self.TOTAL)
        supervisor = TrainingSupervisor(
            killed, checkpoint_dir=str(tmp_path), checkpoint_every=2,
            fault_plan=FaultPlan(crash_at_iteration=self.KILL_AT),
        )
        with pytest.raises(SimulatedCrash):
            supervisor.run()
        assert killed.iteration == self.KILL_AT - 1

        # Resume in a "new process": rebuild everything from scratch,
        # then restore from the newest checkpoint and finish the run.
        resumed = make_yollo_trainer(seed=7)
        resumed.begin_run(iterations=self.TOTAL)
        report = TrainingSupervisor(resumed, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=2, resume=True).run()
        assert report.resumed_from == 4
        assert report.iterations == self.TOTAL

        # Loss history and final parameters must be IDENTICAL, bit for bit.
        assert resumed.history.losses == straight.history.losses
        for (name_a, param_a), (name_b, param_b) in zip(
            straight.model.named_parameters(), resumed.model.named_parameters()
        ):
            assert name_a == name_b
            assert np.array_equal(param_a.data, param_b.data), name_a

    def test_supervised_yollo_run_survives_nan_and_io_faults(self, tmp_path):
        trainer = make_yollo_trainer(seed=13)
        trainer.begin_run(iterations=6)
        plan = FaultPlan(nan_grad_at={2}, checkpoint_io_error_on={0})
        report = TrainingSupervisor(
            trainer, checkpoint_dir=str(tmp_path), checkpoint_every=2,
            fault_plan=plan, retry_sleep=lambda _: None,
        ).run()
        assert report.iterations == 6
        assert report.skipped_steps == 1
        assert report.checkpoint_failures == 0
        assert all(np.isfinite(p.data).all() for p in trainer.model.parameters())

    def test_bn_backbone_resume_reproduces_eval_predictions(self, tmp_path):
        """Kill/resume with BatchNorm running statistics is bit-exact.

        Regression: ``running_mean``/``running_var`` used to be plain
        attributes outside ``state_dict``, so the resumed model carried
        fresh statistics and its eval-mode predictions silently diverged
        from the uninterrupted run.
        """
        straight = make_yollo_trainer(seed=7, backbone="tiny-bn")
        straight.begin_run(iterations=self.TOTAL)
        while straight.iteration < straight.total_iterations:
            straight.apply_step(straight.forward_backward())

        killed = make_yollo_trainer(seed=7, backbone="tiny-bn")
        killed.begin_run(iterations=self.TOTAL)
        supervisor = TrainingSupervisor(
            killed, checkpoint_dir=str(tmp_path), checkpoint_every=2,
            fault_plan=FaultPlan(crash_at_iteration=self.KILL_AT),
        )
        with pytest.raises(SimulatedCrash):
            supervisor.run()

        resumed = make_yollo_trainer(seed=7, backbone="tiny-bn")
        resumed.begin_run(iterations=self.TOTAL)
        TrainingSupervisor(resumed, checkpoint_dir=str(tmp_path),
                           checkpoint_every=2, resume=True).run()

        # The running statistics themselves must round-trip ...
        straight_buffers = dict(straight.model.named_buffers())
        resumed_buffers = dict(resumed.model.named_buffers())
        assert straight_buffers  # the BN backbone actually has buffers
        for name, buffer in straight_buffers.items():
            assert np.array_equal(buffer, resumed_buffers[name]), name

        # ... and eval-mode predictions must be IDENTICAL, bit for bit.
        subset = list(straight.dataset["val"][:8])
        straight.model.eval()
        resumed.model.eval()
        assert np.array_equal(
            straight.grounder.ground_batch(subset),
            resumed.grounder.ground_batch(subset),
        )

    def test_scheduler_resume_continues_decay(self, tmp_path):
        """Resume restores the LR-schedule position, not step 0.

        Regression: ``_Scheduler`` had no ``state_dict``, so a resumed
        ``StepLR`` replayed its decay from scratch and the post-resume
        trajectory diverged from the uninterrupted run.
        """
        from repro.optim import StepLR

        factory = lambda opt: StepLR(opt, step_size=3, gamma=0.5)

        straight = make_yollo_trainer(seed=7, scheduler=factory)
        straight.begin_run(iterations=self.TOTAL)
        while straight.iteration < straight.total_iterations:
            straight.apply_step(straight.forward_backward())

        killed = make_yollo_trainer(seed=7, scheduler=factory)
        killed.begin_run(iterations=self.TOTAL)
        supervisor = TrainingSupervisor(
            killed, checkpoint_dir=str(tmp_path), checkpoint_every=2,
            fault_plan=FaultPlan(crash_at_iteration=self.KILL_AT),
        )
        with pytest.raises(SimulatedCrash):
            supervisor.run()

        resumed = make_yollo_trainer(seed=7, scheduler=factory)
        resumed.begin_run(iterations=self.TOTAL)
        TrainingSupervisor(resumed, checkpoint_dir=str(tmp_path),
                           checkpoint_every=2, resume=True).run()

        assert resumed.scheduler.step_count == straight.scheduler.step_count
        assert resumed.optimizer.lr == straight.optimizer.lr
        assert resumed.history.losses == straight.history.losses

    def test_scheduler_mismatch_refuses_load(self):
        from repro.optim import StepLR

        with_sched = make_yollo_trainer(
            seed=7, scheduler=lambda opt: StepLR(opt, step_size=3)
        )
        without = make_yollo_trainer(seed=7)
        with pytest.raises(ValueError, match="scheduler"):
            without.load_state_dict(with_sched.state_dict())
        with pytest.raises(ValueError, match="scheduler"):
            with_sched.load_state_dict(without.state_dict())

    def test_fingerprint_mismatch_refuses_cross_config_resume(self, tmp_path):
        trainer = make_yollo_trainer(seed=7)
        trainer.begin_run(iterations=2)
        TrainingSupervisor(trainer, checkpoint_dir=str(tmp_path),
                           checkpoint_every=1).run()

        other = make_yollo_trainer(seed=7)
        other.config = other.config.with_overrides(learning_rate=9e-9)
        other.begin_run(iterations=2)
        with pytest.raises(FingerprintMismatchError):
            TrainingSupervisor(other, checkpoint_dir=str(tmp_path),
                               checkpoint_every=1, resume=True).run()


# ----------------------------------------------------------------------
# Optimizer state round-trips
# ----------------------------------------------------------------------
class TestOptimizerState:
    def _trajectory(self, optimizer_cls, **kwargs):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = optimizer_cls([param], **kwargs)
        return param, optimizer

    @pytest.mark.parametrize("cls,kwargs", [
        (SGD, {"lr": 0.1, "momentum": 0.9}),
        (Adam, {"lr": 0.05}),
    ])
    def test_snapshot_restores_exact_trajectory(self, cls, kwargs):
        param, optimizer = self._trajectory(cls, **kwargs)
        for _ in range(3):
            param.grad = 2.0 * param.data
            optimizer.step()
        snapshot_param = param.data.copy()
        snapshot_state = optimizer.state_dict()

        # Continue 2 more steps, then rewind and replay.
        for _ in range(2):
            param.grad = 2.0 * param.data
            optimizer.step()
        after_straight = param.data.copy()

        param.data[...] = snapshot_param
        optimizer.load_state_dict(snapshot_state)
        for _ in range(2):
            param.grad = 2.0 * param.data
            optimizer.step()
        assert np.array_equal(param.data, after_straight)

    def test_cross_type_load_rejected(self):
        param, sgd = self._trajectory(SGD, lr=0.1)
        _, adam = self._trajectory(Adam, lr=0.1)
        with pytest.raises(ValueError):
            adam.load_state_dict(sgd.state_dict())

    def test_wrong_shape_rejected(self):
        _, adam = self._trajectory(Adam, lr=0.1)
        state = adam.state_dict()
        state["m"] = [np.zeros(7)]
        with pytest.raises(ValueError):
            adam.load_state_dict(state)


# ----------------------------------------------------------------------
# clip_grad_norm hardening
# ----------------------------------------------------------------------
class TestClipGradNormGuards:
    def test_nan_norm_leaves_gradients_untouched(self):
        healthy = Parameter(np.ones(2))
        healthy.grad = np.array([3.0, 4.0])
        poisoned = Parameter(np.ones(2))
        poisoned.grad = np.array([np.nan, 1.0])
        norm = clip_grad_norm([healthy, poisoned], max_norm=1.0)
        assert math.isnan(norm)
        # The healthy gradient was NOT multiplied by nan-scale.
        assert np.allclose(healthy.grad, [3.0, 4.0])

    def test_zero_norm_is_safe(self):
        param = Parameter(np.ones(2))
        param.grad = np.zeros(2)
        assert clip_grad_norm([param], max_norm=0.0) == 0.0
        assert np.allclose(param.grad, 0.0)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliCheckpointing:
    def test_train_with_checkpoints_then_resume(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        checkpoint_dir = str(tmp_path / "ckpts")
        common = ["train", "--scale", "0.03", "--backbone", "tiny",
                  "--pretrain-steps", "1", "--epochs", "1", "--quiet",
                  "--eval-every", "0", "--out", str(tmp_path / "model.npz"),
                  "--checkpoint-dir", checkpoint_dir, "--checkpoint-every", "2"]

        assert main(common) == 0
        capsys.readouterr()
        assert any(name.endswith(".ckpt") for name in os.listdir(checkpoint_dir))

        # Resuming a finished run is a no-op that still exits cleanly.
        assert main(common + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from iteration" in out

    def test_resume_without_dir_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["train", "--resume", "--quiet", "--scale", "0.03",
                  "--backbone", "tiny", "--pretrain-steps", "1",
                  "--epochs", "1"])


class TestSupervisorMetrics:
    def test_counters_published_to_injected_registry(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        task, _, _ = make_toy_task(total=10)
        plan = FaultPlan(nan_grad_at={4})
        report = TrainingSupervisor(task, checkpoint_dir=str(tmp_path),
                                    checkpoint_every=3, fault_plan=plan,
                                    metrics=registry).run()
        assert registry.counter("runtime.skipped_steps").value == report.skipped_steps == 1
        assert registry.counter("runtime.checkpoint_writes").value == report.checkpoint_writes
        assert registry.histogram("runtime.checkpoint_seconds").count == report.checkpoint_writes
        assert registry.counter("runtime.rollbacks").value == 0
