"""Observability subsystem: metrics registry, op profiler, trace export."""

import json
import sys
import threading

import numpy as np
import pytest

from repro.autograd import tensor
from repro.autograd.tensor import Tensor
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
    SpanTotals,
    collect_spans,
    get_registry,
    percentiles,
    profile,
    render_hot_ops,
    render_profile,
    trace_span,
)
from repro.obs.profiler import _FUNCTION_OPS, _TENSOR_METHODS
from repro.viz import ascii_bar, render_bars_ascii


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_increments_and_resets(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_percentiles_match_numpy_exactly(self, rng):
        values = rng.random(101).tolist()
        histogram = Histogram("h")
        histogram.observe_many(values)
        for q in (50.0, 95.0, 99.0, 12.5):
            assert histogram.percentile(q) == float(np.percentile(values, q))

    def test_summary_fields(self):
        histogram = Histogram("h")
        histogram.observe_many([1.0, 2.0, 3.0, 4.0])
        summary = histogram.summary()
        assert summary.count == 4
        assert summary.total == 10.0
        assert summary.mean == 2.5
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.p50 == 2.5
        assert summary.as_dict()["p95"] == summary.p95

    def test_empty_summary_is_zeros(self):
        summary = Histogram("h").summary()
        assert summary.count == 0
        assert summary.mean == 0.0 and summary.p99 == 0.0

    def test_reset_clears_samples(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.count == 0

    def test_percentiles_helper_empty_gives_zeros(self):
        assert percentiles([], (50.0, 95.0)) == (0.0, 0.0)

    def test_merge_is_associative(self, rng):
        # Property check over random shard decompositions: merging
        # per-rank histograms in any grouping/order gives the exact
        # quantiles of the pooled samples, and total/mean/std within
        # the documented ~1e-12 relative tolerance.
        for trial in range(20):
            shards = [
                rng.normal(size=rng.integers(1, 40)).tolist()
                for _ in range(rng.integers(2, 5))
            ]
            pooled = [v for shard in shards for v in shard]

            left = Histogram("left")  # ((a + b) + c) ...
            for shard in shards:
                left.merge(shard)
            right = Histogram("right")  # ... vs (c + (b + a))
            for shard in reversed(shards):
                right.merge(shard)
            nested = Histogram("nested")  # pre-merged pairs
            half = Histogram("half")
            for shard in shards[: len(shards) // 2]:
                half.merge(shard)
            nested.merge(half)
            nested.merge([v for s in shards[len(shards) // 2:] for v in s])

            for histogram in (left, right, nested):
                summary = histogram.summary()
                assert summary.count == len(pooled)
                for q in (50.0, 95.0, 99.0):
                    assert histogram.percentile(q) == float(
                        np.percentile(pooled, q)
                    )
                assert summary.total == pytest.approx(
                    float(np.sum(pooled)), rel=1e-12
                )
                assert summary.mean == pytest.approx(
                    float(np.mean(pooled)), rel=1e-12
                )
                assert summary.std == pytest.approx(
                    float(np.std(pooled)), rel=1e-9, abs=1e-12
                )


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_timer_observes_wall_time(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        summary = registry.histogram("t").summary()
        assert summary.count == 1 and summary.total >= 0.0

    def test_snapshot_plain_containers(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1
        assert json.loads(json.dumps(snap)) == snap

    def test_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.counter("c").value == 1

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.histogram("lat").observe(0.5)
        text = registry.render()
        assert "hits" in text and "lat" in text and "p95" in text

    def test_global_registry_is_singleton(self):
        assert get_registry() is get_registry()

    def test_dump_merge_round_trip(self):
        # dump() → merge() is the transport for per-rank worker metrics:
        # counters add, gauges last-write-wins, histogram summaries of
        # the merged registry match pooling the raw samples.
        ranks = []
        for rank in range(3):
            registry = MetricsRegistry()
            registry.counter("steps").inc(4)
            registry.gauge("rank").set(rank)
            registry.histogram("lat").observe_many(
                [0.1 * rank + 0.01 * i for i in range(5)]
            )
            ranks.append(registry.dump())
        assert json.loads(json.dumps(ranks[0])) == ranks[0]

        merged = MetricsRegistry()
        for dump in ranks:
            merged.merge(dump)
        assert merged.counter("steps").value == 12
        assert merged.gauge("rank").value == 2.0
        pooled = [v for d in ranks for v in d["histograms"]["lat"]]
        assert merged.histogram("lat").count == 15
        assert merged.histogram("lat").percentile(95.0) == float(
            np.percentile(pooled, 95.0)
        )


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_inactive_span_records_nothing(self):
        collector = SpanTotals()
        with trace_span("ghost"):
            pass
        assert collector.totals == {}

    def test_collect_spans_gathers_totals_and_calls(self):
        with collect_spans() as collector:
            for _ in range(3):
                with trace_span("step"):
                    pass
        assert collector.calls["step"] == 3
        assert collector.totals["step"] >= 0.0
        assert collector.total(("step", "missing")) == collector.totals["step"]

    def test_broadcast_to_multiple_collectors(self):
        with collect_spans() as outer:
            with collect_spans() as inner:
                with trace_span("shared"):
                    pass
        assert outer.calls["shared"] == 1
        assert inner.calls["shared"] == 1

    def test_nested_spans_all_recorded(self):
        with collect_spans() as collector:
            with trace_span("outer"):
                with trace_span("inner"):
                    pass
        assert set(collector.calls) == {"outer", "inner"}


# ----------------------------------------------------------------------
# Op-level profiler
# ----------------------------------------------------------------------
def _tiny_graph():
    a = tensor(np.random.default_rng(0).random((4, 8)), requires_grad=True)
    b = tensor(np.random.default_rng(1).random((8, 4)), requires_grad=True)
    loss = a.matmul(b).relu().mean()
    loss.backward()


class TestProfilerOps:
    def test_records_forward_and_backward(self):
        with profile() as prof:
            _tiny_graph()
        stats = {s.name: s for s in prof.op_stats()}
        assert stats["matmul"].calls == 1
        assert stats["matmul"].backward_calls == 1
        assert stats["matmul"].forward_seconds > 0.0
        assert stats["matmul"].backward_seconds > 0.0

    def test_records_output_shape_and_bytes(self):
        with profile() as prof:
            _tiny_graph()
        matmul = [e for e in prof.events
                  if e.name == "matmul" and e.phase == "forward"]
        assert matmul[0].shape == (4, 4)
        assert matmul[0].nbytes == 4 * 4 * 8

    def test_composite_ops_record_once(self):
        # mean lowers to sum+div and sub to add+neg; only the top-level
        # call may appear, so per-op totals attribute each FLOP once.
        with profile() as prof:
            x = tensor(np.ones(5), requires_grad=True)
            (x - tensor(np.ones(5))).mean().backward()
        names = [s.name for s in prof.op_stats()]
        assert "sub" in names and "mean" in names
        assert "neg" not in names and "div" not in names

    def test_patches_restored_on_exit(self):
        originals = {attr: getattr(Tensor, attr) for attr in _TENSOR_METHODS}
        with profile():
            assert getattr(Tensor, "matmul") is not originals["matmul"]
        for attr, fn in originals.items():
            assert getattr(Tensor, attr) is fn
        for label in _FUNCTION_OPS:
            for module in list(sys.modules.values()):
                name = getattr(module, "__name__", "")
                if module is None or not name.startswith("repro"):
                    continue
                assert not hasattr(getattr(module, label, None), "_obs_original")

    def test_patched_function_bindings_record(self):
        # Call through the package attribute — the enable-time scan
        # patches every repro module that re-binds a functional op.
        import repro.autograd as autograd

        with profile() as prof:
            autograd.softmax(
                tensor(np.random.default_rng(2).random((2, 5))), axis=-1
            )
        assert "softmax" in {s.name for s in prof.op_stats()}

    def test_two_ops_profilers_conflict(self):
        with profile():
            with pytest.raises(RuntimeError):
                Profiler(ops=True).__enter__()

    def test_profiler_single_use(self):
        prof = Profiler(ops=False)
        with prof:
            pass
        with pytest.raises(RuntimeError):
            prof.__enter__()

    def test_spans_only_mode_skips_ops(self):
        with profile(ops=False) as prof:
            with trace_span("only.span"):
                _tiny_graph()
        assert prof.op_stats() == []
        assert prof.span_totals()["only.span"] > 0.0

    def test_span_stats_sorted_by_total(self):
        with profile(ops=False) as prof:
            with trace_span("a"):
                with trace_span("b"):
                    np.dot(np.ones((64, 64)), np.ones((64, 64)))
        stats = prof.span_stats()
        totals = [total for _, _, total in stats]
        assert totals == sorted(totals, reverse=True)

    def test_wall_seconds_positive(self):
        with profile(ops=False) as prof:
            pass
        assert prof.wall_seconds >= 0.0


# ----------------------------------------------------------------------
# Chrome trace export + viz interplay
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_round_trips_json_with_monotonic_ts(self, tmp_path):
        with profile() as prof:
            with trace_span("block"):
                _tiny_graph()
        path = str(tmp_path / "trace.json")
        prof.export_chrome_trace(path)
        with open(path) as handle:
            payload = json.loads(handle.read())
        events = payload["traceEvents"]
        assert events, "trace exported no events"
        ts = [event["ts"] for event in events]
        assert ts == sorted(ts)
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 0
            assert event["dur"] >= 0.0
            assert event["ts"] >= 0.0

    def test_op_events_carry_shape_args(self):
        with profile() as prof:
            _tiny_graph()
        trace = prof.chrome_trace()
        op_events = [e for e in trace
                     if e["cat"] == "op" and e["args"].get("phase") == "forward"]
        assert all("shape" in e["args"] and "bytes" in e["args"]
                   for e in op_events)

    def test_thread_ids_recorded(self):
        with profile(ops=False) as prof:
            def work():
                with trace_span("thread.span"):
                    pass
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
            with trace_span("main.span"):
                pass
        tids = {e["tid"] for e in prof.chrome_trace()}
        assert len(tids) == 2


class TestHotOpReport:
    def test_table_lists_ops_with_bars(self):
        with profile() as prof:
            _tiny_graph()
        table = render_hot_ops(prof, top=5)
        assert "matmul" in table and "relu" in table
        assert "#" in table  # proportional ascii bar
        assert "Total ms" in table

    def test_top_limits_rows(self):
        with profile() as prof:
            _tiny_graph()
        lines = render_hot_ops(prof, top=1).splitlines()
        # title + header + separator + exactly one data row
        data_rows = [l for l in lines if l.startswith(("matmul", "relu", "mean"))]
        assert len(data_rows) == 1

    def test_full_render_has_header_and_spans(self):
        with profile() as prof:
            with trace_span("unit"):
                _tiny_graph()
        report = render_profile(prof, top=3)
        assert "op events" in report
        assert "unit" in report

    def test_empty_profiler_renders_gracefully(self):
        with profile(ops=False) as prof:
            pass
        assert "no op events" in render_hot_ops(prof)


class TestAsciiBars:
    def test_bar_width_and_fill(self):
        assert ascii_bar(0.5, width=10) == "#####     "
        assert ascii_bar(0.0, width=4) == "    "
        assert ascii_bar(1.0, width=4) == "####"

    def test_bar_clamps_out_of_range(self):
        assert ascii_bar(2.0, width=4) == "####"
        assert ascii_bar(-1.0, width=4) == "    "

    def test_tiny_fraction_still_visible(self):
        assert ascii_bar(1e-6, width=10).count("#") == 1

    def test_render_bars_scales_to_max(self):
        chart = render_bars_ascii(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value fills the bar
        assert lines[0].count("#") == 5

    def test_render_bars_validates_lengths(self):
        with pytest.raises(ValueError):
            render_bars_ascii(["a"], [1.0, 2.0])

    def test_render_bars_empty(self):
        assert render_bars_ascii([], []) == ""
