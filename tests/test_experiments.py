"""Experiment harness: presets, context caching, utils (smoke scale)."""

import os

import numpy as np
import pytest

from repro.experiments import ExperimentContext, PRESETS, get_preset
from repro.experiments.context import DATASET_NAMES


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"smoke", "bench", "full"}

    def test_get_preset_by_name(self):
        assert get_preset("smoke").name == "smoke"

    def test_get_preset_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRESET", "full")
        assert get_preset().name == "full"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_preset("gigantic")

    def test_budgets_ordered(self):
        assert PRESETS["smoke"].train_scenes < PRESETS["bench"].train_scenes
        assert PRESETS["bench"].train_scenes < PRESETS["full"].train_scenes


@pytest.fixture(scope="module")
def context(tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("exp-cache"))
    return ExperimentContext(preset=get_preset("smoke"), cache_dir=cache, verbose=False)


class TestContext:
    def test_dataset_names(self, context):
        assert set(DATASET_NAMES) == {"RefCOCO", "RefCOCO+", "RefCOCOg"}

    def test_dataset_cached(self, context):
        assert context.dataset("RefCOCO") is context.dataset("RefCOCO")

    def test_shared_vocab_applied_everywhere(self, context):
        vocab = context.shared_vocab()
        for name in DATASET_NAMES:
            assert context.dataset(name).vocab is vocab

    def test_max_query_length_covers_all(self, context):
        max_len = context.max_query_length()
        for name in DATASET_NAMES:
            assert context.dataset(name).max_query_length <= max_len

    def test_word2vec_matrix_cached(self, context):
        a = context.word2vec_matrix()
        b = context.word2vec_matrix()
        assert a is b
        assert a.shape[0] == len(context.shared_vocab())

    def test_eval_splits(self, context):
        assert context.eval_splits("RefCOCO") == ["val", "testA", "testB"]
        assert context.eval_splits("RefCOCOg") == ["val"]

    def test_yollo_trained_once_and_cached(self, context):
        model_a, _, curve = context.yollo("RefCOCO")
        model_b, _, _ = context.yollo("RefCOCO")
        assert model_a is model_b
        assert curve.label == "RefCOCO"
        cached = [f for f in os.listdir(context.cache_dir) if f.startswith("yollo-RefCOCO-main")]
        assert cached

    def test_yollo_reloads_from_disk(self, context):
        model_a, _, _ = context.yollo("RefCOCO")
        context._yollo.clear()
        model_b, _, _ = context.yollo("RefCOCO")
        params_a = dict(model_a.named_parameters())
        params_b = dict(model_b.named_parameters())
        assert all(np.allclose(params_a[k].data, params_b[k].data) for k in params_a)

    def test_evaluate_cached_to_json(self, context):
        _, grounder, _ = context.yollo("RefCOCO")
        first = context.evaluate(grounder, "yollo-RefCOCO", "RefCOCO", "val")
        second = context.evaluate(grounder, "yollo-RefCOCO", "RefCOCO", "val")
        assert first.acc_at_50 == second.acc_at_50
        path = os.path.join(context.cache_dir, "eval-yollo-RefCOCO-RefCOCO-val.json")
        assert os.path.exists(path)

    def test_baseline_builds(self, context):
        grounder = context.baseline("listener", "RefCOCO")
        boxes = grounder(context.dataset("RefCOCO")["val"][:2])
        assert boxes.shape == (2, 4)

    def test_scenario_dataset_cached_and_named(self, context):
        dataset = context.scenario_dataset("crowded")
        assert dataset is context.scenario_dataset("crowded")
        assert dataset.spec.name == "scenario:crowded"
        assert len(dataset["eval"]) > 0

    def test_scenario_dataset_unknown_name(self, context):
        from repro.scenarios import UnknownScenarioError

        with pytest.raises(UnknownScenarioError):
            context.scenario_dataset("nope")


class TestScenarioTables:
    def test_table1b_lists_every_scenario(self, context):
        from repro.experiments import table1
        from repro.scenarios import available_scenarios

        report = table1.run(context)
        assert "Table 1b" in report
        for name in available_scenarios():
            assert name in report

    def test_scenario_matrix_rows(self, context):
        from repro.experiments import scenario_matrix

        rows = scenario_matrix.score_rows(
            context.scenario_dataset("crowded")["eval"])
        oracle = rows["oracle"]
        # The oracle saturates both recall and the no-target decision.
        assert oracle["recall@1"] == pytest.approx(1.0)
        assert oracle["nt_f1"] == pytest.approx(1.0)
        baseline = rows["largest-first"]
        # largest-first never abstains, so no-target recall is zero.
        assert baseline["nt_recall"] == 0.0
        assert baseline["recall@1"] <= oracle["recall@1"]

    def test_scenario_matrix_report_renders(self, context):
        from repro.experiments import scenario_matrix

        report = scenario_matrix.run(context)
        assert "Table 2b" in report
        assert "pointing" in report
        for name in ("driving", "crowded", "weak"):
            assert f"{name}/oracle" in report


class TestModelPresetThreading:
    """The zoo's --model-preset path through the experiment context."""

    def test_preset_lowers_into_yollo_config(self, tmp_path):
        context = ExperimentContext(
            preset=get_preset("smoke"), model_preset="tiny-dilated",
            cache_dir=str(tmp_path), verbose=False)
        config = context.yollo_config()
        assert config.context_encoder == "dilated"
        assert config.backbone == "tiny"
        # dataset-dependent padding still applied on top of the preset
        assert config.max_query_length == context.max_query_length()

    def test_preset_gets_its_own_cache_namespace(self, tmp_path):
        plain = ExperimentContext(preset=get_preset("smoke"),
                                  cache_dir=str(tmp_path), verbose=False)
        zoo = ExperimentContext(preset=get_preset("smoke"),
                                model_preset="tiny-focal",
                                cache_dir=str(tmp_path), verbose=False)
        assert plain.cache_dir != zoo.cache_dir
        assert "tiny-focal" in zoo.cache_dir

    def test_unknown_model_preset_fails_fast(self, tmp_path):
        from repro.zoo import UnknownPresetError

        with pytest.raises(UnknownPresetError):
            ExperimentContext(preset=get_preset("smoke"),
                              model_preset="nope",
                              cache_dir=str(tmp_path), verbose=False)
