"""Anchor matcher, balanced sampler, NMS."""

import numpy as np
import pytest

from repro.detection import AnchorMatcher, BalancedSampler, nms


def anchors_around(target, offsets):
    """Build anchors by shifting a target box by fractions of its width."""
    target = np.asarray(target, dtype=np.float64)
    width = target[2] - target[0]
    return np.stack([target + np.array([o, 0, o, 0]) * width for o in offsets])


class TestAnchorMatcher:
    def test_threshold_labels(self):
        target = np.array([10.0, 10.0, 30.0, 30.0])
        anchors = anchors_around(target, [0.0, 0.4, 2.0])  # IoU 1.0, ~0.43, 0.0
        match = AnchorMatcher(rho_high=0.5, rho_low=0.25).match(anchors, target)
        assert match.labels[0] == 1
        assert match.labels[1] == -1  # ignore band
        assert match.labels[2] == 0

    def test_force_match_when_no_positive(self):
        target = np.array([10.0, 10.0, 30.0, 30.0])
        anchors = anchors_around(target, [0.8, 2.0])
        match = AnchorMatcher().match(anchors, target)
        assert (match.labels == 1).sum() == 1
        assert match.labels[0] == 1  # best IoU anchor forced positive

    def test_force_match_disabled(self):
        target = np.array([10.0, 10.0, 30.0, 30.0])
        anchors = anchors_around(target, [0.8, 2.0])
        match = AnchorMatcher(force_match=False).match(anchors, target)
        assert not (match.labels == 1).any()

    def test_offsets_decode_back_to_target(self):
        from repro.detection import decode_offsets

        target = np.array([10.0, 12.0, 30.0, 28.0])
        anchors = anchors_around(target, [0.1, 0.3])
        match = AnchorMatcher().match(anchors, target)
        decoded = decode_offsets(anchors, match.offsets)
        assert np.allclose(decoded, np.broadcast_to(target, decoded.shape), atol=1e-6)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            AnchorMatcher(rho_high=0.2, rho_low=0.5)

    def test_index_properties(self):
        target = np.array([10.0, 10.0, 30.0, 30.0])
        anchors = anchors_around(target, [0.0, 2.0])
        match = AnchorMatcher().match(anchors, target)
        assert match.positive_indices.tolist() == [0]
        assert match.negative_indices.tolist() == [1]


class TestBalancedSampler:
    def _match(self, positives, negatives):
        from repro.detection import MatchResult

        labels = np.concatenate(
            [np.ones(positives, dtype=np.int64), np.zeros(negatives, dtype=np.int64)]
        )
        total = positives + negatives
        return MatchResult(
            labels=labels, offsets=np.zeros((total, 4)), ious=np.zeros(total)
        )

    def test_caps_positives(self):
        sampler = BalancedSampler(batch_size=8, positive_fraction=0.5)
        indices, labels = sampler.sample(self._match(20, 20), np.random.default_rng(0))
        assert (labels == 1).sum() == 4
        assert len(indices) == 8

    def test_takes_all_when_scarce(self):
        sampler = BalancedSampler(batch_size=16)
        indices, labels = sampler.sample(self._match(2, 3), np.random.default_rng(0))
        assert (labels == 1).sum() == 2
        assert (labels == 0).sum() == 3

    def test_no_duplicate_indices(self):
        sampler = BalancedSampler(batch_size=10)
        indices, _ = sampler.sample(self._match(30, 30), np.random.default_rng(0))
        assert len(np.unique(indices)) == len(indices)

    def test_validation(self):
        with pytest.raises(ValueError):
            BalancedSampler(batch_size=0)
        with pytest.raises(ValueError):
            BalancedSampler(positive_fraction=0.0)


class TestNMS:
    def test_suppresses_overlapping(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [50, 50, 60, 60]], dtype=float)
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms(boxes, scores, iou_threshold=0.5)
        assert keep.tolist() == [0, 2]

    def test_keeps_all_disjoint(self):
        boxes = np.array([[0, 0, 5, 5], [10, 10, 15, 15]], dtype=float)
        keep = nms(boxes, np.array([0.5, 0.9]))
        assert sorted(keep.tolist()) == [0, 1]
        assert keep[0] == 1  # sorted by score

    def test_max_keep(self):
        boxes = np.stack([[i * 20.0, 0.0, i * 20.0 + 10, 10.0] for i in range(5)])
        keep = nms(boxes, np.linspace(1, 0.5, 5), max_keep=2)
        assert len(keep) == 2

    def test_empty_input(self):
        assert len(nms(np.empty((0, 4)), np.empty(0))) == 0


class TestUniformTopKMatcher:
    def _grid_anchors(self, n=6, size=10.0):
        """An n x n grid of size x size anchors tiling [0, n*size]^2."""
        from itertools import product

        return np.array([
            [x * size, y * size, (x + 1) * size, (y + 1) * size]
            for x, y in product(range(n), range(n))
        ])

    def test_exactly_k_positives_regardless_of_scale(self):
        from repro.detection import UniformTopKMatcher

        anchors = self._grid_anchors()
        matcher = UniformTopKMatcher(topk=4, ignore_threshold=0.7)
        for target in (
            np.array([12.0, 12.0, 18.0, 18.0]),    # small object
            np.array([5.0, 5.0, 55.0, 55.0]),      # large object
            np.array([0.0, 0.0, 60.0, 60.0]),      # whole image
        ):
            match = matcher.match(anchors, target)
            assert (match.labels == 1).sum() == 4, (
                f"target {target.tolist()} did not get exactly k positives")

    def test_k_clamped_to_anchor_count(self):
        from repro.detection import UniformTopKMatcher

        anchors = self._grid_anchors(n=1)
        match = UniformTopKMatcher(topk=4).match(
            anchors, np.array([2.0, 2.0, 8.0, 8.0]))
        assert (match.labels == 1).sum() == 1

    def test_positives_are_the_nearest_centers(self):
        from repro.detection import UniformTopKMatcher

        anchors = self._grid_anchors()
        target = np.array([8.0, 8.0, 22.0, 22.0])  # centered at (15, 15)
        match = UniformTopKMatcher(topk=4).match(anchors, target)
        from repro.detection.boxes import boxes_to_cxcywh

        centers = boxes_to_cxcywh(anchors)[:, :2]
        distances = np.abs(centers - np.array([15.0, 15.0])).sum(axis=1)
        chosen = np.flatnonzero(match.labels == 1)
        cutoff = np.sort(distances)[3]
        assert (distances[chosen] <= cutoff).all()

    def test_high_iou_nonselected_anchors_are_ignored(self):
        from repro.detection import UniformTopKMatcher

        target = np.array([10.0, 10.0, 30.0, 30.0])
        # one exact-overlap anchor, one slight shift (IoU ~0.85), one far
        anchors = np.stack([
            target,
            target + np.array([1.0, 0.0, 1.0, 0.0]),
            target + np.array([100.0, 0.0, 100.0, 0.0]),
        ])
        match = UniformTopKMatcher(topk=1, ignore_threshold=0.7).match(
            anchors, target)
        assert match.labels[0] == 1          # nearest center: positive
        assert match.labels[1] == -1, (
            "IoU above ignore_threshold must be ignored, not negative")
        assert match.labels[2] == 0

    def test_ignore_threshold_one_disables_band(self):
        from repro.detection import UniformTopKMatcher

        target = np.array([10.0, 10.0, 30.0, 30.0])
        anchors = np.stack([target,
                            target + np.array([1.0, 0.0, 1.0, 0.0])])
        match = UniformTopKMatcher(topk=1, ignore_threshold=1.0).match(
            anchors, target)
        assert match.labels.tolist() == [1, 0]

    def test_deterministic_tie_break(self):
        from repro.detection import UniformTopKMatcher

        anchors = self._grid_anchors()
        target = np.array([10.0, 10.0, 30.0, 30.0])
        matcher = UniformTopKMatcher(topk=4)
        one = matcher.match(anchors, target).labels
        two = matcher.match(anchors[::1], target).labels
        assert one.tolist() == two.tolist()

    def test_offsets_decode_back_to_target(self):
        from repro.detection import UniformTopKMatcher, decode_offsets

        anchors = self._grid_anchors()
        target = np.array([12.0, 14.0, 31.0, 27.0])
        match = UniformTopKMatcher(topk=4).match(anchors, target)
        positives = match.positive_indices
        decoded = decode_offsets(anchors[positives], match.offsets[positives])
        assert np.allclose(decoded, np.broadcast_to(target, decoded.shape),
                           atol=1e-6)

    def test_rejects_bad_parameters(self):
        from repro.detection import UniformTopKMatcher

        with pytest.raises(ValueError):
            UniformTopKMatcher(topk=0)
        with pytest.raises(ValueError):
            UniformTopKMatcher(ignore_threshold=1.5)
