"""Router-tier shared response cache: epoch invalidation, LRU, safety.

Pure-logic units (no subprocesses) for
:class:`repro.serve.shared_cache.SharedResponseCache` and the hit/miss
accounting that moved into :class:`repro.serve.cache.LRUCache`.  The
fleet-integration side (replica LRU flush on reload, epoch bump after a
roll, hits surviving respawns) lives in ``tests/test_fleet.py``.
"""

import threading

import numpy as np
import pytest

from repro.serve import LRUCache, SharedResponseCache
from repro.serve.shared_cache import SharedCacheStats


def box(*values):
    return np.asarray(values, dtype=np.float64)


class TestSharedCacheBasics:
    def test_roundtrip_and_lru_eviction(self):
        cache = SharedResponseCache(2)
        cache.put("a", box(1, 1, 1, 1))
        cache.put("b", box(2, 2, 2, 2))
        assert cache.get("a")[0] == 1.0  # refreshes recency
        cache.put("c", box(3, 3, 3, 3))  # evicts b (coldest)
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.stats().evictions == 1

    def test_hit_miss_counters(self):
        cache = SharedResponseCache(4)
        assert cache.get("missing") is None
        cache.put("k", box(0, 0, 0, 0))
        assert cache.get("k") is not None
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert isinstance(stats, SharedCacheStats)
        assert stats.as_dict()["hit_rate"] == pytest.approx(0.5)

    def test_capacity_zero_disables(self):
        cache = SharedResponseCache(0)
        assert cache.put("k", box(1, 2, 3, 4)) is False
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0 and len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            SharedResponseCache(-1)


class TestSharedCacheSafety:
    def test_stored_box_is_a_readonly_copy(self):
        cache = SharedResponseCache(4)
        source = box(1, 2, 3, 4)
        cache.put("k", source)
        source[:] = -1.0  # mutating the caller's array after put ...
        stored = cache.get("k")
        assert stored[0] == 1.0  # ... cannot reach the cache
        with pytest.raises(ValueError):
            stored[0] = 99.0  # the stored array itself is immutable

    def test_concurrent_readers_and_writers(self):
        cache = SharedResponseCache(16)
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    cache.put((tag, i % 8), box(i, i, i, i))
                    cache.get((tag, (i + 1) % 8))
                    if i % 50 == 0:
                        cache.bump_epoch()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats.hits + stats.misses == 4 * 200


class TestEpochInvalidation:
    def test_bump_makes_every_entry_unreachable(self):
        cache = SharedResponseCache(8)
        cache.put("k", box(1, 1, 1, 1))
        assert cache.get("k") is not None
        assert cache.bump_epoch() == 1
        assert cache.get("k") is None  # stale: pruned, counted as miss
        stats = cache.stats()
        assert stats.stale_drops == 1
        assert stats.epoch == 1

    def test_old_epoch_put_is_refused(self):
        cache = SharedResponseCache(8)
        epoch_at_dispatch = cache.epoch
        cache.bump_epoch()  # weight roll completes while in flight
        assert cache.put("k", box(9, 9, 9, 9),
                         epoch=epoch_at_dispatch) is False
        assert cache.get("k") is None
        assert cache.stats().stale_puts == 1

    def test_current_epoch_put_lands_after_bump(self):
        cache = SharedResponseCache(8)
        cache.bump_epoch()
        assert cache.put("k", box(5, 5, 5, 5), epoch=cache.epoch) is True
        assert cache.get("k")[0] == 5.0

    def test_clear_keeps_epoch(self):
        cache = SharedResponseCache(8)
        cache.bump_epoch()
        cache.put("k", box(1, 1, 1, 1))
        cache.clear()
        assert len(cache) == 0
        assert cache.epoch == 1


class TestLRUCacheCounting:
    """Hit/miss accounting moved into the LRU itself (engine satellite)."""

    def test_get_counts_hits_and_misses(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_uncounted_probe(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a", count=False) == 1
        assert cache.get("b", count=False) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_external_crediting(self):
        cache = LRUCache(4)
        cache.count_hit()
        cache.count_miss()
        assert cache.hits == 1 and cache.misses == 1

    def test_clear_keeps_tallies_reset_stats_zeroes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        cache.get("b")
        cache.clear()
        assert cache.hits == 1 and cache.evictions == 1
        cache.reset_stats()
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)


class TestModelIdentityKeys:
    """Cache keys carry the model identity (heterogeneous-fleet fix).

    The router keys its shared cache on ``(model_id, image_digest,
    query)`` and the cache itself tags entries with the weights epoch —
    together the effective identity is (preset, weights epoch, image,
    query).  These are the unit-level regressions for the bug where two
    presets sharing one cache could serve each other's boxes.
    """

    def _router_key(self, model, image, query):
        from repro.serve import image_digest

        return (model, image_digest(image), str(query))

    def test_same_content_different_models_are_distinct_entries(self):
        import numpy as np

        cache = SharedResponseCache(8)
        image = np.ones((4, 4, 3))
        key_a = self._router_key("tiny", image, "the red box")
        key_b = self._router_key("tiny-word2pix", image, "the red box")
        assert key_a != key_b
        cache.put(key_a, box(1, 1, 1, 1))
        assert cache.get(key_b) is None, (
            "preset B answered from preset A's cache entry")
        cache.put(key_b, box(2, 2, 2, 2))
        assert cache.get(key_a)[0] == 1.0
        assert cache.get(key_b)[0] == 2.0

    def test_epoch_bump_invalidates_every_model(self):
        import numpy as np

        cache = SharedResponseCache(8)
        image = np.zeros((4, 4, 3))
        for model in ("tiny", "tiny-word2pix"):
            cache.put(self._router_key(model, image, "q"), box(1, 2, 3, 4))
        cache.bump_epoch()
        for model in ("tiny", "tiny-word2pix"):
            assert cache.get(self._router_key(model, image, "q")) is None
