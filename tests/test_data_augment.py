"""Grounding-aware augmentation: flips must stay language-consistent."""

import numpy as np
import pytest

from repro.data import REFCOCO, build_dataset
from repro.data.augment import augment_samples, color_jitter, flip_tokens, hflip_sample


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(REFCOCO.scaled(0.03))


class TestFlipTokens:
    def test_swaps_spatial_words(self):
        assert flip_tokens(["left", "dog"]) == ["right", "dog"]
        assert flip_tokens(["dog", "on", "the", "right"]) == ["dog", "on", "the", "left"]

    def test_other_words_untouched(self):
        assert flip_tokens(["red", "top", "dog"]) == ["red", "top", "dog"]


class TestHFlip:
    def test_image_mirrored(self, dataset):
        sample = dataset["train"][0]
        flipped = hflip_sample(sample)
        assert np.allclose(flipped.image, sample.image[:, :, ::-1])

    def test_box_mirrored_consistently(self, dataset):
        sample = dataset["train"][0]
        width = sample.image.shape[2]
        flipped = hflip_sample(sample)
        assert np.isclose(flipped.target_box[0], width - sample.target_box[2])
        assert np.isclose(flipped.target_box[2], width - sample.target_box[0])
        assert flipped.target_box[1] == sample.target_box[1]

    def test_double_flip_is_identity(self, dataset):
        sample = dataset["train"][0]
        twice = hflip_sample(hflip_sample(sample))
        assert np.allclose(twice.image, sample.image)
        assert np.allclose(twice.target_box, sample.target_box)
        assert twice.tokens == sample.tokens

    def test_box_stays_on_object_pixels(self, dataset):
        """The mirrored box must still cover bright (object) pixels."""
        sample = dataset["train"][0]
        flipped = hflip_sample(sample)
        x1, y1, x2, y2 = flipped.target_box.astype(int)
        region = flipped.image[:, y1:y2, x1:x2]
        assert region.mean() > flipped.image.mean()

    def test_original_untouched(self, dataset):
        sample = dataset["train"][0]
        image_before = sample.image.copy()
        hflip_sample(sample)
        assert np.array_equal(sample.image, image_before)


class TestColorJitter:
    def test_values_stay_in_range(self, dataset):
        jittered = color_jitter(dataset["train"][0], strength=0.3,
                                rng=np.random.default_rng(0))
        assert jittered.image.min() >= 0.0 and jittered.image.max() <= 1.0

    def test_language_and_box_untouched(self, dataset):
        sample = dataset["train"][0]
        jittered = color_jitter(sample, rng=np.random.default_rng(0))
        assert jittered.tokens == sample.tokens
        assert np.allclose(jittered.target_box, sample.target_box)

    def test_zero_strength_is_identity(self, dataset):
        sample = dataset["train"][0]
        jittered = color_jitter(sample, strength=0.0, rng=np.random.default_rng(0))
        assert np.allclose(jittered.image, sample.image)


class TestAugmentSamples:
    def test_preserves_count(self, dataset):
        out = augment_samples(dataset["train"][:6], rng=np.random.default_rng(0))
        assert len(out) == 6

    def test_flip_probability_zero(self, dataset):
        out = augment_samples(dataset["train"][:4], flip_probability=0.0,
                              jitter_strength=0.0, rng=np.random.default_rng(0))
        for original, augmented in zip(dataset["train"][:4], out):
            assert np.allclose(original.image, augmented.image)

    def test_flip_probability_one(self, dataset):
        out = augment_samples(dataset["train"][:4], flip_probability=1.0,
                              jitter_strength=0.0, rng=np.random.default_rng(0))
        for original, augmented in zip(dataset["train"][:4], out):
            assert np.allclose(augmented.image, original.image[:, :, ::-1])
