"""Tensor core: arithmetic, broadcasting, reductions, shape ops, autodiff."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    as_tensor,
    concatenate,
    gradient_check,
    is_grad_enabled,
    no_grad,
    ones,
    stack,
    tensor,
    where,
    zeros,
    set_default_dtype,
    get_default_dtype,
)


def make(shape, seed=0, requires_grad=True):
    data = np.random.default_rng(seed).normal(size=shape)
    return Tensor(data, requires_grad=requires_grad)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_integer_arrays_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_rejects_object_dtype(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"], dtype=object))

    def test_constructors(self):
        assert zeros((2, 3)).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6
        assert tensor([1.0]).requires_grad is False

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_item_scalar(self):
        assert Tensor([3.5]).item() == 3.5

    def test_len_and_size(self):
        t = zeros((4, 2))
        assert len(t) == 4
        assert t.size == 8
        assert t.ndim == 2

    def test_default_dtype_switch(self):
        set_default_dtype(np.float32)
        assert Tensor([1.0]).dtype == np.float32
        assert get_default_dtype() == np.float32
        set_default_dtype(np.float64)

    def test_set_default_dtype_rejects_int(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)


class TestArithmetic:
    def test_add_values(self):
        assert np.allclose((Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])).data, [4, 6])

    def test_scalar_radd(self):
        assert np.allclose((1.0 + Tensor([1.0])).data, [2.0])

    def test_sub_rsub(self):
        assert np.allclose((5.0 - Tensor([2.0])).data, [3.0])
        assert np.allclose((Tensor([5.0]) - 2.0).data, [3.0])

    def test_mul_div(self):
        assert np.allclose((Tensor([6.0]) / Tensor([2.0])).data, [3.0])
        assert np.allclose((2.0 / Tensor([4.0])).data, [0.5])

    def test_pow_scalar_only(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_add_backward(self):
        gradient_check(lambda a, b: a + b, [make((3, 2)), make((3, 2), 1)])

    def test_mul_broadcast_backward(self):
        gradient_check(lambda a, b: a * b, [make((3, 2)), make((2,), 1)])

    def test_div_backward(self):
        b = make((3, 2), 1)
        b.data += 3.0  # keep away from zero
        gradient_check(lambda a, b: a / b, [make((3, 2)), b])

    def test_pow_backward(self):
        a = make((4,))
        a.data = np.abs(a.data) + 0.5
        gradient_check(lambda a: a**3, [a])

    def test_broadcast_scalar_grad_shape(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.array(2.0), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == ()
        assert b.grad == 6.0


class TestMatmul:
    @pytest.mark.parametrize(
        "shape_a,shape_b",
        [((3, 4), (4, 5)), ((4,), (4, 5)), ((3, 4), (4,)), ((4,), (4,)),
         ((2, 3, 4), (2, 4, 5)), ((2, 3, 4), (4, 5)), ((2, 3, 4), (4,))],
    )
    def test_matmul_grad(self, shape_a, shape_b):
        gradient_check(lambda a, b: a.matmul(b), [make(shape_a), make(shape_b, 1)])

    def test_matmul_value(self):
        a, b = np.ones((2, 3)), np.ones((3, 4))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt"])
    def test_unary_grad(self, op):
        a = make((3, 4))
        if op == "sqrt":
            a.data = np.abs(a.data) + 0.5
        gradient_check(lambda a: getattr(a, op)(), [a])

    def test_log_grad(self):
        a = make((3, 4))
        a.data = np.abs(a.data) + 0.5
        gradient_check(lambda a: a.log(), [a])

    def test_leaky_relu_negative_slope(self):
        t = Tensor([-1.0, 1.0])
        assert np.allclose(t.leaky_relu(0.1).data, [-0.1, 1.0])

    def test_clip_values_and_grad_mask(self):
        t = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        out = t.clip(-1.0, 1.0)
        assert np.allclose(out.data, [-1.0, 0.0, 1.0])
        out.sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum_grad_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        a.maximum(b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((-1,), False)])
    def test_sum_grad(self, axis, keepdims):
        gradient_check(lambda a: a.sum(axis=axis, keepdims=keepdims), [make((3, 4))])

    def test_mean_value(self):
        assert Tensor([2.0, 4.0]).mean().item() == 3.0

    def test_mean_axis_grad(self):
        gradient_check(lambda a: a.mean(axis=0), [make((3, 4))])

    def test_max_grad_ties_split(self):
        t = Tensor([[1.0, 1.0]], requires_grad=True)
        t.max(axis=1).backward(np.array([1.0]))
        assert np.allclose(t.grad, [[0.5, 0.5]])

    def test_var(self):
        data = np.random.default_rng(0).normal(size=(5, 6))
        assert np.allclose(Tensor(data).var(axis=1).data, data.var(axis=1))


class TestShapes:
    def test_reshape_grad(self):
        gradient_check(lambda a: a.reshape(4, 3), [make((3, 4))])

    def test_transpose_grad(self):
        gradient_check(lambda a: a.transpose(1, 0, 2), [make((2, 3, 4))])

    def test_T(self):
        assert Tensor(np.ones((2, 3))).T.shape == (3, 2)

    def test_swapaxes(self):
        assert make((2, 3, 4)).swapaxes(0, 2).shape == (4, 3, 2)

    def test_flatten_and_expand(self):
        t = make((2, 3))
        assert t.flatten().shape == (6,)
        assert t.expand_dims(1).shape == (2, 1, 3)
        assert t.expand_dims(-1).shape == (2, 3, 1)

    def test_squeeze(self):
        t = zeros((2, 1, 3))
        assert t.squeeze(1).shape == (2, 3)
        assert t.squeeze().shape == (2, 3)
        with pytest.raises(ValueError):
            t.squeeze(0)

    def test_getitem_grad_scatter(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = t[np.array([0, 0, 1])]
        out.sum().backward()
        assert np.allclose(t.grad, [[2, 2, 2], [1, 1, 1]])

    def test_getitem_slice_grad(self):
        gradient_check(lambda a: a[:, 1:3], [make((3, 5))])


class TestGraph:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_grad_shape_mismatch(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward(np.ones(3))

    def test_grad_accumulates_on_reuse(self):
        t = Tensor([1.0], requires_grad=True)
        (t + t).backward(np.array([1.0]))
        assert np.allclose(t.grad, [2.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_independent(self):
        t = Tensor([1.0])
        c = t.copy()
        c.data[0] = 5.0
        assert t.data[0] == 1.0

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).backward(np.array([1.0]))
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_grad(self):
        t = Tensor([2.0], requires_grad=True)
        a = t * 3
        b = t * 4
        (a + b).backward(np.array([1.0]))
        assert np.allclose(t.grad, [7.0])


class TestFreeFunctions:
    def test_concatenate_grad(self):
        gradient_check(
            lambda a, b: concatenate([a, b], axis=1), [make((2, 3)), make((2, 2), 1)]
        )

    def test_stack_grad(self):
        gradient_check(lambda a, b: stack([a, b], axis=0), [make((2, 3)), make((2, 3), 1)])

    def test_where_grad(self):
        cond = np.array([True, False, True])
        gradient_check(lambda a, b: where(cond, a, b), [make((3,)), make((3,), 1)])

    def test_where_values(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_comparisons_return_numpy(self):
        mask = Tensor([1.0, 3.0]) > Tensor([2.0, 2.0])
        assert isinstance(mask, np.ndarray)
        assert mask.tolist() == [False, True]


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_property_add_mul_grads(rows, cols, seed):
    """d/da sum(a*b + a) == b + 1 for any shapes and values."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(rows, cols)))
    (a * b + a).sum().backward()
    assert np.allclose(a.grad, b.data + 1.0)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(1, 3),
    rows=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_property_broadcast_grad_reduces(batch, rows, seed):
    """Gradient w.r.t. a broadcast operand sums over broadcast axes."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(batch, rows, 2)), requires_grad=True)
    b = Tensor(rng.normal(size=(2,)), requires_grad=True)
    (a * b).sum().backward()
    assert b.grad.shape == (2,)
    assert np.allclose(b.grad, a.data.sum(axis=(0, 1)))
