"""Command-line interface: argument parsing and tiny end-to-end runs."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "RefCOCO"
        assert args.epochs == 10

    def test_evaluate_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate"])

    def test_tables_only_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--only", "table9"])

    def test_ground_query_optional(self):
        args = build_parser().parse_args(["ground", "--model", "m.npz"])
        assert args.query is None

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.requests == 128
        assert args.max_batch == 16
        assert args.model is None
        assert args.compiled is False

    def test_compiled_flags_parse(self):
        args = build_parser().parse_args(["serve-bench", "--compiled"])
        assert args.compiled is True
        args = build_parser().parse_args(
            ["profile", "--target", "infer", "--compiled"]
        )
        assert args.compiled is True

    def test_serve_fleet_defaults(self):
        args = build_parser().parse_args(["serve-fleet"])
        assert args.replicas == 3
        assert args.requests == 120
        assert args.simulated is False
        assert args.kill_replica is None
        assert args.reload_at is None
        assert args.slo_p99 is None
        assert args.router_cache == 256

    def test_serve_fleet_router_cache_flag_parses(self):
        args = build_parser().parse_args(
            ["serve-fleet", "--router-cache", "0"])
        assert args.router_cache == 0
        args = build_parser().parse_args(
            ["serve-fleet", "--router-cache", "1024"])
        assert args.router_cache == 1024

    def test_serve_fleet_fault_flags_parse(self):
        args = build_parser().parse_args([
            "serve-fleet", "--simulated", "--replicas", "2",
            "--kill-replica", "0:3", "1:5", "--reload-at", "40",
            "--slo-p99", "0.5",
        ])
        assert args.simulated is True
        assert args.kill_replica == ["0:3", "1:5"]
        assert args.reload_at == 40
        assert args.slo_p99 == pytest.approx(0.5)

    def test_serve_fleet_trace_mix_parses(self):
        args = build_parser().parse_args(
            ["serve-fleet", "--trace-mix", "mixed"])
        assert args.trace_mix == "mixed"
        assert build_parser().parse_args(["serve-fleet"]).trace_mix is None

    def test_serve_fleet_unknown_trace_mix_lists_registry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve-fleet", "--trace-mix", "nope"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown trace mix 'nope'" in stderr
        assert "mixed" in stderr

    def test_experiments_scenario_parses(self):
        args = build_parser().parse_args(
            ["experiments", "--scenario", "driving"])
        assert args.scenario == "driving"
        assert args.preset is None  # resolved via get_preset/REPRO_PRESET
        assert build_parser().parse_args(["experiments"]).scenario is None

    def test_experiments_unknown_scenario_lists_registry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["experiments", "--scenario", "nope"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown scenario 'nope'" in stderr
        assert "driving" in stderr and "crowded" in stderr

    def test_parse_defaults(self):
        args = build_parser().parse_args(["parse", "--query", "the red car"])
        assert args.query == "the red car"
        assert args.format == "tree"
        assert args.scenario is None
        assert args.max_length == 24

    def test_parse_unknown_format_lists_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["parse", "--query", "q", "--format", "nope"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown parse format 'nope'" in stderr
        assert "tree" in stderr and "masks" in stderr

    def test_parse_unknown_scenario_lists_registry(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["parse", "--scenario", "nope"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown scenario 'nope'" in stderr
        assert "compositional" in stderr

    def test_train_preset_parses(self):
        args = build_parser().parse_args(["train", "--preset", "tiny-focal"])
        assert args.preset == "tiny-focal"
        assert build_parser().parse_args(["train"]).preset is None

    def test_train_unknown_preset_lists_zoo(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["train", "--preset", "nope"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown model preset 'nope'" in stderr
        assert "tiny" in stderr and "tiny-word2pix" in stderr

    def test_serve_fleet_presets_parse_as_list(self):
        args = build_parser().parse_args(
            ["serve-fleet", "--presets", "tiny,tiny-word2pix"])
        assert args.presets == ["tiny", "tiny-word2pix"]
        assert build_parser().parse_args(["serve-fleet"]).presets is None

    def test_serve_fleet_unknown_preset_in_list_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["serve-fleet", "--presets", "tiny,bogus"])
        assert excinfo.value.code == 2
        assert "unknown model preset 'bogus'" in capsys.readouterr().err

    def test_serve_fleet_presets_exclusive_with_simulated(self):
        with pytest.raises(SystemExit):
            main(["serve-fleet", "--presets", "tiny", "--simulated"])
        with pytest.raises(SystemExit):
            main(["serve-fleet", "--presets", "tiny", "--reload-at", "5"])

    def test_experiments_model_preset_parses(self):
        args = build_parser().parse_args(
            ["experiments", "--model-preset", "tiny-dilated"])
        assert args.model_preset == "tiny-dilated"
        assert build_parser().parse_args(["experiments"]).model_preset is None

    def test_tables_accepts_scenarios_module(self):
        args = build_parser().parse_args(["tables", "--only", "scenarios"])
        assert args.only == ["scenarios"]

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.target == "train-step"
        assert args.steps == 1
        assert args.top == 12
        assert args.out is None
        assert args.scale == pytest.approx(0.1)

    def test_profile_target_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--target", "nonsense"])


class TestEndToEnd:
    def test_train_then_evaluate_then_ground(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        checkpoint = str(tmp_path / "model.npz")
        common = ["--scale", "0.03", "--backbone", "tiny", "--pretrain-steps", "1"]

        code = main(["train", "--epochs", "1", "--out", checkpoint, "--quiet",
                     "--eval-every", "0"] + common)
        assert code == 0
        assert os.path.exists(checkpoint)
        assert "saved checkpoint" in capsys.readouterr().out

        code = main(["evaluate", "--model", checkpoint] + common)
        assert code == 0
        out = capsys.readouterr().out
        assert "ACC@0.5" in out and "val" in out

        code = main(["ground", "--model", checkpoint, "--query", "red dog"] + common)
        assert code == 0
        out = capsys.readouterr().out
        assert "red dog" in out and "box:" in out

    def test_train_with_model_preset(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        checkpoint = str(tmp_path / "preset.npz")
        code = main(["train", "--preset", "tiny-topk", "--epochs", "1",
                     "--scale", "0.03", "--pretrain-steps", "1",
                     "--eval-every", "0", "--quiet", "--out", checkpoint])
        assert code == 0
        out = capsys.readouterr().out
        assert "model preset: tiny-topk" in out
        assert "config fingerprint" in out
        assert os.path.exists(checkpoint)

    @pytest.mark.dist
    def test_heterogeneous_preset_fleet_soak(self, tmp_path, capsys,
                                             monkeypatch):
        """Acceptance: two presets behind one router, every response
        bit-identical to its preset's single-engine output, zero
        cross-preset cache serves."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["serve-fleet", "--presets", "tiny,tiny-word2pix",
                     "--replicas", "2", "--requests", "16", "--rate", "200",
                     "--scale", "0.03", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "heterogeneous fleet: 2 preset(s)" in out
        assert "model=tiny" in out and "model=tiny-word2pix" in out
        assert "0 LOST" in out

    def test_experiments_single_scenario_report(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["experiments", "--scenario", "crowded",
                     "--preset", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario crowded" in out
        assert "query mix" in out and "no_target" in out
        assert "oracle" in out and "largest-first" in out

    def test_experiments_compositional_depth_breakdown(self, tmp_path,
                                                       capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["experiments", "--scenario", "compositional",
                     "--preset", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario compositional" in out
        assert "clause depth" in out
        assert "recall by clause depth" in out

    def test_parse_command_formats(self, capsys):
        query = "there is a red car . the dog next to it"
        assert main(["parse", "--query", query]) == 0
        out = capsys.readouterr().out
        assert "entity" in out and "clause" in out

        assert main(["parse", "--query", query,
                     "--format", "tokens"]) == 0
        out = capsys.readouterr().out
        assert "dog" in out

        assert main(["parse", "--query", query,
                     "--format", "masks"]) == 0
        masks_out = capsys.readouterr().out
        assert "1" in masks_out

        # Single-clause queries report the flat-token fallback.
        assert main(["parse", "--query", "the red car",
                     "--format", "masks"]) == 0
        out = capsys.readouterr().out
        assert "fallback" in out

    def test_parse_command_requires_input(self, capsys):
        with pytest.raises(SystemExit):
            main(["parse"])

    def test_profile_train_step_writes_chrome_trace(self, tmp_path, capsys,
                                                    monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = str(tmp_path / "trace.json")
        code = main(["profile", "--target", "train-step", "--scale", "0.03",
                     "--out", out])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Hot ops" in printed and "conv2d" in printed
        assert "Spans" in printed and "yollo.forward" in printed
        with open(out) as handle:
            payload = json.load(handle)
        ts = [event["ts"] for event in payload["traceEvents"]]
        assert ts and ts == sorted(ts)

    def test_profile_infer_compiled_smoke(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = str(tmp_path / "trace.json")
        code = main(["profile", "--target", "infer", "--compiled",
                     "--requests", "2", "--scale", "0.03", "--out", out])
        assert code == 0
        printed = capsys.readouterr().out
        # Compiled replay runs under the graph.execute span and reports
        # fused kernels in the hot-op table.
        assert "graph.execute" in printed
        assert os.path.exists(out)
