"""Evaluation: metrics, timing, curves, reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import REFCOCO, build_dataset
from repro.eval import (
    TrainingCurve,
    accuracy_at_iou,
    accuracy_sweep,
    evaluate_grounder,
    format_table,
    mean_iou,
    time_grounder,
)
from repro.eval import (
    calibrate_not_found_threshold,
    no_target_report,
    recall_at_k,
)
from repro.eval.metrics import SWEEP_THRESHOLDS, pairwise_ious
from repro.eval.timing import summarize_latencies


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(REFCOCO.scaled(0.03))


class TestMetrics:
    def test_accuracy_at_iou(self):
        ious = np.array([0.4, 0.6, 0.9])
        assert accuracy_at_iou(ious, 0.5) == pytest.approx(2 / 3)

    def test_accuracy_threshold_is_inclusive(self):
        # Regression: ACC@eta is the fraction with IoU >= eta; a strict
        # comparison used to count a prediction at exactly the threshold
        # as a miss.
        ious = np.array([0.5, 0.75, 0.3])
        assert accuracy_at_iou(ious, 0.5) == pytest.approx(2 / 3)
        assert accuracy_at_iou(ious, 0.75) == pytest.approx(1 / 3)
        assert accuracy_at_iou(np.array([0.5]), 0.5) == 1.0

    def test_accuracy_empty(self):
        assert accuracy_at_iou(np.array([])) == 0.0
        assert mean_iou(np.array([])) == 0.0

    def test_sweep_thresholds(self):
        assert len(SWEEP_THRESHOLDS) == 10
        assert SWEEP_THRESHOLDS[0] == 0.5 and SWEEP_THRESHOLDS[-1] == 0.95

    def test_sweep_perfect_predictions(self):
        assert accuracy_sweep(np.ones(5)) == 1.0

    def test_pairwise_ious_diagonal(self):
        boxes = np.array([[0.0, 0.0, 10.0, 10.0], [5.0, 5.0, 15.0, 15.0]])
        assert np.allclose(pairwise_ious(boxes, boxes), 1.0)

    def test_pairwise_shape_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_ious(np.zeros((2, 4)), np.zeros((3, 4)))

    def test_pairwise_matches_per_pair_iou_matrix(self):
        # The vectorised pass must agree with the per-pair reference
        # (the old implementation: one 1x1 iou_matrix call per sample).
        from repro.detection import iou_matrix

        rng = np.random.default_rng(5)
        corners = rng.uniform(0.0, 40.0, size=(64, 2, 2))
        predicted = np.concatenate(
            [corners.min(axis=1), corners.min(axis=1) + rng.uniform(0.1, 20.0, (64, 2))],
            axis=1,
        )
        corners = rng.uniform(0.0, 40.0, size=(64, 2, 2))
        targets = np.concatenate(
            [corners.min(axis=1), corners.min(axis=1) + rng.uniform(0.1, 20.0, (64, 2))],
            axis=1,
        )
        reference = np.array(
            [iou_matrix(p[None], t[None])[0, 0] for p, t in zip(predicted, targets)]
        )
        assert np.allclose(pairwise_ious(predicted, targets), reference)

    def test_pairwise_empty(self):
        assert pairwise_ious(np.empty((0, 4)), np.empty((0, 4))).shape == (0,)

    def test_evaluate_perfect_grounder(self, dataset):
        perfect = lambda samples: np.stack([s.target_box for s in samples])
        report = evaluate_grounder(perfect, dataset["val"])
        assert report.acc_at_50 == 1.0
        assert report.miou == pytest.approx(1.0)

    def test_evaluate_terrible_grounder(self, dataset):
        terrible = lambda samples: np.zeros((len(samples), 4))
        report = evaluate_grounder(terrible, dataset["val"])
        assert report.acc_at_50 == 0.0

    def test_evaluate_batches_correctly(self, dataset):
        calls = []

        def grounder(samples):
            calls.append(len(samples))
            return np.stack([s.target_box for s in samples])

        evaluate_grounder(grounder, dataset["val"], batch_size=3)
        assert sum(calls) == len(dataset["val"])
        assert max(calls) <= 3

    def test_report_as_dict(self, dataset):
        perfect = lambda samples: np.stack([s.target_box for s in samples])
        report = evaluate_grounder(perfect, dataset["val"])
        assert set(report.as_dict()) == {"ACC", "ACC@0.5", "ACC@0.75", "MIOU"}


class TestTiming:
    def test_reports_stats(self, dataset):
        grounder = lambda samples: np.zeros((len(samples), 4))
        report = time_grounder(grounder, dataset["val"][:4], warmup=1)
        assert report.num_queries == 4
        assert report.mean >= 0.0
        assert report.total_mean == report.mean

    def test_proposal_timer_adds(self, dataset):
        grounder = lambda samples: np.zeros((len(samples), 4))
        report = time_grounder(
            grounder, dataset["val"][:3], proposal_timer=lambda s: 0.5
        )
        assert report.proposal_mean == pytest.approx(0.5)
        assert report.total_mean == pytest.approx(report.mean + 0.5)

    def test_quantiles_match_numpy(self):
        durations = [0.01, 0.02, 0.03, 0.10]
        report = summarize_latencies(durations)
        assert report.p50 == float(np.percentile(durations, 50))
        assert report.p95 == float(np.percentile(durations, 95))
        assert report.p99 == float(np.percentile(durations, 99))
        assert report.mean == pytest.approx(np.mean(durations))
        assert report.std == pytest.approx(np.std(durations))

    def test_empty_latencies(self):
        report = summarize_latencies([])
        assert report.num_queries == 0
        assert report.mean == 0.0 and report.p99 == 0.0

    def test_model_time_from_spans(self, dataset):
        from repro.obs import trace_span

        def grounder(samples):
            with trace_span("yollo.forward"):
                pass  # the span *is* the model time here
            return np.zeros((len(samples), 4))

        report = time_grounder(grounder, dataset["val"][:3], warmup=0)
        assert report.model_mean > 0.0
        assert report.model_mean <= report.mean
        assert report.overhead_mean == pytest.approx(
            report.mean - report.model_mean
        )

    def test_unspanned_grounder_has_zero_model_time(self, dataset):
        grounder = lambda samples: np.zeros((len(samples), 4))
        report = time_grounder(grounder, dataset["val"][:2], warmup=0)
        assert report.model_mean == 0.0
        assert report.overhead_mean == report.mean


class TestEagerCompiledComparison:
    def test_compares_and_restores_eager_mode(self, dataset):
        from repro.core import Grounder, YolloConfig, YolloModel
        from repro.eval import compare_eager_compiled
        from repro.utils import seed_everything

        seed_everything(17)
        cfg = YolloConfig(
            backbone="tiny", d_model=12, d_rel=16, ffn_hidden=16,
            head_hidden=16, num_rel2att=2,
            max_query_length=max(6, dataset.max_query_length),
        )
        model = YolloModel(cfg, vocab_size=len(dataset.vocab)).eval()
        grounder = Grounder(model, dataset.vocab)
        comparison = compare_eager_compiled(
            grounder, dataset["val"][:3], warmup=1
        )
        assert comparison.eager.mean > 0.0
        assert comparison.compiled.mean > 0.0
        assert comparison.plans >= 1
        assert comparison.compile_ms > 0.0
        assert comparison.speedup > 0.0
        assert "speedup" in comparison.render()
        # The measurement must not leave the grounder compiled.
        assert grounder.plan_cache is None


class TestTrainingCurve:
    def test_record_and_final(self):
        curve = TrainingCurve("x")
        curve.record(10, 0.2)
        curve.record(20, 0.8)
        assert curve.final() == 0.8
        assert curve.best() == 0.8
        assert curve.as_series() == [(10, 0.2), (20, 0.8)]

    def test_empty_defaults(self):
        curve = TrainingCurve("x")
        assert curve.final() == 0.0
        assert curve.convergence_iteration() == 0

    def test_convergence_iteration(self):
        curve = TrainingCurve("x")
        for i, v in [(1, 0.1), (2, 0.5), (3, 0.96), (4, 1.0)]:
            curve.record(i, v)
        assert curve.convergence_iteration(0.95) == 3

    def test_ascii_rendering(self):
        curve = TrainingCurve("demo")
        for i in range(10):
            curve.record(i, i / 10)
        art = curve.render_ascii(width=20, height=5)
        assert "demo" in art and "*" in art


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(["a", "bb"], [["x", 1.234], ["yy", 10.0]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "1.23" in table
        assert all(len(line) == len(lines[1]) for line in lines[1:])


class TestRecallAtK:
    def _boxes(self, *rows):
        return np.asarray(rows, dtype=float).reshape(-1, 4)

    def test_perfect_at_one(self):
        targets = [self._boxes([0, 0, 10, 10]), self._boxes([5, 5, 15, 15])]
        assert recall_at_k(targets, targets, k=1) == 1.0

    def test_hit_only_deeper_in_ranking(self):
        ranked = [self._boxes([50, 50, 60, 60], [0, 0, 10, 10])]
        targets = [self._boxes([0, 0, 10, 10])]
        assert recall_at_k(ranked, targets, k=1) == 0.0
        assert recall_at_k(ranked, targets, k=2) == 1.0

    def test_multi_target_any_match_counts(self):
        ranked = [self._boxes([0, 0, 10, 10])]
        targets = [self._boxes([100, 100, 110, 110], [0, 0, 10, 10])]
        assert recall_at_k(ranked, targets, k=1) == 1.0

    def test_no_target_queries_are_skipped(self):
        ranked = [self._boxes([0, 0, 10, 10]), np.empty((0, 4))]
        targets = [self._boxes([0, 0, 10, 10]), np.empty((0, 4))]
        assert recall_at_k(ranked, targets, k=1) == 1.0

    def test_empty_ranking_with_real_target_misses(self):
        ranked = [np.empty((0, 4))]
        targets = [self._boxes([0, 0, 10, 10])]
        assert recall_at_k(ranked, targets, k=5) == 0.0

    def test_iou_threshold_respected(self):
        ranked = [self._boxes([0, 0, 10, 10])]
        targets = [self._boxes([0, 0, 10, 12])]  # IoU = 10/12
        assert recall_at_k(ranked, targets, k=1, iou_threshold=0.9) == 0.0
        assert recall_at_k(ranked, targets, k=1, iou_threshold=0.8) == 1.0

    def test_rejects_bad_k_and_misalignment(self):
        with pytest.raises(ValueError):
            recall_at_k([], [], k=0)
        with pytest.raises(ValueError):
            recall_at_k([np.empty((0, 4))], [], k=1)


class TestClauseDepthRecall:
    def _boxes(self, *rows):
        return np.asarray(rows, dtype=np.float64).reshape(-1, 4)

    def test_grouping_by_parse_depth(self):
        from repro.eval import group_by_clause_depth

        groups = group_by_clause_depth([
            "the red car",                                     # depth 0
            "the dog to the left of the car",                  # depth 1
            "the dog next to the car that is to the left of "
            "the lamp",                                        # depth 2
            "???",                                             # unparseable
        ])
        assert groups[0] == [0, 3]
        assert groups[1] == [1]
        assert groups[2] == [2]

    def test_recall_split_per_depth(self):
        from repro.eval import recall_by_clause_depth

        queries = ["the red car", "the dog to the left of the car"]
        targets = [self._boxes([0, 0, 10, 10]), self._boxes([5, 5, 15, 15])]
        ranked = [targets[0], self._boxes([90, 90, 99, 99])]  # depth-1 miss
        result = recall_by_clause_depth(ranked, targets, queries, k=1)
        assert result[0] == 1.0
        assert result[1] == 0.0

    def test_misalignment_rejected(self):
        from repro.eval import recall_by_clause_depth

        with pytest.raises(ValueError):
            recall_by_clause_depth([np.empty((0, 4))], [], ["q"])


class TestNoTargetReport:
    def test_counts_and_rates(self):
        report = no_target_report(
            predicted_not_found=[True, True, False, False, True],
            actual_no_target=[True, False, True, False, True],
        )
        assert report.true_positives == 2
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.true_negatives == 1
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)
        assert report.f1 == pytest.approx(2 / 3)

    def test_never_abstains(self):
        report = no_target_report([False, False], [True, False])
        assert report.precision == 0.0 and report.recall == 0.0
        assert report.f1 == 0.0

    def test_perfect(self):
        report = no_target_report([True, False], [True, False])
        assert report.f1 == 1.0
        assert set(report.as_dict()) >= {"precision", "recall", "f1"}

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            no_target_report([True], [True, False])


class TestCalibrateNotFoundThreshold:
    def test_separable_scores(self):
        threshold = calibrate_not_found_threshold(
            found_scores=[0.9, 0.8, 0.7], no_target_scores=[0.2, 0.1]
        )
        assert 0.2 < threshold < 0.7
        # The calibrated rule classifies every training score correctly.
        assert all(s >= threshold for s in [0.9, 0.8, 0.7])
        assert all(s < threshold for s in [0.2, 0.1])

    def test_no_absent_queries_never_abstains(self):
        assert calibrate_not_found_threshold([0.5, 0.9], []) == 0.0

    def test_only_absent_queries_always_abstains(self):
        threshold = calibrate_not_found_threshold([], [0.3, 0.6])
        assert threshold > 0.6

    def test_overlapping_scores_prefer_f1(self):
        threshold = calibrate_not_found_threshold(
            found_scores=[0.9, 0.6, 0.4], no_target_scores=[0.5, 0.1]
        )
        predicted = [s < threshold for s in [0.9, 0.6, 0.4, 0.5, 0.1]]
        actual = [False, False, False, True, True]
        report = no_target_report(predicted, actual)
        assert report.f1 >= 0.5


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_metric_ordering(seed):
    """ACC <= ACC@0.5 and ACC@0.75 <= ACC@0.5 for any IoU sample."""
    ious = np.random.default_rng(seed).random(20)
    assert accuracy_sweep(ious) <= accuracy_at_iou(ious, 0.5) + 1e-12
    assert accuracy_at_iou(ious, 0.75) <= accuracy_at_iou(ious, 0.5) + 1e-12
