"""repro.zoo: preset registry, lowering, and the full-registry smoke.

The parametrized smoke is the zoo's acceptance test: every registered
preset must build, take a train step, answer the ranked protocol,
round-trip through a fingerprinted checkpoint, and compile bit-exactly.
Fast-tier presets run in tier-1; paper-scale presets are slow-marked.
"""

import numpy as np
import pytest

from repro.core import UnknownConfigFieldError, YolloConfig, YolloTrainer
from repro.core.response import responses_equal
from repro.data import REFCOCO, build_dataset
from repro.data.loader import encode_batch
from repro.runtime import CheckpointManager
from repro.runtime.checkpoint import FingerprintMismatchError
from repro.zoo import (
    ModelPreset,
    UnknownPresetError,
    available_presets,
    build_model,
    get_preset,
    lower_config,
    preset_fingerprint,
    register_preset,
)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(REFCOCO.scaled(0.04))


def _maxlen(dataset):
    return max(8, dataset.max_query_length)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registry_spans_every_component_axis(self):
        presets = available_presets()
        assert len(presets) >= 5
        configs = [lower_config(name) for name in presets]
        assert any(c.context_encoder == "dilated" for c in configs)
        assert any(c.fusion == "word2pix" for c in configs)
        assert any(c.matcher == "topk" for c in configs)
        assert any(c.cls_loss == "focal" for c in configs)
        # the baseline preset keeps every default component
        baseline = lower_config("tiny")
        assert (baseline.context_encoder, baseline.fusion,
                baseline.matcher, baseline.cls_loss) == (
            "none", "rel2att", "iou", "softmax_ce")

    def test_unknown_preset_lists_registry(self):
        with pytest.raises(UnknownPresetError) as excinfo:
            get_preset("nope")
        message = str(excinfo.value)
        assert "nope" in message
        assert "tiny" in message

    def test_tiers_partition_the_registry(self):
        fast = available_presets(tier="fast")
        full = available_presets(tier="full")
        assert fast and full
        assert set(fast).isdisjoint(full)
        assert sorted(fast + full) == sorted(available_presets())

    def test_register_rejects_unknown_config_keys(self):
        with pytest.raises(UnknownConfigFieldError) as excinfo:
            register_preset(ModelPreset(
                name="broken", description="typo'd field",
                config={"no_such_field": 1}))
        message = str(excinfo.value)
        assert "no_such_field" in message
        assert "d_model" in message  # lists the valid fields
        assert "broken" not in available_presets()

    def test_register_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            register_preset(ModelPreset(
                name="odd-tier", description="", tier="medium"))
        assert "odd-tier" not in available_presets()

    def test_lists_normalise_to_tuples(self):
        preset = ModelPreset(name="inline", description="",
                             config={"encoder_dilations": [1, 2]})
        assert lower_config(preset).encoder_dilations == (1, 2)

    def test_with_overrides_unknown_key_names_fields(self):
        with pytest.raises(UnknownConfigFieldError) as excinfo:
            YolloConfig().with_overrides(dmodel=32)
        message = str(excinfo.value)
        assert "dmodel" in message
        assert "d_model" in message

    def test_fingerprints_separate_presets_and_config_drift(self):
        prints = {preset_fingerprint(name) for name in available_presets()}
        assert len(prints) == len(available_presets())
        assert (preset_fingerprint("tiny", d_model=32)
                != preset_fingerprint("tiny"))
        # two presets lowering identically still fingerprint apart
        twin = ModelPreset(name="tiny-twin", description="",
                           config=dict(get_preset("tiny").config))
        assert preset_fingerprint(twin) != preset_fingerprint("tiny")


# ----------------------------------------------------------------------
# Full-registry smoke: every preset earns its registry slot
# ----------------------------------------------------------------------
def _smoke_params():
    fast = available_presets(tier="fast")
    full = available_presets(tier="full")
    return fast + [pytest.param(name, marks=pytest.mark.slow)
                   for name in full]


class TestPresetSmoke:
    @pytest.mark.parametrize("name", _smoke_params())
    def test_build_train_predict_checkpoint_compile(self, name, dataset,
                                                    tmp_path):
        from repro.core.trainer import TrainingHistory

        config = lower_config(name, max_query_length=_maxlen(dataset))
        model = build_model(name, vocab_size=len(dataset.vocab),
                            max_query_length=_maxlen(dataset))

        # one real optimisation step through the preset's matcher + loss
        trainer = YolloTrainer(model, dataset, config)
        batch = encode_batch(dataset["train"][:2], dataset.vocab,
                             config.max_query_length)
        loss = trainer._step(batch, TrainingHistory())
        assert np.isfinite(loss)

        # ranked protocol answers with valid, ordered scores
        model.eval()
        val = encode_batch(dataset["val"][:2], dataset.vocab,
                           config.max_query_length)
        responses = model.predict_ranked(
            val["images"], val["token_ids"], val["token_mask"], top_k=3)
        assert len(responses) == 2
        for response in responses:
            assert response.boxes.shape[1] == 4
            assert (np.diff(response.scores) <= 1e-12).all()

        # fingerprinted checkpoint round-trip restores predictions
        fingerprint = preset_fingerprint(name,
                                         max_query_length=_maxlen(dataset))
        manager = CheckpointManager(str(tmp_path), fingerprint=fingerprint)
        path = manager.save(model.state_dict(), 1)
        record = CheckpointManager(str(tmp_path),
                                   fingerprint=fingerprint).load(path)
        clone = build_model(name, vocab_size=len(dataset.vocab),
                            max_query_length=_maxlen(dataset))
        clone.load_state_dict(record.payload)
        clone.eval()
        restored = clone.predict_ranked(
            val["images"], val["token_ids"], val["token_mask"], top_k=3)
        assert all(responses_equal(a, b)
                   for a, b in zip(responses, restored))

        # compiled inference replays bit-exactly
        model.compile()
        compiled = model.predict_ranked(
            val["images"], val["token_ids"], val["token_mask"], top_k=3)
        model.uncompile()
        assert all(responses_equal(a, b)
                   for a, b in zip(responses, compiled))

    def test_checkpoints_do_not_cross_load_between_presets(self, dataset,
                                                           tmp_path):
        model = build_model("tiny", vocab_size=len(dataset.vocab),
                            max_query_length=_maxlen(dataset))
        manager = CheckpointManager(
            str(tmp_path), fingerprint=preset_fingerprint(
                "tiny", max_query_length=_maxlen(dataset)))
        path = manager.save(model.state_dict(), 1)
        other = CheckpointManager(
            str(tmp_path), fingerprint=preset_fingerprint(
                "tiny-word2pix", max_query_length=_maxlen(dataset)))
        with pytest.raises(FingerprintMismatchError):
            other.load(path)

    def test_presets_diverge_in_behaviour(self, dataset):
        """The variants are real: different presets, same seed, different
        answers (otherwise the registry is five names for one model)."""
        from repro.utils import seed_everything

        val = encode_batch(dataset["val"][:1], dataset.vocab,
                           _maxlen(dataset))
        answers = {}
        for name in ("tiny", "tiny-word2pix", "tiny-dilated"):
            seed_everything(77)
            model = build_model(name, vocab_size=len(dataset.vocab),
                                max_query_length=_maxlen(dataset))
            model.eval()
            response = model.predict_ranked(
                val["images"], val["token_ids"], val["token_mask"],
                top_k=1)[0]
            answers[name] = response.boxes.tobytes() + response.scores.tobytes()
        assert len(set(answers.values())) > 1
