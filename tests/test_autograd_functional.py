"""Functional ops: convolution, pooling, padding, softmax, embedding."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    conv2d,
    embedding_lookup,
    gradient_check,
    log_softmax,
    max_pool2d,
    pad2d,
    softmax,
)


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestConv2d:
    def test_output_shape(self):
        out = conv2d(make((2, 3, 8, 8)), make((5, 3, 3, 3), 1), stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_matches_naive_convolution(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        w = np.random.default_rng(1).normal(size=(1, 1, 2, 2))
        out = conv2d(Tensor(x), Tensor(w)).data
        for i in range(3):
            for j in range(3):
                expected = (x[0, 0, i : i + 2, j : j + 2] * w[0, 0]).sum()
                assert np.isclose(out[0, 0, i, j], expected)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 1, 1)))
        bias = Tensor(np.array([1.0, -1.0]))
        out = conv2d(x, w, bias)
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], -1.0)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), ((1, 2), (2, 1))])
    def test_gradients(self, stride, padding):
        x, w, b = make((2, 2, 5, 6)), make((3, 2, 3, 3), 1), make((3,), 2)
        gradient_check(
            lambda x, w, b: conv2d(x, w, b, stride=stride, padding=padding), [x, w, b]
        )


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_goes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == 4
        assert x.grad[0, 0, 1, 1] == 1.0

    def test_avg_pool_values(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        assert np.allclose(avg_pool2d(x, 2).data, 1.0)

    def test_avg_pool_grad(self):
        gradient_check(lambda x: avg_pool2d(x, 2, 1), [make((2, 3, 5, 5))])

    def test_max_pool_stride(self):
        out = max_pool2d(make((1, 1, 6, 6)), 2, stride=3)
        assert out.shape == (1, 1, 2, 2)


class TestIm2colCache:
    def test_repeated_shapes_hit_the_index_cache(self):
        from repro.autograd.functional import (
            clear_im2col_cache,
            im2col_cache_stats,
        )

        clear_im2col_cache()
        x = make((2, 3, 8, 8))
        w = make((4, 3, 3, 3), 1)
        first = conv2d(x, w, stride=1, padding=1)
        after_first = im2col_cache_stats()
        assert after_first["misses"] >= 1
        assert after_first["hits"] == 0
        second = conv2d(x, w, stride=1, padding=1)
        after_second = im2col_cache_stats()
        # Same (shape, kernel, stride): no new entries, pure hits.
        assert after_second["entries"] == after_first["entries"]
        assert after_second["misses"] == after_first["misses"]
        assert after_second["hits"] >= 1
        assert first.data.tobytes() == second.data.tobytes()

    def test_distinct_geometry_is_a_distinct_entry(self):
        from repro.autograd.functional import (
            clear_im2col_cache,
            im2col_cache_stats,
        )

        clear_im2col_cache()
        conv2d(make((1, 2, 6, 6)), make((3, 2, 3, 3), 1), stride=1, padding=1)
        entries = im2col_cache_stats()["entries"]
        conv2d(make((1, 2, 6, 6)), make((3, 2, 3, 3), 1), stride=2, padding=1)
        assert im2col_cache_stats()["entries"] == entries + 1

    def test_clear_resets_counters(self):
        from repro.autograd.functional import (
            clear_im2col_cache,
            im2col_cache_stats,
        )

        conv2d(make((1, 1, 5, 5)), make((1, 1, 3, 3), 1))
        clear_im2col_cache()
        stats = im2col_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0}


class TestPad2d:
    def test_values(self):
        out = pad2d(Tensor(np.ones((1, 1, 2, 2))), 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data.sum() == 4

    def test_grad(self):
        gradient_check(lambda x: pad2d(x, (1, 2)), [make((2, 2, 3, 3))])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(make((4, 7)), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_stability_with_large_logits(self):
        out = softmax(Tensor([[1000.0, 1000.0]]))
        assert np.allclose(out.data, 0.5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = make((3, 5))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    @pytest.mark.parametrize("axis", [0, 1, -1])
    def test_gradients(self, axis):
        gradient_check(lambda x: softmax(x, axis=axis), [make((3, 4))])
        gradient_check(lambda x: log_softmax(x, axis=axis), [make((3, 4), 1)])


class TestEmbedding:
    def test_lookup_values(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3))
        out = embedding_lookup(weight, np.array([2, 0]))
        assert np.allclose(out.data[0], [6, 7, 8])

    def test_duplicate_indices_accumulate_grads(self):
        weight = Tensor(np.zeros((4, 2)), requires_grad=True)
        embedding_lookup(weight, np.array([1, 1, 2])).sum().backward()
        assert np.allclose(weight.grad[1], [2.0, 2.0])
        assert np.allclose(weight.grad[2], [1.0, 1.0])

    def test_grad_check_2d_indices(self):
        weight = make((6, 4))
        idx = np.array([[0, 5], [3, 3]])
        gradient_check(lambda w: embedding_lookup(w, idx), [weight])
