"""Two-stage baselines: proposals, region features, matchers, pipeline."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import REFCOCO, build_dataset
from repro.detection import iou_matrix
from repro.twostage import (
    ListenerMatcher,
    RegionEncoder,
    RPNProposer,
    SegmentationProposer,
    SpeakerScorer,
    TwoStageGrounder,
    crop_and_resize,
    spatial_features,
    train_listener,
    train_rpn,
    train_speaker,
)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(REFCOCO.scaled(0.04))


@pytest.fixture(scope="module")
def matcher_kwargs(dataset):
    return dict(embed_dim=12, max_query_length=dataset.max_query_length)


class TestRegions:
    def test_crop_shape(self, dataset):
        image = dataset["val"][0].image
        crop = crop_and_resize(image, np.array([5.0, 5.0, 25.0, 20.0]), (16, 16))
        assert crop.shape == (3, 16, 16)

    def test_crop_clips_out_of_bounds(self, dataset):
        image = dataset["val"][0].image
        crop = crop_and_resize(image, np.array([-10.0, -10.0, 200.0, 200.0]), (8, 8))
        assert crop.shape == (3, 8, 8)

    def test_spatial_features(self):
        feats = spatial_features(np.array([[0.0, 0.0, 36.0, 24.0]]), 48, 72)
        assert feats.shape == (1, 5)
        assert np.isclose(feats[0, 4], 36 * 24 / (48 * 72))

    def test_region_encoder_shapes(self, dataset):
        encoder = RegionEncoder(embed_dim=12, backbone="tiny")
        image = dataset["val"][0].image
        boxes = np.array([[0.0, 0.0, 20.0, 20.0], [10.0, 10.0, 40.0, 30.0]])
        out = encoder(image, boxes)
        assert out.shape == (2, 12)


class TestSegmentationProposer:
    def test_finds_objects(self, dataset):
        proposer = SegmentationProposer(quality=1.0, rng=np.random.default_rng(0))
        hits = []
        for sample in dataset["val"]:
            proposals = proposer.propose(sample.image)
            hits.append(iou_matrix(proposals.boxes, sample.target_box[None]).max() > 0.4)
        assert np.mean(hits) >= 0.5

    def test_lower_quality_lowers_recall(self, dataset):
        # Averaged over proposer seeds and the larger train split: a
        # single-seed measurement on the 4-sample val split swings by
        # 0.25 per flipped sample, drowning the quality effect in noise.
        def recall(quality, seed):
            proposer = SegmentationProposer(quality=quality, rng=np.random.default_rng(seed))
            return np.mean([
                iou_matrix(proposer.propose(s.image).boxes, s.target_box[None]).max() > 0.5
                for s in dataset["train"]
            ])

        high = np.mean([recall(1.0, seed) for seed in range(5)])
        low = np.mean([recall(0.3, seed) for seed in range(5)])
        assert high >= low - 0.15

    def test_respects_max_proposals(self, dataset):
        proposer = SegmentationProposer(max_proposals=5, rng=np.random.default_rng(0))
        assert len(proposer.propose(dataset["val"][0].image)) <= 5

    def test_quality_validation(self):
        with pytest.raises(ValueError):
            SegmentationProposer(quality=0.0)

    def test_blank_image_fallback(self):
        proposer = SegmentationProposer(rng=np.random.default_rng(0))
        blank = np.full((3, 48, 72), 0.1)
        proposals = proposer.propose(blank)
        assert len(proposals) >= 1


class TestRPN:
    def test_propose_shapes(self, dataset):
        rpn = RPNProposer(backbone="tiny", max_proposals=7)
        proposals = rpn.propose(dataset["val"][0].image)
        assert proposals.boxes.shape[1] == 4
        assert len(proposals) <= 7

    def test_training_reduces_loss(self, dataset):
        rpn = RPNProposer(backbone="tiny")
        losses = train_rpn(rpn, dataset["train"], steps=12, batch_size=4)
        assert np.mean(losses[:4]) > np.mean(losses[-4:])


class TestListener:
    def test_scores_shape(self, dataset, matcher_kwargs):
        listener = ListenerMatcher(dataset.vocab, **matcher_kwargs)
        sample = dataset["val"][0]
        proposer = SegmentationProposer(rng=np.random.default_rng(0))
        proposals = proposer.propose(sample.image)
        ids, mask = dataset.vocab.encode(sample.tokens, listener.max_query_length)
        scores = listener(sample.image, proposals, ids, mask)
        assert scores.shape == (len(proposals),)

    def test_training_runs_and_reduces_loss(self, dataset, matcher_kwargs):
        listener = ListenerMatcher(dataset.vocab, **matcher_kwargs)
        proposer = SegmentationProposer(quality=1.0, rng=np.random.default_rng(1))
        losses = train_listener(listener, dataset["train"], proposer, steps=40)
        assert losses, "expected at least one valid training step"
        assert np.mean(losses[-5:]) <= np.mean(losses[:5]) + 0.1


class TestSpeaker:
    def test_log_likelihoods_shape(self, dataset, matcher_kwargs):
        speaker = SpeakerScorer(dataset.vocab, **matcher_kwargs)
        sample = dataset["val"][0]
        boxes = np.array([[0.0, 0.0, 20.0, 20.0], [5.0, 5.0, 30.0, 30.0]])
        ids, mask = dataset.vocab.encode(sample.tokens, speaker.max_query_length)
        scores = speaker.log_likelihoods(sample.image, boxes, ids, mask)
        assert scores.shape == (2,)
        assert np.all(scores.data <= 0.0)  # log probabilities

    def test_training_reduces_loss(self, dataset, matcher_kwargs):
        speaker = SpeakerScorer(dataset.vocab, **matcher_kwargs)
        losses = train_speaker(speaker, dataset["train"], steps=30)
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_mmi_margin_runs(self, dataset, matcher_kwargs):
        speaker = SpeakerScorer(dataset.vocab, **matcher_kwargs)
        losses = train_speaker(speaker, dataset["train"], steps=5, mmi_margin=0.2)
        assert len(losses) == 5


class TestPipeline:
    def test_ground_batch_protocol(self, dataset, matcher_kwargs):
        listener = ListenerMatcher(dataset.vocab, **matcher_kwargs)
        proposer = SegmentationProposer(rng=np.random.default_rng(2))
        grounder = TwoStageGrounder(proposer, {"listener": listener})
        boxes = grounder(dataset["val"][:3])
        assert boxes.shape == (3, 4)

    def test_requires_matcher(self, dataset):
        with pytest.raises(ValueError):
            TwoStageGrounder(SegmentationProposer(), {})

    def test_timing_fields_recorded(self, dataset, matcher_kwargs):
        listener = ListenerMatcher(dataset.vocab, **matcher_kwargs)
        grounder = TwoStageGrounder(
            SegmentationProposer(rng=np.random.default_rng(3)), {"listener": listener}
        )
        grounder.ground_sample(dataset["val"][0])
        assert grounder.last_proposal_seconds > 0
        assert grounder.last_matching_seconds > 0
        assert grounder.proposal_time(dataset["val"][0]) > 0

    def test_ensemble_name(self, dataset, matcher_kwargs):
        listener = ListenerMatcher(dataset.vocab, **matcher_kwargs)
        speaker = SpeakerScorer(dataset.vocab, **matcher_kwargs)
        grounder = TwoStageGrounder(
            SegmentationProposer(), {"speaker": speaker, "listener": listener}
        )
        assert grounder.name == "speaker+listener"

    def test_stage_spans_recorded(self, dataset, matcher_kwargs):
        from repro.obs import collect_spans

        listener = ListenerMatcher(dataset.vocab, **matcher_kwargs)
        grounder = TwoStageGrounder(
            SegmentationProposer(rng=np.random.default_rng(5)),
            {"listener": listener},
        )
        with collect_spans() as spans:
            grounder.ground_sample(dataset["val"][0])
        assert spans.calls.get("twostage.propose") == 1
        assert spans.calls.get("twostage.match") == 1

    def test_matching_builds_no_grad_tensors(self, dataset, matcher_kwargs):
        from tests.conftest import record_grad_children

        listener = ListenerMatcher(dataset.vocab, **matcher_kwargs)
        grounder = TwoStageGrounder(
            SegmentationProposer(rng=np.random.default_rng(6)),
            {"listener": listener},
        )
        with record_grad_children() as tracked:
            grounder.ground_sample(dataset["val"][0])
        assert tracked == [], (
            f"two-stage inference allocated {len(tracked)} grad-tracked tensors"
        )
