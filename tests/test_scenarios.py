"""Scenario registry, workload generators, oracle serving, trace mixes."""

import dataclasses
import faulthandler

import numpy as np
import pytest

from repro.core import GroundingResponse, YolloConfig, YolloModel
from repro.core.response import responses_equal
from repro.data.scenes import Scene, SceneObject
from repro.runtime import CheckpointManager
from repro.scenarios import (
    DrivingConstraints,
    OracleRankedGrounder,
    UnknownScenarioError,
    answer_table,
    available_scenarios,
    available_trace_mixes,
    build_oracle_grounder,
    build_trace_mix,
    ego_distance,
    ego_side,
    get_scenario,
    get_trace_mix,
    ranked_answer,
    train_weak_model,
)
from repro.serve import FleetConfig, FleetRouter, ReplicaSpec, ServeEngine, run_soak
from repro.serve.cache import image_digest
from repro.text.vocab import Vocabulary
from repro.utils.seeding import spawn_rng


@pytest.fixture(scope="module")
def driving_samples():
    return get_scenario("driving").eval_samples(6)


@pytest.fixture(scope="module")
def crowded_samples():
    return get_scenario("crowded").eval_samples(10)


@pytest.fixture(scope="module")
def weak_splits():
    return get_scenario("weak").build_splits(6)


@pytest.fixture(scope="module")
def compositional_samples():
    return get_scenario("compositional").eval_samples(8)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_three_scenarios_registered(self):
        assert set(available_scenarios()) >= {
            "driving", "crowded", "weak", "compositional"}

    def test_trace_mixes_registered(self):
        assert set(available_trace_mixes()) >= {
            "driving", "crowded", "weak", "mixed", "compositional"}
        # Compositional is its own mix; "mixed" keeps its original blend.
        assert set(get_trace_mix("mixed").weights) == {
            "driving", "crowded", "weak"}
        assert set(get_trace_mix("compositional").weights) == {
            "compositional"}

    def test_unknown_scenario_lists_registry(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            get_scenario("nope")
        message = str(excinfo.value)
        assert "'nope'" in message
        for name in available_scenarios():
            assert name in message

    def test_unknown_trace_mix_lists_registry(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            get_trace_mix("nope")
        assert "mixed" in str(excinfo.value)

    def test_unknown_error_is_a_key_error(self):
        # Callers that catch KeyError (dict-style lookups) keep working.
        with pytest.raises(KeyError):
            get_scenario("nope")


# ----------------------------------------------------------------------
# Determinism: same seed -> bit-identical workloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["driving", "crowded", "weak",
                                  "compositional"])
def test_scenario_builds_are_bit_identical(name):
    scenario = get_scenario(name)
    first = scenario.build_splits(3)
    second = scenario.build_splits(3)
    assert set(first) == set(second)
    for split in first:
        assert len(first[split]) == len(second[split])
        for a, b in zip(first[split], second[split]):
            assert a.query == b.query
            assert a.query_type == b.query_type
            assert a.scenario == name
            assert a.image.tobytes() == b.image.tobytes()
            assert np.asarray(a.all_target_boxes).tobytes() == \
                np.asarray(b.all_target_boxes).tobytes()
            assert a.target_index == b.target_index


# ----------------------------------------------------------------------
# Driving scenario
# ----------------------------------------------------------------------
class TestDriving:
    def test_ego_geometry(self):
        scene = Scene(height=64, width=64, objects=[
            SceneObject("car", "red", np.array([2.0, 2.0, 12.0, 8.0])),
            SceneObject("car", "blue", np.array([50.0, 50.0, 60.0, 56.0])),
        ])
        left, right = scene.objects
        assert ego_side(left, scene) == "left"
        assert ego_side(right, scene) == "right"
        assert ego_distance(right, scene) < ego_distance(left, scene)
        centred = SceneObject("cone", "red", np.array([30.0, 0.0, 34.0, 4.0]))
        assert ego_side(centred, scene) is None

    def test_resolve_ordinal_by_ego_distance(self):
        # Three cars stacked in depth on the right; "second" must pick
        # the middle one, and an out-of-range ordinal resolves to [].
        scene = Scene(height=64, width=64, objects=[
            SceneObject("car", "red", np.array([40.0, 50.0, 50.0, 58.0])),
            SceneObject("car", "blue", np.array([40.0, 30.0, 50.0, 38.0])),
            SceneObject("car", "green", np.array([40.0, 6.0, 50.0, 14.0])),
        ])
        second = DrivingConstraints(category="car", ordinal=2).resolve(scene)
        assert [o.color for o in second] == ["blue"]
        assert DrivingConstraints(category="car", ordinal=4).resolve(scene) == []

    def test_resolve_relation_needs_unique_anchor(self):
        scene = Scene(height=64, width=64, objects=[
            SceneObject("car", "red", np.array([10.0, 40.0, 20.0, 48.0])),
            SceneObject("truck", "blue", np.array([40.0, 30.0, 54.0, 40.0])),
            SceneObject("car", "green", np.array([10.0, 6.0, 20.0, 14.0])),
        ])
        past = DrivingConstraints(
            category="car", relation="past",
            anchor_category="truck").resolve(scene)
        assert [o.color for o in past] == ["green"]
        # Two trucks -> ambiguous anchor -> no referent.
        scene.objects.append(
            SceneObject("truck", "blue", np.array([2.0, 2.0, 16.0, 12.0])))
        assert DrivingConstraints(
            category="car", relation="past",
            anchor_category="truck").resolve(scene) == []

    def test_eval_samples_are_verified_single_referents(self, driving_samples):
        assert len(driving_samples) == 12  # two per scene
        for sample in driving_samples:
            assert sample.query_type == "single"
            assert sample.scenario == "driving"
            assert sample.all_target_boxes.shape == (1, 4)
            assert np.array_equal(sample.all_target_boxes[0],
                                  sample.target_box)
            target = sample.scene.objects[sample.target_index]
            assert np.array_equal(target.box, sample.target_box)
            assert sample.query.startswith("the ")

    def test_driving_categories_render(self, driving_samples):
        # Scenes contain the new driving glyphs and render non-blank.
        categories = {o.category for s in driving_samples
                      for o in s.scene.objects}
        assert categories <= {"car", "truck", "person", "cone"}
        assert any(s.image.std() > 0 for s in driving_samples)


# ----------------------------------------------------------------------
# Crowded scenario
# ----------------------------------------------------------------------
class TestCrowded:
    def test_emits_all_three_query_types(self, crowded_samples):
        kinds = {s.query_type for s in crowded_samples}
        assert kinds == {"single", "multi", "no_target"}

    def test_scenes_are_dense(self, crowded_samples):
        for sample in crowded_samples:
            assert len(sample.scene.objects) >= 8

    def test_no_target_queries_are_verified_absent(self, crowded_samples):
        absent = [s for s in crowded_samples if s.is_no_target]
        assert absent
        for sample in absent:
            assert sample.all_target_boxes.shape == (0, 4)
            assert sample.target_index == -1
            # The queried (color, category) pair must truly be absent.
            words = sample.query.split()
            color, category = words[-2], words[-1]
            assert not any(o.category == category and o.color == color
                           for o in sample.scene.objects)

    def test_multi_queries_rank_all_referents_by_area(self, crowded_samples):
        multi = [s for s in crowded_samples if s.query_type == "multi"]
        assert multi
        for sample in multi:
            boxes = sample.all_target_boxes
            assert len(boxes) >= 2
            areas = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
            assert np.all(np.diff(areas) <= 1e-9)  # non-increasing
            assert np.array_equal(sample.target_box, boxes[0])


# ----------------------------------------------------------------------
# Compositional scenario
# ----------------------------------------------------------------------
class TestCompositional:
    def test_emits_all_three_query_types(self, compositional_samples):
        kinds = {s.query_type for s in compositional_samples}
        assert kinds == {"single", "multi", "no_target"}
        assert all(s.scenario == "compositional"
                   for s in compositional_samples)

    def test_every_query_parses_non_trivially(self, compositional_samples):
        from repro.lang import parse

        for sample in compositional_samples:
            tree = parse(sample.query)
            assert not tree.is_trivial, sample.query

    def test_resolution_matches_oracle_boxes(self, compositional_samples):
        from repro.lang import parse, resolve_tree

        for sample in compositional_samples:
            resolved = resolve_tree(parse(sample.query), sample.scene)
            assert len(resolved) == len(sample.all_target_boxes), \
                sample.query
            for obj, box in zip(resolved, sample.all_target_boxes):
                assert np.allclose(obj.box, box)

    def test_no_target_queries_use_anaphora(self, compositional_samples):
        from repro.lang import parse

        absent = [s for s in compositional_samples if s.is_no_target]
        assert absent
        for sample in absent:
            tree = parse(sample.query)
            assert tree.num_sentences >= 2
            assert any(e.pronoun is not None and e.antecedent is not None
                       for e in tree.entities), sample.query
            assert sample.all_target_boxes.shape == (0, 4)
            assert sample.target_index == -1

    def test_nesting_reaches_depth_two(self, compositional_samples):
        from repro.lang import parse

        depths = {parse(s.query).depth() for s in compositional_samples}
        assert max(depths) >= 2

    def test_single_targets_are_consistent(self, compositional_samples):
        singles = [s for s in compositional_samples
                   if s.query_type == "single"]
        assert singles
        for sample in singles:
            target = sample.scene.objects[sample.target_index]
            assert np.array_equal(target.box, sample.target_box)


# ----------------------------------------------------------------------
# Oracle answers and the ranked-response protocol
# ----------------------------------------------------------------------
class TestOracle:
    def test_ranked_answer_shapes(self, crowded_samples):
        for sample in crowded_samples:
            boxes, scores, not_found = ranked_answer(sample)
            assert len(boxes) == len(scores)
            assert not_found == sample.is_no_target
            if len(scores):
                assert scores[0] == 1.0
                assert np.all(np.diff(scores) <= 0)

    def test_oracle_serves_answer_table(self, crowded_samples):
        grounder = OracleRankedGrounder(
            answer_table(crowded_samples), latency=0.0, version=3.0)
        responses = grounder(crowded_samples[:4])
        for sample, response in zip(crowded_samples[:4], responses):
            assert isinstance(response, GroundingResponse)
            assert response.not_found == sample.is_no_target
            assert response.version == 3.0
            if not response.not_found:
                assert np.allclose(response.boxes,
                                   sample.all_target_boxes)

    def test_oracle_unknown_query_answers_not_found(self):
        grounder = OracleRankedGrounder({}, latency=0.0)
        sample = type("S", (), {"image": np.zeros((3, 4, 4)),
                                "query": "the missing thing"})()
        (response,) = grounder([sample])
        assert response.not_found and len(response) == 0

    def test_oracle_reload_roundtrip(self):
        grounder = build_oracle_grounder({}, latency=0.0, version=1.0)
        state = grounder.state_dict()
        state["version"] = np.array([2.0])
        grounder.load_state_dict(state)
        assert grounder.version == 2.0
        sample = type("S", (), {"image": np.zeros((3, 4, 4)),
                                "query": "q"})()
        (response,) = grounder([sample])
        assert response.version == 2.0


class TestEngineRankedProtocol:
    """The serving engine must cache ranked responses by value."""

    def test_cache_hit_replays_byte_identical_response(self, crowded_samples):
        sample = next(s for s in crowded_samples if not s.is_no_target)
        grounder = OracleRankedGrounder(
            answer_table(crowded_samples), latency=0.0)
        with ServeEngine(grounder, max_batch=2, max_wait=0.0) as engine:
            first = engine.ground(sample.image, sample.query)
            second = engine.ground(sample.image, sample.query)
            assert isinstance(first, GroundingResponse)
            assert responses_equal(first, second)
            # Mutating a served response must not corrupt the cache.
            first.boxes[:] = -1.0
            first.scores[:] = 0.0
            third = engine.ground(sample.image, sample.query)
            assert responses_equal(second, third)
            assert engine.stats().cache_hits >= 2

    def test_no_target_decision_survives_the_cache(self, crowded_samples):
        sample = next(s for s in crowded_samples if s.is_no_target)
        grounder = OracleRankedGrounder(
            answer_table(crowded_samples), latency=0.0)
        with ServeEngine(grounder, max_batch=2, max_wait=0.0) as engine:
            for _ in range(2):
                response = engine.ground(sample.image, sample.query)
                assert response.not_found and len(response) == 0


class TestPredictRanked:
    def test_model_emits_ranked_responses(self):
        from repro.utils import seed_everything

        seed_everything(23)
        vocab = Vocabulary.from_corpus([["the", "red", "car"]])
        cfg = YolloConfig(
            backbone="tiny", d_model=12, d_rel=16, ffn_hidden=16,
            head_hidden=16, num_rel2att=2, max_query_length=4,
        )
        model = YolloModel(cfg, vocab_size=len(vocab)).eval()
        rng = spawn_rng("predict-ranked-test")
        images = rng.random(
            (2, 3, cfg.image_height, cfg.image_width))
        ids, mask = vocab.encode(["the", "red", "car"], 4)
        token_ids = np.stack([ids, ids])
        token_mask = np.stack([mask, mask])

        responses = model.predict_ranked(
            images, token_ids, token_mask, top_k=3)
        assert len(responses) == 2
        for response in responses:
            assert isinstance(response, GroundingResponse)
            assert 1 <= len(response) <= 3
            assert np.all(np.diff(response.scores) <= 1e-12)
            assert np.all(response.boxes[:, 0] <= response.boxes[:, 2])
            assert np.all(response.boxes[:, [0, 2]] <= cfg.image_width)
            assert np.all(response.boxes[:, [1, 3]] <= cfg.image_height)
            assert not response.not_found

        # An unclearable threshold forces the explicit absent decision.
        strict = model.predict_ranked(
            images, token_ids, token_mask, top_k=3,
            not_found_threshold=1.1)
        assert all(r.not_found for r in strict)

        with pytest.raises(ValueError):
            model.predict_ranked(images, token_ids, token_mask, top_k=0)


# ----------------------------------------------------------------------
# Weak scenario
# ----------------------------------------------------------------------
class TestWeak:
    def test_train_split_carries_no_box_supervision(self, weak_splits):
        assert len(weak_splits["train"]) == 12
        for sample in weak_splits["train"]:
            assert sample.query_type == "weak_pair"
            assert sample.target_index == -1
            assert np.array_equal(sample.target_box, np.zeros(4))
            assert sample.all_target_boxes.shape == (0, 4)

    def test_training_rejects_box_supervised_samples(
            self, weak_splits, driving_samples):
        vocab = Vocabulary.from_corpus(
            [s.tokens for s in weak_splits["train"]])
        with pytest.raises(ValueError, match="image-level pairs only"):
            train_weak_model(list(driving_samples[:4]), vocab, steps=1)

    def test_contrastive_training_reduces_loss(self, weak_splits):
        train = weak_splits["train"]
        vocab = Vocabulary.from_corpus([s.tokens for s in train])
        result = train_weak_model(
            train, vocab, steps=15, rng=spawn_rng("weak-test-train"))
        losses = result["losses"]
        assert len(losses) == 15
        assert losses[-1] < losses[0]

    def test_pointing_accuracy_bounds(self, weak_splits):
        from repro.scenarios import pointing_accuracy

        train, eval_split = weak_splits["train"], weak_splits["eval"]
        vocab = Vocabulary.from_corpus(
            [s.tokens for s in train + eval_split])
        result = train_weak_model(
            train, vocab, steps=5, rng=spawn_rng("weak-test-point"))
        accuracy = pointing_accuracy(
            result["model"], eval_split, vocab, result["max_length"])
        assert 0.0 <= accuracy <= 1.0


# ----------------------------------------------------------------------
# Trace mixes
# ----------------------------------------------------------------------
class TestTraceMix:
    def test_mixed_trace_tags_and_answers(self):
        trace, answers = build_trace_mix(
            "mixed", num_requests=60, rate_qps=500.0,
            scenes_per_scenario=3, rng=spawn_rng("trace-test"))
        assert len(trace) == 60
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)
        assert {t.scenario for t in trace} <= {"driving", "crowded", "weak"}
        absent = [t for t in trace if t.expect_not_found]
        for request in trace:
            key = (image_digest(request.image), request.query)
            assert key in answers
            _, _, not_found = answers[key]
            assert not_found == request.expect_not_found
        assert absent, "a 60-request mixed trace should include no-target"

    def test_trace_is_deterministic(self):
        first, _ = build_trace_mix("crowded", num_requests=20, rate_qps=100.0,
                                   scenes_per_scenario=2)
        second, _ = build_trace_mix("crowded", num_requests=20, rate_qps=100.0,
                                    scenes_per_scenario=2)
        for a, b in zip(first, second):
            assert a.query == b.query and a.arrival == b.arrival
            assert a.scenario == b.scenario
            assert a.expect_not_found == b.expect_not_found

    def test_invalid_arguments_rejected(self):
        with pytest.raises(UnknownScenarioError):
            build_trace_mix("nope", num_requests=5, rate_qps=10.0)
        with pytest.raises(ValueError):
            build_trace_mix("mixed", num_requests=5, rate_qps=0.0)
        with pytest.raises(ValueError):
            build_trace_mix("mixed", num_requests=5, rate_qps=10.0,
                            repeat_fraction=1.5)


# ----------------------------------------------------------------------
# Fleet soak over a mixed trace (multi-process)
# ----------------------------------------------------------------------
@pytest.mark.dist
class TestFleetMixedSoak:
    @pytest.fixture(autouse=True)
    def _watchdog(self):
        faulthandler.dump_traceback_later(120.0, exit=True)
        yield
        faulthandler.cancel_dump_traceback_later()

    def test_soak_with_reload_keeps_no_target_correctness(self, tmp_path):
        trace, answers = build_trace_mix(
            "mixed", num_requests=40, rate_qps=200.0,
            scenes_per_scenario=3)
        spec = ReplicaSpec(
            builder=build_oracle_grounder,
            builder_kwargs={"answers": answers, "latency": 0.001},
            max_batch=8, cache_size=32)
        config = FleetConfig(replicas=2, max_queue=128,
                             default_deadline=30.0, router_cache=128)
        checkpoint = CheckpointManager(str(tmp_path)).save(
            {"version": np.array([2.0]), "bias": np.array([1.0])}, 1)

        with FleetRouter(spec, config) as router:
            assert router.wait_healthy(60.0)
            report = run_soak(
                router, trace, reload_at=20,
                reload_checkpoint=checkpoint,
                post_reload_check=lambda r: getattr(r, "version", None) == 2.0)
            router.wait_healthy(15.0)
            report = dataclasses.replace(report, stats=router.stats())

        assert report.lost == 0
        assert report.false_found == 0
        assert report.stale_served == 0
        assert report.no_target_requests == \
            sum(t.expect_not_found for t in trace)
        assert set(report.scenario_p99) <= {"driving", "crowded", "weak"}
        assert report.check(expected_replicas=2) == []
        rendered = report.render()
        assert "no-target" in rendered
