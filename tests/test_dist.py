"""Distributed runtime: flatten, sampler, collectives, bit-exactness.

The spawn-based integration tests are marked ``dist`` and run in the
default (tier-1) suite — they exercise the real multi-process path at
tiny scale.  Everything else runs in-process (threads over pipe
meshes), so protocol failures are cheap to provoke.
"""

import tempfile
import threading
from multiprocessing import Pipe, get_context

import numpy as np
import pytest

from repro.dist import (
    Collective,
    CollectiveTimeout,
    DistConfig,
    PeerLostError,
    ProtocolError,
    ShardedSampler,
    TensorManifest,
    WorkerGroup,
    WorkerSpec,
    build_pretrain_task,
    build_yollo_task,
    flatten_tensors,
    owned_slots,
    slot_bounds,
    unflatten_tensors,
    warm_backbone,
)


# ----------------------------------------------------------------------
# Gradient flattening
# ----------------------------------------------------------------------
def test_flatten_round_trip_views():
    arrays = [
        np.arange(6, dtype=np.float64).reshape(2, 3),
        np.full((4,), 2.0),
        np.zeros((1, 2, 2)),
    ]
    flat, manifest = flatten_tensors(arrays)
    assert flat.size == manifest.total_size == 6 + 4 + 4
    back = unflatten_tensors(flat, manifest)
    for original, view in zip(arrays, back):
        assert np.array_equal(original, view)
    # The unflattened tensors are views: mutating the flat buffer in
    # place (what clip_grad_norm does) must propagate.
    flat *= 0.5
    assert np.array_equal(back[0], arrays[0] * 0.5)


def test_flatten_fills_missing_grads_with_zeros():
    templates = [np.ones((2, 2)), np.ones(3)]
    flat, manifest = flatten_tensors(
        [None, np.arange(3, dtype=np.float64)], like=templates
    )
    assert np.array_equal(flat[:4], np.zeros(4))
    assert np.array_equal(flat[4:], [0.0, 1.0, 2.0])
    assert manifest.shapes[0] == (2, 2)


def test_manifest_validate_rejects_wrong_buffer():
    _, manifest = flatten_tensors([np.ones(3)])
    with pytest.raises(ValueError):
        manifest.validate(np.ones(4))


# ----------------------------------------------------------------------
# Sharded sampling
# ----------------------------------------------------------------------
def test_slot_bounds_partition_is_balanced_and_contiguous():
    for total in (0, 1, 7, 16):
        for parts in (1, 3, 4, 5):
            bounds = slot_bounds(total, parts)
            assert bounds[0][0] == 0 and bounds[-1][1] == total
            sizes = [hi - lo for lo, hi in bounds]
            assert sum(sizes) == total
            assert max(sizes) - min(sizes) <= 1
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo


def test_owned_slots_cover_all_slots_disjointly():
    for world in (1, 2, 3, 4):
        seen = [s for r in range(world) for s in owned_slots(r, world, 4)]
        assert sorted(seen) == list(range(4))


def test_sharded_sampler_is_rank_invariant_and_covers_epoch():
    a = ShardedSampler(num_samples=10, batch_size=4, grad_shards=4)
    b = ShardedSampler(num_samples=10, batch_size=4, grad_shards=4)
    per_epoch = a.iterations_per_epoch()
    assert per_epoch == 3  # ceil(10 / 4)
    epoch_indices = []
    for iteration in range(per_epoch):
        slots_a = a.slots(iteration)
        slots_b = b.slots(iteration)
        # Two independent sampler instances (≈ two ranks) agree exactly.
        for x, y in zip(slots_a, slots_b):
            assert np.array_equal(x, y)
        weights = a.slot_weights(iteration)
        assert abs(sum(weights) - 1.0) < 1e-12
        epoch_indices.extend(int(i) for slot in slots_a for i in slot)
    assert sorted(epoch_indices) == list(range(10))
    # Different epochs shuffle differently.
    assert not np.array_equal(a.epoch_order(0), a.epoch_order(1))


# ----------------------------------------------------------------------
# Collective layer (thread-based pipe meshes)
# ----------------------------------------------------------------------
def _mesh(world):
    conns = {rank: {} for rank in range(world)}
    for i in range(world):
        for j in range(i + 1, world):
            a, b = Pipe(duplex=True)
            conns[i][j] = a
            conns[j][i] = b
    return conns


def _run_ranks(world, fn, timeout=30.0):
    conns = _mesh(world)
    results = {}
    errors = []

    def runner(rank):
        collective = Collective(rank, world, conns[rank], timeout=10.0)
        try:
            results[rank] = fn(collective)
        except BaseException as exc:  # surfaced below
            errors.append(exc)
        finally:
            collective.close()

    threads = [
        threading.Thread(target=runner, args=(rank,)) for rank in range(world)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    if errors:
        raise errors[0]
    return results


def test_collective_broadcast_gather_barrier():
    def body(c):
        got = c.broadcast({"weights": c.rank} if c.rank == 1 else None, root=1)
        c.barrier()
        gathered = c.gather(c.rank * 2, root=0)
        everyone = c.all_gather(c.rank)
        return got, gathered, everyone

    results = _run_ranks(3, body)
    for rank in range(3):
        got, gathered, everyone = results[rank]
        assert got == {"weights": 1}
        assert everyone == [0, 1, 2]
        assert gathered == ([0, 2, 4] if rank == 0 else None)


@pytest.mark.parametrize("world,size", [(2, 8), (3, 10), (4, 7)])
def test_ring_all_reduce_matches_numpy_sum(world, size):
    locals_ = [
        np.linspace(rank, rank + 1, size) ** 2 for rank in range(world)
    ]
    results = _run_ranks(world, lambda c: c.all_reduce(locals_[c.rank]))
    expected = np.sum(locals_, axis=0)
    reference = results[0]
    for rank in range(world):
        assert np.allclose(results[rank], expected)
        # Every rank holds the *bit-identical* reduction.
        assert np.array_equal(results[rank], reference)


def test_ring_all_reduce_is_deterministic_run_to_run():
    locals_ = [np.random.default_rng(rank).normal(size=33) for rank in range(3)]
    first = _run_ranks(3, lambda c: c.all_reduce(locals_[c.rank]))
    second = _run_ranks(3, lambda c: c.all_reduce(locals_[c.rank]))
    assert np.array_equal(first[0], second[0])


def test_collective_timeout_raises():
    conns = _mesh(2)
    lonely = Collective(1, 2, conns[1], timeout=0.1)
    with pytest.raises(CollectiveTimeout) as excinfo:
        lonely.broadcast(None, root=0)  # rank 0 never sends
    assert excinfo.value.peer == 0


def test_dead_peer_raises_peer_lost():
    conns = _mesh(2)
    conns[0][1].close()
    lonely = Collective(1, 2, conns[1], timeout=5.0)
    with pytest.raises(PeerLostError) as excinfo:
        lonely.broadcast(None, root=0)
    assert excinfo.value.peer == 0


def test_desynchronised_op_raises_protocol_error():
    conns = _mesh(2)
    conns[0][1].send(("bogus-op", 1, None))
    lonely = Collective(1, 2, conns[1], timeout=5.0)
    with pytest.raises(ProtocolError):
        lonely.broadcast(None, root=0)


def test_all_reduce_rejects_mismatched_sizes():
    sizes = {0: 4, 1: 5}
    with pytest.raises(ProtocolError):
        _run_ranks(2, lambda c: c.all_reduce(np.ones(sizes[c.rank])))


# ----------------------------------------------------------------------
# Flat-bucket gradient clipping (equivalence with the per-tensor path)
# ----------------------------------------------------------------------
def test_clip_grad_norm_flat_matches_per_tensor():
    from repro.autograd import Tensor
    from repro.optim import clip_grad_norm

    rng = np.random.default_rng(3)

    def make_params():
        params = []
        for shape in [(4, 3), (7,), (2, 2, 2)]:
            p = Tensor(np.zeros(shape), requires_grad=True)
            p.grad = rng.normal(size=shape) * 10
            params.append(p)
        return params

    reference = make_params()
    rng = np.random.default_rng(3)
    flat_params = make_params()

    clip_grad_norm(reference, max_norm=1.0)

    grads = [p.grad for p in flat_params]
    flat, manifest = flatten_tensors(grads)
    for param, view in zip(flat_params, unflatten_tensors(flat, manifest)):
        param.grad = view
    clip_grad_norm(flat_params, max_norm=1.0, flat=flat)

    for ref, got in zip(reference, flat_params):
        assert np.allclose(ref.grad, got.grad, rtol=1e-12, atol=0)
    total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in flat_params))
    assert total <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Spawn integration (real worker processes)
# ----------------------------------------------------------------------
def _assert_states_equal(a, b, path=""):
    if isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys differ"
        for key in a:
            _assert_states_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length differs"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_states_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert np.array_equal(a, np.asarray(b)), f"{path}: arrays differ"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def _pretrain_spec(**overrides):
    base = dict(
        builder=build_pretrain_task,
        task_kwargs=dict(backbone="tiny", steps=3, grad_shards=4,
                         batch_size=8, lr=1e-3),
        dist=DistConfig(grad_shards=4, timeout=60.0),
        seed=0,
        warmup=warm_backbone,
        warmup_kwargs=dict(name="tiny", pretrain_steps=1),
    )
    base.update(overrides)
    return WorkerSpec(**base)


@pytest.mark.dist
def test_pretrain_bit_exact_across_world_sizes():
    states = {}
    for world in (1, 2):
        report = WorkerGroup(_pretrain_spec(), world_size=world).run()
        assert report.generations == 1
        states[world] = report.final_state
    _assert_states_equal(states[1], states[2])


@pytest.mark.dist
def test_yollo_training_bit_exact_1_2_4_workers():
    kwargs = dict(dataset_name="RefCOCO", scale=0.05, grad_shards=4,
                  iterations=3, eval_every=0, backbone="tiny",
                  pretrain_steps=1, config_overrides=dict(batch_size=8))
    states = {}
    for world in (1, 2, 4):
        spec = WorkerSpec(
            builder=build_yollo_task, task_kwargs=kwargs,
            dist=DistConfig(grad_shards=4, timeout=120.0), seed=0,
            warmup=warm_backbone,
            warmup_kwargs=dict(name="tiny", pretrain_steps=1),
        )
        report = WorkerGroup(spec, world_size=world).run()
        states[world] = report.final_state
    _assert_states_equal(states[1], states[2])
    _assert_states_equal(states[1], states[4])


@pytest.mark.dist
def test_worker_crash_triggers_rebuild_and_completion():
    from repro.runtime.faults import FaultPlan

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        spec = _pretrain_spec(
            task_kwargs=dict(backbone="tiny", steps=4, grad_shards=4,
                             batch_size=8, lr=1e-3),
            dist=DistConfig(grad_shards=4, timeout=30.0),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=1,
            fault_plan=FaultPlan(crash_at_iteration=2),
            fault_rank=1,
        )
        report = WorkerGroup(spec, world_size=2, max_rebuilds=2).run()
    assert report.generations == 2
    assert report.launched_world_size == 2
    assert report.world_size == 1  # finished at the reduced world size
    assert len(report.result["loss"]) == 4  # no step was lost

    # The crash-recovered trajectory matches an undisturbed 4-step run:
    # checkpoint/resume plus the rank-invariant slot decomposition make
    # the fault invisible to the final state.
    clean = WorkerGroup(
        _pretrain_spec(task_kwargs=dict(backbone="tiny", steps=4,
                                        grad_shards=4, batch_size=8,
                                        lr=1e-3)),
        world_size=1,
    ).run()
    _assert_states_equal(clean.final_state, report.final_state)


@pytest.mark.dist
def test_dist_metrics_flow_back_to_controller():
    report = WorkerGroup(_pretrain_spec(), world_size=2).run()
    assert len(report.rank_metrics) == 2
    merged = report.merged_metrics()
    snapshot = merged.snapshot()
    assert snapshot["dist.steps"] == 2 * 3  # both ranks step
    assert snapshot["dist.bytes_sent"] > 0
    assert ("dist.broadcast_seconds" in snapshot
            or "dist.allreduce_seconds" in snapshot)


def _spawn_probe(queue):
    import repro.dist as dist_module

    missing = [
        name for name in dist_module.__all__
        if not hasattr(dist_module, name)
    ]
    queue.put(missing)


@pytest.mark.dist
def test_public_api_importable_under_spawn():
    """Guard for satellite 5: repro.dist must stay spawn-safe."""
    context = get_context("spawn")
    queue = context.Queue()
    process = context.Process(target=_spawn_probe, args=(queue,))
    process.start()
    missing = queue.get(timeout=60)
    process.join(timeout=60)
    assert process.exitcode == 0
    assert missing == []
