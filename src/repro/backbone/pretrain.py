"""Synthetic-ImageNet pre-training for backbones.

The paper pre-trains its ResNet on ImageNet before grounding training.
Our stand-in task renders single-object scenes and trains the backbone
with two linear heads (category and colour classification) on globally
pooled features, so the trunk learns shape- and colour-selective filters
before it is fine-tuned inside YOLLO.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.data.render import render_scene
from repro.data.scenes import CATEGORIES, COLORS, Scene, SceneGenerator
from repro.nn import Linear, Module, softmax_cross_entropy
from repro.optim import Adam
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


class ClassificationHead(Module):
    """Global-max-pool features into category and colour logits.

    Max pooling (not average) is essential here: the labelled object
    covers a small fraction of the canvas, and averaging dilutes its
    activations into the background.
    """

    def __init__(self, in_channels: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.category_head = Linear(in_channels, len(CATEGORIES), rng=rng)
        self.color_head = Linear(in_channels, len(COLORS), rng=rng)

    def forward(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        pooled = features.max(axis=(2, 3))
        return self.category_head(pooled), self.color_head(pooled)


def _sample_classification_batch(
    generator: SceneGenerator, batch_size: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Render single-object images labelled by (category, colour)."""
    images: List[np.ndarray] = []
    categories = np.empty(batch_size, dtype=np.int64)
    colors = np.empty(batch_size, dtype=np.int64)
    for i in range(batch_size):
        category = CATEGORIES[int(rng.integers(0, len(CATEGORIES)))]
        scene = Scene(generator.height, generator.width)
        placed = generator._place_object(scene, category, rng)
        if placed is None:  # placement cannot fail on an empty canvas, but be safe
            continue
        scene.objects.append(placed)
        images.append(render_scene(scene, rng=rng))
        categories[i] = CATEGORIES.index(placed.category)
        colors[i] = COLORS.index(placed.color)
    return np.stack(images), categories[: len(images)], colors[: len(images)]


def pretrain_backbone(
    backbone: Module,
    steps: int = 60,
    batch_size: int = 16,
    lr: float = 1e-3,
    image_height: int = 48,
    image_width: int = 72,
    rng: Optional[np.random.Generator] = None,
    logger: Optional[ProgressLogger] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> Dict[str, List[float]]:
    """Train ``backbone`` on the synthetic classification task in place.

    Returns a history dict with per-step losses and accuracies; the
    classification heads are discarded, matching the paper's use of
    ImageNet weights.  With ``checkpoint_dir`` set the loop runs under a
    :class:`repro.runtime.TrainingSupervisor`: progress is checkpointed
    every ``checkpoint_every`` steps, anomalous steps are skipped, and
    ``resume=True`` continues a killed run from the newest checkpoint.
    """
    rng = rng if rng is not None else spawn_rng("backbone-pretrain")
    logger = logger or ProgressLogger("pretrain", enabled=False)
    generator = SceneGenerator(height=image_height, width=image_width, rng=rng)
    # The head must draw its initial weights from the pretrain's own
    # stream: pulling from the process-global generator here would shift
    # every later init for cache-miss runs only, making cold- and
    # warm-cache training runs diverge.
    head = ClassificationHead(backbone.out_channels, rng=rng)
    optimizer = Adam(backbone.parameters() + head.parameters(), lr=lr)

    history: Dict[str, List[float]] = {"loss": [], "category_acc": [], "color_acc": []}
    pending: Dict[str, float] = {}

    def forward_backward(step: int) -> float:
        images, categories, colors = _sample_classification_batch(
            generator, batch_size, rng
        )
        features = backbone(Tensor(images))
        cat_logits, color_logits = head(features)
        loss = softmax_cross_entropy(cat_logits, categories) + softmax_cross_entropy(
            color_logits, colors
        )
        optimizer.zero_grad()
        loss.backward()
        pending["category_acc"] = float(
            (cat_logits.data.argmax(axis=1) == categories).mean()
        )
        pending["color_acc"] = float(
            (color_logits.data.argmax(axis=1) == colors).mean()
        )
        return float(loss.data)

    def apply_update(step: int, loss_value: float) -> None:
        optimizer.step()
        history["loss"].append(loss_value)
        history["category_acc"].append(pending["category_acc"])
        history["color_acc"].append(pending["color_acc"])
        logger.periodic(
            f"step {step}/{steps} loss={loss_value:.3f} "
            f"cat={pending['category_acc']:.2f} color={pending['color_acc']:.2f}"
        )

    from repro.runtime import CallbackTask, TrainingSupervisor

    task = CallbackTask(
        total_iterations=steps,
        forward_backward=forward_backward,
        apply_update=apply_update,
        optimizer=optimizer,
        modules={"backbone": backbone, "head": head},
        rng=rng,
        fingerprint_data={
            "task": "backbone-pretrain",
            "steps": steps,
            "batch_size": batch_size,
            "lr": lr,
            "image": [image_height, image_width],
        },
        extra_state=lambda: {k: list(v) for k, v in history.items()},
        load_extra_state=lambda saved: history.update(
            {k: list(v) for k, v in saved.items()}
        ),
        result=lambda: history,
    )
    if checkpoint_dir is not None:
        TrainingSupervisor(
            task,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every or max(1, steps // 4),
            resume=resume,
            logger=logger,
        ).run()
    else:
        while task.iteration < task.total_iterations:
            task.apply_step(task.forward_backward())
    return history


def default_cache_dir() -> str:
    """Directory for cached pre-trained backbone weights."""
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro")
    )


def load_pretrained_backbone(
    name: str,
    steps: int = 600,
    image_height: int = 48,
    image_width: int = 72,
    cache_dir: Optional[str] = None,
    logger: Optional[ProgressLogger] = None,
):
    """Build a backbone preset with synthetic-ImageNet weights, cached.

    The first call for a given (preset, steps, size) trains and writes an
    ``.npz`` under the cache directory; later calls load it instantly.
    This mirrors downloading the paper's ImageNet checkpoint.
    """
    from repro.backbone.factory import build_backbone

    backbone = build_backbone(name)
    cache_dir = cache_dir or default_cache_dir()
    os.makedirs(cache_dir, exist_ok=True)
    cache_path = os.path.join(
        cache_dir, f"backbone-{name}-{steps}-{image_height}x{image_width}.npz"
    )
    if os.path.exists(cache_path):
        backbone.load(cache_path)
        return backbone
    # A killed pretrain resumes from its checkpoints instead of restarting;
    # the checkpoint directory is removed once the final weights are cached.
    checkpoint_dir = cache_path + ".ckpts"
    pretrain_backbone(
        backbone,
        steps=steps,
        image_height=image_height,
        image_width=image_width,
        rng=spawn_rng(f"backbone-pretrain-{name}"),
        logger=logger,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=max(1, steps // 4),
        resume=True,
    )
    backbone.save(cache_path)
    shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return backbone
