"""Synthetic-ImageNet pre-training for backbones.

The paper pre-trains its ResNet on ImageNet before grounding training.
Our stand-in task renders single-object scenes and trains the backbone
with two linear heads (category and colour classification) on globally
pooled features, so the trunk learns shape- and colour-selective filters
before it is fine-tuned inside YOLLO.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.data.render import render_scene
from repro.data.scenes import CATEGORIES, COLORS, Scene, SceneGenerator
from repro.nn import Linear, Module, softmax_cross_entropy
from repro.optim import Adam
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


class ClassificationHead(Module):
    """Global-max-pool features into category and colour logits.

    Max pooling (not average) is essential here: the labelled object
    covers a small fraction of the canvas, and averaging dilutes its
    activations into the background.
    """

    def __init__(self, in_channels: int):
        super().__init__()
        self.category_head = Linear(in_channels, len(CATEGORIES))
        self.color_head = Linear(in_channels, len(COLORS))

    def forward(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        pooled = features.max(axis=(2, 3))
        return self.category_head(pooled), self.color_head(pooled)


def _sample_classification_batch(
    generator: SceneGenerator, batch_size: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Render single-object images labelled by (category, colour)."""
    images: List[np.ndarray] = []
    categories = np.empty(batch_size, dtype=np.int64)
    colors = np.empty(batch_size, dtype=np.int64)
    for i in range(batch_size):
        category = CATEGORIES[int(rng.integers(0, len(CATEGORIES)))]
        scene = Scene(generator.height, generator.width)
        placed = generator._place_object(scene, category, rng)
        if placed is None:  # placement cannot fail on an empty canvas, but be safe
            continue
        scene.objects.append(placed)
        images.append(render_scene(scene, rng=rng))
        categories[i] = CATEGORIES.index(placed.category)
        colors[i] = COLORS.index(placed.color)
    return np.stack(images), categories[: len(images)], colors[: len(images)]


def pretrain_backbone(
    backbone: Module,
    steps: int = 60,
    batch_size: int = 16,
    lr: float = 1e-3,
    image_height: int = 48,
    image_width: int = 72,
    rng: Optional[np.random.Generator] = None,
    logger: Optional[ProgressLogger] = None,
) -> Dict[str, List[float]]:
    """Train ``backbone`` on the synthetic classification task in place.

    Returns a history dict with per-step losses and accuracies; the
    classification heads are discarded, matching the paper's use of
    ImageNet weights.
    """
    rng = rng if rng is not None else spawn_rng("backbone-pretrain")
    logger = logger or ProgressLogger("pretrain", enabled=False)
    generator = SceneGenerator(height=image_height, width=image_width, rng=rng)
    head = ClassificationHead(backbone.out_channels)
    optimizer = Adam(backbone.parameters() + head.parameters(), lr=lr)

    history: Dict[str, List[float]] = {"loss": [], "category_acc": [], "color_acc": []}
    for step in range(steps):
        images, categories, colors = _sample_classification_batch(generator, batch_size, rng)
        features = backbone(Tensor(images))
        cat_logits, color_logits = head(features)
        loss = softmax_cross_entropy(cat_logits, categories) + softmax_cross_entropy(
            color_logits, colors
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

        cat_acc = float((cat_logits.data.argmax(axis=1) == categories).mean())
        color_acc = float((color_logits.data.argmax(axis=1) == colors).mean())
        history["loss"].append(float(loss.data))
        history["category_acc"].append(cat_acc)
        history["color_acc"].append(color_acc)
        logger.periodic(
            f"step {step + 1}/{steps} loss={float(loss.data):.3f} "
            f"cat={cat_acc:.2f} color={color_acc:.2f}"
        )
    return history


def default_cache_dir() -> str:
    """Directory for cached pre-trained backbone weights."""
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro")
    )


def load_pretrained_backbone(
    name: str,
    steps: int = 600,
    image_height: int = 48,
    image_width: int = 72,
    cache_dir: Optional[str] = None,
    logger: Optional[ProgressLogger] = None,
):
    """Build a backbone preset with synthetic-ImageNet weights, cached.

    The first call for a given (preset, steps, size) trains and writes an
    ``.npz`` under the cache directory; later calls load it instantly.
    This mirrors downloading the paper's ImageNet checkpoint.
    """
    from repro.backbone.factory import build_backbone

    backbone = build_backbone(name)
    cache_dir = cache_dir or default_cache_dir()
    os.makedirs(cache_dir, exist_ok=True)
    cache_path = os.path.join(
        cache_dir, f"backbone-{name}-{steps}-{image_height}x{image_width}.npz"
    )
    if os.path.exists(cache_path):
        backbone.load(cache_path)
        return backbone
    pretrain_backbone(
        backbone,
        steps=steps,
        image_height=image_height,
        image_width=image_width,
        rng=spawn_rng(f"backbone-pretrain-{name}"),
        logger=logger,
    )
    backbone.save(cache_path)
    return backbone
