"""Image backbones: residual (ResNet-style C4) and plain (VGG-style) trunks.

``MiniResNet`` mirrors the paper's ResNet-50-C4 feature extractor at
laptop scale: a strided stem followed by residual stages, truncated at
the stage whose output feeds the grounding head.  ``build_backbone``
exposes named presets including the deeper ResNet-101 analogue used in
the paper's Table 5 timing comparison and the VGG variant mentioned in
Section 4.2's footnote.
"""

from repro.backbone.resnet import BasicBlock, MiniResNet
from repro.backbone.vgg import MiniVGG
from repro.backbone.factory import BACKBONE_PRESETS, build_backbone
from repro.backbone.pretrain import (
    ClassificationHead,
    load_pretrained_backbone,
    pretrain_backbone,
)

__all__ = [
    "MiniResNet",
    "BasicBlock",
    "MiniVGG",
    "build_backbone",
    "BACKBONE_PRESETS",
    "pretrain_backbone",
    "load_pretrained_backbone",
    "ClassificationHead",
]
