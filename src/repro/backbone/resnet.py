"""Residual CNN trunk (the ResNet-C4 analogue)."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.autograd import Tensor
from repro.nn import BatchNorm2d, Conv2d, GroupNorm2d, MaxPool2d, Module, Sequential


class Identity(Module):
    """No-op layer (norm-free trunk option)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


def make_norm(kind: str, channels: int) -> Module:
    """Build a trunk normalisation layer.

    ``"group"`` is batch-independent, giving identical train and eval
    behaviour — important because grounding inference runs with batch
    size 1.  ``"batch"`` matches the original ResNet recipe.  ``"none"``
    disables trunk normalisation.
    """
    if kind == "group":
        return GroupNorm2d(channels)
    if kind == "batch":
        return BatchNorm2d(channels)
    if kind == "none":
        return Identity()
    raise ValueError(f"unknown norm kind: {kind}")


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection.

    A 1x1 projection is inserted on the skip path when the spatial or
    channel shape changes, as in He et al. (2016).
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 norm: str = "group"):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False)
        self.bn1 = make_norm(norm, out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False)
        self.bn2 = make_norm(norm, out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride, bias=False)
            self.shortcut_bn = make_norm(norm, out_channels)
        else:
            self.shortcut = None
            self.shortcut_bn = None

    def forward(self, x: Tensor) -> Tensor:
        residual = x
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        if self.shortcut is not None:
            residual = self.shortcut_bn(self.shortcut(x))
        return (out + residual).relu()


class MiniResNet(Module):
    """Residual trunk producing a stride-``2**(1+len(stages))`` C4 feature map.

    Parameters
    ----------
    stem_channels:
        Width of the stride-2 stem convolution.
    stage_channels:
        Output width of each residual stage (each stage downsamples 2x
        via max pooling; the original ResNet's strided convolutions are
        phase-sensitive at our small object sizes, whereas pooled
        downsampling keeps small-glyph shape information intact).
    blocks_per_stage:
        Residual blocks in each stage; depth scaling models the
        ResNet-50 vs ResNet-101 comparison.
    norm:
        ``"group"`` or ``"batch"`` trunk normalisation.
    """

    def __init__(
        self,
        in_channels: int = 3,
        stem_channels: int = 16,
        stage_channels: Sequence[int] = (24, 32),
        blocks_per_stage: Sequence[int] = (1, 1),
        norm: str = "group",
    ):
        super().__init__()
        if len(stage_channels) != len(blocks_per_stage):
            raise ValueError("stage_channels and blocks_per_stage must align")
        self.stem = Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, bias=False)
        self.stem_bn = make_norm(norm, stem_channels)
        self.stem_pool = MaxPool2d(2)

        stages = []
        channels = stem_channels
        for stage_width, num_blocks in zip(stage_channels, blocks_per_stage):
            blocks = [BasicBlock(channels, stage_width, norm=norm)]
            blocks.extend(
                BasicBlock(stage_width, stage_width, norm=norm) for _ in range(num_blocks - 1)
            )
            blocks.append(MaxPool2d(2))
            stages.append(Sequential(*blocks))
            channels = stage_width
        self.stages = Sequential(*stages)

        self.out_channels = channels
        self.stride = 2 ** (1 + len(stage_channels))

    def forward(self, images: Tensor) -> Tensor:
        """Map ``(B, 3, H, W)`` images to ``(B, C, H/stride, W/stride)``."""
        out = self.stem_pool(self.stem_bn(self.stem(images)).relu())
        return self.stages(out)

    def feature_shape(self, height: int, width: int) -> Tuple[int, int, int]:
        """Return ``(channels, grid_h, grid_w)`` for an input size."""
        return (self.out_channels, height // self.stride, width // self.stride)
