"""Named backbone presets and the builder used across experiments."""

from __future__ import annotations

from typing import Callable, Dict

from repro.backbone.resnet import MiniResNet
from repro.backbone.vgg import MiniVGG

#: Preset name -> zero-argument constructor.  ``resnet50`` / ``resnet101``
#: model the paper's two ResNet-C4 depths at laptop scale; ``vgg`` is the
#: footnote variant; ``tiny`` keeps unit tests fast.  Trunks are
#: norm-free by default: at this scale normalisation slows optimisation
#: without helping, and batch-independence keeps train == eval.
BACKBONE_PRESETS: Dict[str, Callable[[], object]] = {
    "resnet50": lambda: MiniResNet(
        stage_channels=(24, 32), blocks_per_stage=(1, 1), norm="none"
    ),
    "resnet101": lambda: MiniResNet(
        stage_channels=(24, 32), blocks_per_stage=(2, 2), norm="none"
    ),
    "vgg": lambda: MiniVGG(stage_channels=(16, 24, 32), norm="none"),
    "tiny": lambda: MiniResNet(
        stem_channels=12, stage_channels=(16, 24), blocks_per_stage=(1, 1), norm="none"
    ),
    # Batch-normalised variants (the original ResNet recipe).  These carry
    # running-statistics buffers, exercising the buffer persistence path
    # of :class:`repro.nn.Module` end to end.
    "resnet50-bn": lambda: MiniResNet(
        stage_channels=(24, 32), blocks_per_stage=(1, 1), norm="batch"
    ),
    "tiny-bn": lambda: MiniResNet(
        stem_channels=12, stage_channels=(16, 24), blocks_per_stage=(1, 1), norm="batch"
    ),
}


def build_backbone(name: str):
    """Instantiate a backbone preset by name."""
    if name not in BACKBONE_PRESETS:
        raise KeyError(f"unknown backbone '{name}'; choose from {sorted(BACKBONE_PRESETS)}")
    return BACKBONE_PRESETS[name]()
