"""Plain convolutional trunk (the VGG analogue from the paper's footnote)."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.autograd import Tensor
from repro.backbone.resnet import make_norm
from repro.nn import Conv2d, MaxPool2d, Module, Sequential


class _ConvBNReLU(Module):
    def __init__(self, in_channels: int, out_channels: int, norm: str = "group"):
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, 3, padding=1, bias=False)
        self.bn = make_norm(norm, out_channels)

    def forward(self, x: Tensor) -> Tensor:
        return self.bn(self.conv(x)).relu()


class MiniVGG(Module):
    """Stacked 3x3 conv blocks with max-pool downsampling.

    Each stage is ``convs_per_stage`` conv+BN+ReLU layers followed by a
    2x2 max pool, giving the same output stride as :class:`MiniResNet`
    with matching ``stage_channels`` length.
    """

    def __init__(
        self,
        in_channels: int = 3,
        stage_channels: Sequence[int] = (16, 24, 32),
        convs_per_stage: int = 1,
        norm: str = "group",
    ):
        super().__init__()
        layers = []
        channels = in_channels
        for stage_width in stage_channels:
            for _ in range(convs_per_stage):
                layers.append(_ConvBNReLU(channels, stage_width, norm=norm))
                channels = stage_width
            layers.append(MaxPool2d(2))
        self.features = Sequential(*layers)
        self.out_channels = channels
        self.stride = 2 ** len(stage_channels)

    def forward(self, images: Tensor) -> Tensor:
        """Map ``(B, 3, H, W)`` images to ``(B, C, H/stride, W/stride)``."""
        return self.features(images)

    def feature_shape(self, height: int, width: int) -> Tuple[int, int, int]:
        """Return ``(channels, grid_h, grid_w)`` for an input size."""
        return (self.out_channels, height // self.stride, width // self.stride)
