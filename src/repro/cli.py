"""Command-line interface: train, evaluate, ground, and report.

Usage::

    python -m repro.cli train --dataset RefCOCO --epochs 10 --out model.npz
    python -m repro.cli evaluate --dataset RefCOCO --model model.npz
    python -m repro.cli ground --dataset RefCOCO --model model.npz --query "red dog"
    python -m repro.cli serve-bench --dataset RefCOCO --requests 128
    python -m repro.cli serve-fleet --simulated --replicas 3 --kill-replica 0:5 --reload-at 60
    python -m repro.cli serve-fleet --trace-mix mixed --replicas 2 --reload-at 40
    python -m repro.cli serve-fleet --presets tiny,tiny-word2pix --replicas 4
    python -m repro.cli train --preset tiny-dilated --epochs 2 --out dilated.npz
    python -m repro.cli profile --target train-step --out trace.json
    python -m repro.cli tables --preset smoke --only table1 table5
    python -m repro.cli experiments --scenario compositional --preset smoke
    python -m repro.cli serve-fleet --trace-mix compositional --reload-at 40
    python -m repro.cli parse --query "there is a red car . the dog next to it"

``python -m repro`` is an alias for ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _trace_mix_name(value: str) -> str:
    """Argparse type: a registered trace-mix name (fail listing the registry)."""
    from repro.scenarios import available_trace_mixes

    available = available_trace_mixes()
    if value not in available:
        raise argparse.ArgumentTypeError(
            f"unknown trace mix {value!r}; available: {', '.join(available)}")
    return value


def _scenario_name(value: str) -> str:
    """Argparse type: a registered scenario name (fail listing the registry)."""
    from repro.scenarios import available_scenarios

    available = available_scenarios()
    if value not in available:
        raise argparse.ArgumentTypeError(
            f"unknown scenario {value!r}; available: {', '.join(available)}")
    return value


#: Output formats of the ``parse`` subcommand.
PARSE_FORMATS = ("tree", "tokens", "masks")


def _parse_format(value: str) -> str:
    """Argparse type: a parse output format (fail listing the options)."""
    if value not in PARSE_FORMATS:
        raise argparse.ArgumentTypeError(
            f"unknown parse format {value!r}; available: "
            f"{', '.join(PARSE_FORMATS)}")
    return value


def _preset_name(value: str) -> str:
    """Argparse type: a registered model preset (fail listing the zoo)."""
    from repro.zoo import available_presets

    available = available_presets()
    if value not in available:
        raise argparse.ArgumentTypeError(
            f"unknown model preset {value!r}; available: {', '.join(available)}")
    return value


def _preset_list(value: str) -> List[str]:
    """Argparse type: comma-separated model presets (each validated)."""
    names = [part.strip() for part in value.split(",") if part.strip()]
    if not names:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of model presets")
    return [_preset_name(name) for name in names]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="RefCOCO",
                        choices=["RefCOCO", "RefCOCO+", "RefCOCOg"])
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset size multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--float64", action="store_true",
                        help="train in float64 (default float32)")


def _setup(args) -> None:
    from repro.autograd import set_default_dtype
    from repro.utils import seed_everything

    set_default_dtype(np.float64 if args.float64 else np.float32)
    seed_everything(args.seed)


def _build_dataset(args):
    from repro.data import REFCOCO, REFCOCO_PLUS, REFCOCOG, build_dataset

    spec = {"RefCOCO": REFCOCO, "RefCOCO+": REFCOCO_PLUS, "RefCOCOg": REFCOCOG}[
        args.dataset
    ]
    return build_dataset(spec.scaled(args.scale))


def _build_model(args, dataset):
    from repro.backbone import load_pretrained_backbone
    from repro.core import YolloConfig, YolloModel

    preset = getattr(args, "preset", None)
    if preset:
        # Zoo presets carry the whole architecture (backbone included);
        # --backbone is ignored in favour of the preset's choice.
        from repro.zoo import lower_config

        config = lower_config(
            preset, max_query_length=max(8, dataset.max_query_length))
    else:
        config = YolloConfig(backbone=args.backbone,
                             max_query_length=max(8, dataset.max_query_length))
    backbone = load_pretrained_backbone(config.backbone, steps=args.pretrain_steps)
    return YolloModel(config, vocab_size=len(dataset.vocab), backbone=backbone), config


def _dist_spec(args, profile: bool = False, profile_out=None, top: int = 12):
    """Build a :class:`repro.dist.WorkerSpec` from CLI arguments."""
    from repro.dist import DistConfig, WorkerSpec, build_yollo_task, warm_backbone

    return WorkerSpec(
        builder=build_yollo_task,
        task_kwargs=dict(
            dataset_name=args.dataset,
            scale=args.scale,
            grad_shards=args.grad_shards,
            epochs=getattr(args, "epochs", None),
            iterations=getattr(args, "steps", None) if profile else None,
            eval_every=getattr(args, "eval_every", 0) if not profile else 0,
            backbone=args.backbone,
            pretrain_steps=args.pretrain_steps,
        ),
        dist=DistConfig(grad_shards=args.grad_shards),
        seed=args.seed,
        dtype="float64" if args.float64 else "float32",
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", 0),
        resume=getattr(args, "resume", False),
        warmup=warm_backbone,
        warmup_kwargs=dict(name=args.backbone,
                           pretrain_steps=args.pretrain_steps),
        profile=profile,
        profile_out=profile_out,
        profile_top=top,
        quiet=getattr(args, "quiet", True),
    )


def _cmd_train_dist(args) -> int:
    from repro.dist import WorkerGroup, build_yollo_task

    spec = _dist_spec(args)
    report = WorkerGroup(spec, world_size=args.workers).run()
    if report.generations > 1:
        print(f"recovered from worker failure: finished at world size "
              f"{report.world_size} after {report.generations} generation(s)")
    # Rebuild the task locally to decode the replicated final state into
    # a saveable model (the workers ship state, not an .npz).
    task = build_yollo_task(**spec.task_kwargs)
    task.load_state_dict(report.final_state)
    if task.trainer.history.curve.values:
        print(task.trainer.history.curve.render_ascii())
    task.trainer.model.save(args.out)
    print(f"saved checkpoint to {args.out} "
          f"(trained on {args.workers} worker(s))")
    return 0


def cmd_train(args) -> int:
    from repro.core import YolloTrainer
    from repro.utils import ProgressLogger

    _setup(args)
    if args.workers > 1:
        return _cmd_train_dist(args)
    dataset = _build_dataset(args)
    model, config = _build_model(args, dataset)
    if args.preset:
        from repro.zoo import preset_fingerprint

        print(f"model preset: {args.preset} (config fingerprint "
              f"{preset_fingerprint(args.preset, max_query_length=config.max_query_length)})")
    trainer = YolloTrainer(model, dataset, config,
                           logger=ProgressLogger("train", enabled=not args.quiet))
    if args.checkpoint_dir:
        from repro.runtime import TrainingSupervisor

        trainer.begin_run(epochs=args.epochs, eval_every=args.eval_every)
        supervisor = TrainingSupervisor(
            trainer,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            logger=ProgressLogger("supervisor", enabled=not args.quiet),
        )
        report = supervisor.run()
        history = trainer.history
        if report.resumed_from is not None:
            print(f"resumed from iteration {report.resumed_from}")
        if report.skipped_steps or report.rollbacks or report.checkpoint_failures:
            print(f"recovered from faults: {report.skipped_steps} skipped step(s), "
                  f"{report.rollbacks} rollback(s), "
                  f"{report.checkpoint_failures} failed checkpoint write(s)")
    elif args.resume:
        raise SystemExit("--resume requires --checkpoint-dir")
    else:
        history = trainer.train(epochs=args.epochs, eval_every=args.eval_every)
    if history.curve.values:
        print(history.curve.render_ascii())
    model.save(args.out)
    print(f"saved checkpoint to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    from repro.core import Grounder
    from repro.eval import evaluate_grounder, format_table

    _setup(args)
    dataset = _build_dataset(args)
    model, _ = _build_model(args, dataset)
    model.load(args.model)
    grounder = Grounder(model, dataset.vocab)
    rows = []
    for split in dataset.split_names():
        if split == "train":
            continue
        report = evaluate_grounder(grounder, dataset[split])
        rows.append([split] + [v * 100 for v in report.as_dict().values()])
    print(format_table(["Split", "ACC", "ACC@0.5", "ACC@0.75", "MIOU"], rows,
                       title=f"YOLLO on {args.dataset}"))
    return 0


def cmd_ground(args) -> int:
    from repro.core import Grounder
    from repro.viz import render_attention_ascii

    _setup(args)
    dataset = _build_dataset(args)
    model, _ = _build_model(args, dataset)
    model.load(args.model)
    grounder = Grounder(model, dataset.vocab)
    sample = dataset["val"][args.index]
    query = args.query or sample.query
    prediction = grounder.ground(sample.image, query)
    print(f'query: "{query}"')
    print(f"box: {np.round(prediction.box, 1).tolist()}  score: {prediction.score:.3f}")
    print(render_attention_ascii(prediction.attention_map, box=prediction.box,
                                 stride=model.encoder.backbone.stride))
    return 0


def cmd_serve_bench(args) -> int:
    """Compare one-at-a-time grounding against the micro-batched engine."""
    import time

    from repro.core import Grounder
    from repro.serve import ServeEngine, synthetic_trace

    _setup(args)
    dataset = _build_dataset(args)
    model, _ = _build_model(args, dataset)
    if args.model:
        model.load(args.model)
    model.eval()
    grounder = Grounder(model, dataset.vocab)
    if args.compiled:
        grounder.compile()
    pool = list(dataset["val"]) or list(dataset["train"])
    trace = synthetic_trace(pool, args.requests,
                            repeat_fraction=args.repeat_fraction)

    # Warm both paths (first calls touch allocation paths; with
    # --compiled this also builds the single-sample plan).
    grounder.ground(trace[0].image, trace[0].query)

    start = time.perf_counter()
    for request in trace:
        grounder.ground(request.image, request.query)
    baseline_seconds = time.perf_counter() - start
    baseline_qps = len(trace) / baseline_seconds

    with ServeEngine(grounder, max_batch=args.max_batch, max_wait=args.max_wait,
                     cache_size=args.cache_size) as engine:
        start = time.perf_counter()
        engine.ground_many(trace)
        batched_seconds = time.perf_counter() - start
        stats = engine.stats()

    batched_qps = len(trace) / batched_seconds
    mode = "compiled" if args.compiled else "eager"
    print(f"forward mode: {mode}")
    print(f"one-at-a-time: {len(trace)} requests in {baseline_seconds:.3f}s "
          f"({baseline_qps:.1f} qps)")
    print(f"micro-batched: {len(trace)} requests in {batched_seconds:.3f}s "
          f"({batched_qps:.1f} qps)")
    print(f"speedup: {baseline_seconds / batched_seconds:.2f}x")
    print(stats.render())
    return 0


def cmd_serve_fleet(args) -> int:
    """Soak a fault-tolerant replica fleet against a timed trace."""
    import tempfile

    from repro.runtime import CheckpointManager, FaultPlan
    from repro.serve import (
        FleetConfig, FleetRouter, ReplicaSpec, build_latency_grounder,
        build_yollo_grounder, run_soak, timed_trace,
    )
    from repro.utils.seeding import spawn_rng

    _setup(args)
    if args.presets and (args.trace_mix or args.simulated):
        raise SystemExit("--presets cannot be combined with "
                         "--trace-mix or --simulated")
    if args.presets and args.reload_at is not None:
        raise SystemExit("--reload-at is not supported with --presets "
                         "(a heterogeneous reload must name its model)")
    fault_plan = None
    if args.kill_replica:
        kills = {}
        for token in args.kill_replica:
            replica_id, _, ordinal = token.partition(":")
            kills[int(replica_id)] = int(ordinal or 1)
        fault_plan = FaultPlan(kill_replica_on_request=kills)

    trace = None
    if args.trace_mix:
        # Scenario-mix mode: replay a heterogeneous scenario trace
        # against oracle replicas serving the registry's ground-truth
        # ranked answers, so the soak asserts structured-protocol
        # correctness (per-scenario p99, no false "found" on no-target
        # queries) independently of model quality.
        from repro.scenarios import build_oracle_grounder, build_trace_mix

        trace, answers = build_trace_mix(
            args.trace_mix, num_requests=args.requests, rate_qps=args.rate,
            repeat_fraction=args.repeat_fraction)
        spec = ReplicaSpec(
            builder=build_oracle_grounder,
            builder_kwargs={"answers": answers, "latency": args.latency},
            max_batch=args.max_batch, cache_size=args.cache_size,
            seed=args.seed, fault_plan=fault_plan,
        )
    elif args.presets:
        # Heterogeneous mode: one replica group per zoo preset.  Requests
        # are model-tagged, the router routes them only to matching
        # replicas, and the shared response cache keys on the preset —
        # two presets can never cross-serve each other's answers.
        from repro.zoo import build_preset_grounder

        dataset = _build_dataset(args)
        pool = list(dataset["val"]) or list(dataset["train"])
        preset_kwargs = dict(dataset_name=args.dataset, scale=args.scale,
                             pretrain_steps=args.pretrain_steps)
        spec = [
            ReplicaSpec(
                builder=build_preset_grounder,
                builder_kwargs=dict(preset_kwargs, preset=name),
                model_id=name,
                max_batch=args.max_batch, cache_size=args.cache_size,
                seed=args.seed,
                dtype="float64" if args.float64 else "float32",
                fault_plan=fault_plan,
            )
            for name in args.presets
        ]
    elif args.simulated:
        from repro.data.refcoco import GroundingSample

        rng = spawn_rng("serve-fleet-pool")
        pool = [
            GroundingSample(image=rng.random((8, 8, 3)),
                            query=f"synthetic object {i}", tokens=[],
                            target_box=np.zeros(4), target_index=-1,
                            scene=None, split="serve")
            for i in range(16)
        ]
        spec = ReplicaSpec(
            builder=build_latency_grounder,
            builder_kwargs={"latency": args.latency},
            max_batch=args.max_batch, cache_size=args.cache_size,
            seed=args.seed, fault_plan=fault_plan,
        )
    else:
        dataset = _build_dataset(args)
        pool = list(dataset["val"]) or list(dataset["train"])
        spec = ReplicaSpec(
            builder=build_yollo_grounder,
            builder_kwargs=dict(
                dataset_name=args.dataset, scale=args.scale,
                backbone=args.backbone, pretrain_steps=args.pretrain_steps,
                model_path=args.model,
            ),
            max_batch=args.max_batch, cache_size=args.cache_size,
            seed=args.seed,
            dtype="float64" if args.float64 else "float32",
            fault_plan=fault_plan,
        )

    reload_at = None
    reload_checkpoint = None
    reload_dir = None
    if args.reload_at is not None:
        # Roll the fleet onto a checkpoint mid-soak.  In simulated mode
        # the new weights are observably different (version bump shows
        # up in every response); for real models we re-checkpoint the
        # current weights — the rolling protocol and checksum handshake
        # are what is being exercised.
        reload_dir = tempfile.TemporaryDirectory(prefix="fleet-reload-")
        manager = CheckpointManager(reload_dir.name)
        if args.simulated or args.trace_mix:
            payload = {"version": np.array([2.0]), "bias": np.array([1.0])}
        else:
            probe = spec.builder(**spec.builder_kwargs)
            target = (probe if hasattr(probe, "state_dict")
                      else probe.model)
            payload = target.state_dict()
        reload_checkpoint = manager.save(payload, 1)
        reload_at = args.reload_at

    if trace is None:
        trace = timed_trace(pool, args.requests, rate_qps=args.rate,
                            repeat_fraction=args.repeat_fraction)
    content_check = None
    if args.presets:
        # Tag requests round-robin across the presets, then precompute —
        # per preset, in this process — the answer a single-engine
        # deployment of that preset would give.  Replica processes are
        # seeded identically, so every fleet response must match its
        # preset's reference byte for byte; one preset answering another
        # preset's request (routing or cache cross-talk) fails the soak.
        from repro.core import responses_equal
        from repro.serve import image_digest
        from repro.serve.engine import _make_sample
        from repro.utils.seeding import seed_everything
        from repro.zoo import build_preset_grounder

        for index, request in enumerate(trace):
            request.model = args.presets[index % len(args.presets)]
        expected = {}
        for name in args.presets:
            seed_everything(args.seed)
            reference = build_preset_grounder(preset=name, **preset_kwargs)
            for request in trace:
                key = (name, image_digest(request.image), str(request.query))
                if request.model == name and key not in expected:
                    expected[key] = reference(
                        [_make_sample(request.image, request.query)])[0]
        seed_everything(args.seed)

        def content_check(request, result):
            key = (request.model, image_digest(request.image),
                   str(request.query))
            return responses_equal(expected[key], result)

    config = FleetConfig(
        replicas=args.replicas, max_queue=args.max_queue,
        default_deadline=args.deadline,
        router_cache=args.router_cache,
    )
    try:
        with FleetRouter(spec, config) as router:
            if not router.wait_healthy(config.spawn_timeout):
                raise SystemExit("fleet failed to become healthy")
            # In simulated mode the reloaded weights are observable in
            # every response (version lands in box[2]), so the soak can
            # verify no post-reload response came from stale weights.
            post_check = None
            if reload_checkpoint is not None:
                if args.trace_mix:
                    # Oracle responses carry the weights version field.
                    post_check = (
                        lambda r: getattr(r, "version", None) == 2.0)
                elif args.simulated:
                    post_check = lambda box: box[2] == 2.0  # noqa: E731
            report = run_soak(router, trace, reload_at=reload_at,
                              reload_checkpoint=reload_checkpoint,
                              post_reload_check=post_check,
                              content_check=content_check)
            # let a just-respawned replica finish coming up, then
            # re-snapshot so the health check sees the restored fleet
            router.wait_healthy(30.0)
            import dataclasses

            report = dataclasses.replace(report, stats=router.stats())
        print(report.render())
        violations = report.check(slo_p99=args.slo_p99,
                                  expected_replicas=args.replicas)
        if violations:
            for violation in violations:
                print(f"SOAK VIOLATION: {violation}")
            return 1
        print("soak passed: no lost requests, SLO held, fleet healthy")
        if args.presets:
            print(f"heterogeneous fleet: {len(args.presets)} preset(s); "
                  f"every response bit-identical to its preset's "
                  f"single-engine answer (zero cross-preset serves)")
        return 0
    finally:
        if reload_dir is not None:
            reload_dir.cleanup()


def cmd_profile(args) -> int:
    """Profile a train step, an inference batch, or a serve trace.

    Emits a Chrome ``trace_event`` JSON (open in chrome://tracing or
    Perfetto) and prints the top-K hot-op table from :mod:`repro.obs`.
    """
    from repro.obs import profile

    _setup(args)
    if getattr(args, "workers", 1) > 1:
        if args.target != "train-step":
            raise SystemExit("--workers only profiles --target train-step")
        from repro.dist import WorkerGroup

        out = args.out or "profile-train-step.json"
        spec = _dist_spec(args, profile=True, profile_out=out, top=args.top)
        report = WorkerGroup(spec, world_size=args.workers).run()
        if report.profile_render:
            print(report.profile_render)
        print(f"\nwrote Chrome trace (rank 0) to {out} "
              f"(open in chrome://tracing)")
        return 0
    dataset = _build_dataset(args)
    model, config = _build_model(args, dataset)
    if args.model:
        model.load(args.model)

    if args.target == "train-step":
        from repro.core import YolloTrainer

        trainer = YolloTrainer(model, dataset, config)
        trainer.begin_run(iterations=args.steps)
        with profile() as prof:
            for _ in range(args.steps):
                loss = trainer.forward_backward()
                trainer.apply_step(loss)
    elif args.target == "infer":
        from repro.core import Grounder

        model.eval()
        grounder = Grounder(model, dataset.vocab)
        if args.compiled:
            grounder.compile()
        pool = list(dataset["val"]) or list(dataset["train"])
        samples = pool[: args.requests]
        # Warm allocation paths (and with --compiled, build the plan
        # before profiling so the trace shows steady-state replay).
        grounder.ground_batch(samples[:1])
        with profile() as prof:
            for sample in samples:
                grounder.ground_batch([sample])
    else:  # serve
        from repro.core import Grounder
        from repro.serve import ServeEngine, synthetic_trace

        model.eval()
        grounder = Grounder(model, dataset.vocab)
        if args.compiled:
            grounder.compile()
        pool = list(dataset["val"]) or list(dataset["train"])
        trace = synthetic_trace(pool, args.requests, repeat_fraction=0.3)
        grounder.ground(trace[0].image, trace[0].query)  # warm
        with profile() as prof:
            with ServeEngine(grounder, max_batch=args.max_batch) as engine:
                engine.ground_many(trace)
        print(engine.stats().render())
        print()

    out = args.out or f"profile-{args.target}.json"
    prof.export_chrome_trace(out)
    print(prof.render(top=args.top))
    print(f"\nwrote Chrome trace to {out} (open in chrome://tracing)")
    return 0


def cmd_tables(args) -> int:
    from repro.experiments import (
        ExperimentContext, figure4, figure5, get_preset, scenario_matrix,
        table1, table2, table3, table4, table5,
    )

    modules = {
        "table1": table1, "table2": table2, "table3": table3,
        "table4": table4, "table5": table5, "figure4": figure4,
        "figure5": figure5, "scenarios": scenario_matrix,
    }
    chosen = args.only or list(modules)
    context = ExperimentContext(preset=get_preset(args.preset))
    for name in chosen:
        print(modules[name].run(context))
        print()
    return 0


def _render_tree(tree) -> List[str]:
    """Human-readable lines for one parsed relation tree."""
    lines = []
    for index, entity in enumerate(tree.entities):
        marks = []
        if index in tree.targets:
            marks.append("target")
        if entity.pronoun is not None:
            antecedent = ("?" if entity.antecedent is None
                          else f"#{entity.antecedent}")
            marks.append(f"pronoun {entity.pronoun} -> {antecedent}")
        if entity.quantified_all:
            marks.append("all")
        if entity.plural:
            marks.append("plural")
        attrs = ", ".join(
            f"{'not ' if a.negated else ''}{a.kind}={a.value}"
            for a in entity.attributes)
        head = entity.head or "-"
        suffix = f" [{'; '.join(marks)}]" if marks else ""
        lines.append(f"  entity #{index}: {head} "
                     f"({entity.category or 'open'})"
                     f"{' {' + attrs + '}' if attrs else ''}{suffix}")
    for clause in tree.clauses:
        anchor = ("-" if clause.anchor is None else f"#{clause.anchor}")
        negated = "not " if clause.negated else ""
        lines.append(f"  clause: #{clause.target} "
                     f"{negated}{clause.relation} {anchor}")
    return lines


def cmd_parse(args) -> int:
    """Parse queries to relation trees (the repro.lang subsystem)."""
    from repro.lang import clause_token_masks, parse

    queries: List[str] = []
    if args.query:
        queries.append(args.query)
    if args.scenario:
        from repro.scenarios import get_scenario

        samples = get_scenario(args.scenario).eval_samples(args.scenes)
        queries.extend(s.query for s in samples[: args.limit])
    if not queries:
        raise SystemExit("parse needs --query and/or --scenario")
    for query in queries:
        tree = parse(query)
        print(f'query: "{query}"')
        print(f"  depth={tree.depth()} trivial={tree.is_trivial} "
              f"sentences={tree.num_sentences}")
        if args.format == "tree":
            for line in _render_tree(tree):
                print(line)
        elif args.format == "tokens":
            print(f"  tokens: {' '.join(tree.token_sequence())}")
            for label, (start, end) in tree.segments:
                print(f"  segment [{start}:{end}] {label}: "
                      f"{' '.join(tree.tokens[start:end])}")
        else:  # masks
            masks = clause_token_masks(tree, args.max_length)
            if masks is None:
                print("  clause masks: None (flat-token fallback)")
            else:
                for row in masks:
                    print("  " + "".join(str(int(v)) for v in row))
        print()
    return 0


def cmd_experiments(args) -> int:
    """Scenario workload reports (the whole matrix, or one scenario)."""
    from repro.experiments import ExperimentContext, get_preset, scenario_matrix

    context = ExperimentContext(preset=get_preset(args.preset),
                                model_preset=args.model_preset)
    if args.scenario:
        print(scenario_matrix.run_scenario(context, args.scenario))
    else:
        print(scenario_matrix.run(context))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a YOLLO model")
    _add_common(train)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--preset", type=_preset_name, default=None,
                       metavar="NAME",
                       help="build the model from a repro.zoo preset "
                            "(overrides --backbone; the preset's config "
                            "fingerprint is stamped into checkpoints)")
    train.add_argument("--backbone", default="resnet50")
    train.add_argument("--pretrain-steps", type=int, default=300)
    train.add_argument("--eval-every", type=int, default=50)
    train.add_argument("--out", default="yollo.npz")
    train.add_argument("--checkpoint-dir", default=None,
                       help="run under the fault-tolerant supervisor, writing "
                            "rotated checkpoints here")
    train.add_argument("--checkpoint-every", type=int, default=50,
                       help="iterations between checkpoints "
                            "(with --checkpoint-dir)")
    train.add_argument("--resume", action="store_true",
                       help="resume bit-exactly from the newest checkpoint "
                            "in --checkpoint-dir")
    train.add_argument("--quiet", action="store_true")
    train.add_argument("--workers", type=int, default=1,
                       help="data-parallel worker processes; >1 trains via "
                            "repro.dist with bit-exact results")
    train.add_argument("--grad-shards", type=int, default=4,
                       help="micro-batch slots per global batch "
                            "(fixed across world sizes)")
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate a checkpoint")
    _add_common(evaluate)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--backbone", default="resnet50")
    evaluate.add_argument("--pretrain-steps", type=int, default=1)
    evaluate.set_defaults(func=cmd_evaluate)

    ground = sub.add_parser("ground", help="ground one query in a val image")
    _add_common(ground)
    ground.add_argument("--model", required=True)
    ground.add_argument("--backbone", default="resnet50")
    ground.add_argument("--pretrain-steps", type=int, default=1)
    ground.add_argument("--query", default=None,
                        help="free-form query (defaults to the sample's)")
    ground.add_argument("--index", type=int, default=0)
    ground.set_defaults(func=cmd_ground)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the micro-batching serving engine vs naive grounding")
    _add_common(serve_bench)
    serve_bench.add_argument("--model", default=None,
                             help="checkpoint to serve (default: fresh weights)")
    serve_bench.add_argument("--backbone", default="tiny")
    serve_bench.add_argument("--pretrain-steps", type=int, default=1)
    serve_bench.add_argument("--requests", type=int, default=128,
                             help="synthetic trace length")
    serve_bench.add_argument("--repeat-fraction", type=float, default=0.3,
                             help="fraction of requests repeating earlier ones")
    serve_bench.add_argument("--max-batch", type=int, default=16)
    serve_bench.add_argument("--max-wait", type=float, default=0.002,
                             help="seconds to wait for batch stragglers")
    serve_bench.add_argument("--cache-size", type=int, default=256,
                             help="LRU result-cache entries (0 disables)")
    serve_bench.add_argument("--compiled", action="store_true",
                             help="serve through graph-compiled plans "
                                  "(trace once per batch shape, replay)")
    serve_bench.set_defaults(func=cmd_serve_bench)

    fleet = sub.add_parser(
        "serve-fleet",
        help="soak a fault-tolerant replica fleet against a timed trace")
    _add_common(fleet)
    fleet.add_argument("--replicas", type=int, default=3,
                       help="serving replica processes")
    fleet.add_argument("--requests", type=int, default=120,
                       help="timed-trace length")
    fleet.add_argument("--rate", type=float, default=100.0,
                       help="mean arrival rate (requests/second)")
    fleet.add_argument("--repeat-fraction", type=float, default=0.3)
    fleet.add_argument("--deadline", type=float, default=10.0,
                       help="per-attempt deadline in seconds")
    fleet.add_argument("--max-queue", type=int, default=128,
                       help="admission queue bound (full queue sheds)")
    fleet.add_argument("--max-batch", type=int, default=8)
    fleet.add_argument("--cache-size", type=int, default=256,
                       help="per-replica LRU entries (0 disables)")
    fleet.add_argument("--router-cache", type=int, default=256,
                       help="router-tier shared response cache entries "
                            "(0 disables); repeats are answered before "
                            "admission and survive replica respawns, and "
                            "a rolling reload bumps the cache's weights "
                            "epoch so stale boxes are never served")
    fleet.add_argument("--simulated", action="store_true",
                       help="serve a fixed-latency simulated model instead "
                            "of a real YOLLO grounder")
    fleet.add_argument("--trace-mix", type=_trace_mix_name, default=None,
                       metavar="NAME",
                       help="replay a registered scenario trace mix "
                            "(repro.scenarios) against oracle replicas "
                            "serving ground-truth ranked answers; the soak "
                            "reports per-scenario p99 and fails on any "
                            "false \"found\" for a no-target query")
    fleet.add_argument("--presets", type=_preset_list, default=None,
                       metavar="A,B",
                       help="serve a heterogeneous fleet: one replica "
                            "group per repro.zoo preset, model-tagged "
                            "routing, preset-keyed shared cache; the soak "
                            "asserts every response is bit-identical to "
                            "its preset's single-engine answer")
    fleet.add_argument("--latency", type=float, default=0.002,
                       help="simulated per-batch forward latency seconds "
                            "(with --simulated)")
    fleet.add_argument("--model", default=None,
                       help="checkpoint replicas serve (real-model mode)")
    fleet.add_argument("--backbone", default="tiny")
    fleet.add_argument("--pretrain-steps", type=int, default=1)
    fleet.add_argument("--kill-replica", nargs="*", default=None,
                       metavar="ID:ORDINAL",
                       help="deterministically crash replica ID on its "
                            "ORDINAL-th request (e.g. 0:3)")
    fleet.add_argument("--reload-at", type=int, default=None,
                       help="start a rolling hot weight reload after this "
                            "many requests have been submitted")
    fleet.add_argument("--slo-p99", type=float, default=None,
                       help="fail the soak if p99 latency exceeds this "
                            "many seconds")
    fleet.set_defaults(func=cmd_serve_fleet)

    prof = sub.add_parser(
        "profile",
        help="op-level profile of a train step, inference, or serving")
    _add_common(prof)
    prof.add_argument("--target", default="train-step",
                      choices=["train-step", "infer", "serve"])
    prof.add_argument("--model", default=None,
                      help="checkpoint to profile (default: fresh weights)")
    prof.add_argument("--backbone", default="tiny")
    prof.add_argument("--pretrain-steps", type=int, default=1)
    prof.add_argument("--steps", type=int, default=1,
                      help="training steps to profile (train-step target)")
    prof.add_argument("--requests", type=int, default=24,
                      help="queries to profile (infer/serve targets)")
    prof.add_argument("--max-batch", type=int, default=16,
                      help="engine batch bound (serve target)")
    prof.add_argument("--top", type=int, default=12,
                      help="rows in the hot-op table")
    prof.add_argument("--out", default=None,
                      help="Chrome trace path (default profile-<target>.json)")
    prof.add_argument("--workers", type=int, default=1,
                      help="profile a multi-worker distributed train step "
                           "(rank 0's trace is exported)")
    prof.add_argument("--grad-shards", type=int, default=4,
                      help="micro-batch slots per global batch")
    prof.add_argument("--compiled", action="store_true",
                      help="profile graph-compiled inference "
                           "(infer/serve targets only)")
    prof.set_defaults(func=cmd_profile, scale=0.1)

    tables = sub.add_parser("tables", help="regenerate paper tables/figures")
    tables.add_argument("--preset", default=None, choices=["smoke", "bench", "full"])
    tables.add_argument("--only", nargs="*", default=None,
                        choices=["table1", "table2", "table3", "table4",
                                 "table5", "figure4", "figure5", "scenarios"])
    tables.set_defaults(func=cmd_tables)

    parse_cmd = sub.add_parser(
        "parse",
        help="parse referring expressions to relation trees (repro.lang)")
    parse_cmd.add_argument("--query", default=None,
                           help="one free-form expression to parse")
    parse_cmd.add_argument("--scenario", type=_scenario_name, default=None,
                           metavar="NAME",
                           help="also parse expressions sampled from a "
                                "registered scenario")
    parse_cmd.add_argument("--scenes", type=int, default=4,
                           help="scenes to generate (with --scenario)")
    parse_cmd.add_argument("--limit", type=int, default=8,
                           help="max scenario expressions to print")
    parse_cmd.add_argument("--format", type=_parse_format, default="tree",
                           metavar="FMT",
                           help="output format: " + ", ".join(PARSE_FORMATS))
    parse_cmd.add_argument("--max-length", type=int, default=24,
                           help="token budget for --format masks")
    parse_cmd.set_defaults(func=cmd_parse)

    experiments = sub.add_parser(
        "experiments",
        help="scenario workload reports (repro.scenarios registry)")
    experiments.add_argument("--preset", default=None,
                             choices=["smoke", "bench", "full"])
    experiments.add_argument("--scenario", type=_scenario_name, default=None,
                             metavar="NAME",
                             help="report one registered scenario "
                                  "(default: the full workload matrix)")
    experiments.add_argument("--model-preset", type=_preset_name, default=None,
                             metavar="NAME",
                             help="train/evaluate a repro.zoo model preset "
                                  "instead of the paper baseline (weights "
                                  "are cached per preset)")
    experiments.set_defaults(func=cmd_experiments)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
