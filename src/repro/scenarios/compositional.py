"""Compositional scenario: multi-sentence and multi-clause queries.

Every query is generated *through the parser*: a candidate expression
is rendered from the scene, parsed with :func:`repro.lang.parse`, and
interpreted against the scene with :func:`repro.lang.resolve_tree`; the
sample is emitted only when the interpreter confirms the intended
referent set.  Ground truth is therefore correct by construction under
exactly the semantics the structured-query subsystem implements — a
parser bug cannot silently ship mislabelled samples, it shows up as a
generation stall.

Five query families are mixed:

* ``anaphora_single`` — two sentences linked by a pronoun ("there is a
  red car . the dog next to it"), resolving to one object;
* ``nested`` — a depth-2 relative-clause chain ("the dog next to the
  car that is to the left of the red lamp");
* ``negation`` — a negated attribute in a relative clause ("the car
  that is not red") with a unique referent;
* ``conjunction_multi`` — a two-NP conjunction ("the red car and the
  blue dog") whose structured answer ranks both boxes;
* ``anaphora_no_target`` — an anaphoric reference to a category absent
  from the scene; the only correct answer is ``not_found``.

``query_type`` maps onto the registry's standard vocabulary (``single``
/ ``multi`` / ``no_target``); the finer family name is recoverable from
the parse tree (depth, negation flags, anaphora), which is how the
Table 2b depth breakdown groups its rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.render import render_scene
from repro.data.scenes import CATEGORIES, Scene, SceneGenerator, SceneObject
from repro.lang import parse, resolve_tree
from repro.lang.tree import RelationTree
from repro.scenarios.registry import (
    Scenario,
    ScenarioSample,
    TraceMix,
    register_scenario,
    register_trace_mix,
)
from repro.text.tokenizer import tokenize

#: Surface forms of the directional relations the interpreter supports.
_RELATION_TEXT: Tuple[str, ...] = (
    "next to", "to the left of", "to the right of", "above", "below",
)

#: Fractions of each query family in the eval split.
QUERY_FAMILY_MIX: Dict[str, float] = {
    "anaphora_single": 0.3,
    "nested": 0.2,
    "negation": 0.15,
    "conjunction_multi": 0.15,
    "anaphora_no_target": 0.2,
}

#: Family -> registry query_type.
_FAMILY_TYPE: Dict[str, str] = {
    "anaphora_single": "single",
    "nested": "single",
    "negation": "single",
    "conjunction_multi": "multi",
    "anaphora_no_target": "no_target",
}


def generate_compositional_scene(rng: np.random.Generator) -> Scene:
    """A mid-density scene with room for relational chains."""
    gen = SceneGenerator(same_type_density=3.5, max_overlap_iou=0.15,
                         min_size=8, max_size=20, rng=rng)
    scene = gen.generate(rng=rng)
    want = int(rng.integers(6, 10))
    attempts = 0
    while len(scene.objects) < want and attempts < 4 * want:
        attempts += 1
        placed = gen._place_object(scene, str(rng.choice(CATEGORIES)), rng)
        if placed is not None:
            scene.objects.append(placed)
    return scene


def _unique_objects(scene: Scene) -> List[SceneObject]:
    """Objects uniquely described by their (category, colour) pair."""
    counts: Dict[Tuple[str, str], int] = {}
    for obj in scene.objects:
        key = (obj.category, obj.color)
        counts[key] = counts.get(key, 0) + 1
    return [o for o in scene.objects if counts[(o.category, o.color)] == 1]


def _pronoun_for(obj: SceneObject) -> str:
    return "him" if obj.category == "person" else "it"


def _verified(query: str, scene: Scene,
              expect: int) -> Optional[Tuple[RelationTree,
                                             List[SceneObject]]]:
    """Parse ``query`` and confirm it denotes exactly ``expect`` objects."""
    tree = parse(query)
    if tree.is_trivial:
        return None
    try:
        resolved = resolve_tree(tree, scene)
    except Exception:
        return None
    if len(resolved) != expect:
        return None
    return tree, resolved


def _anaphora_query(scene: Scene, rng: np.random.Generator,
                    no_target: bool) -> Optional[Tuple[str,
                                                       List[SceneObject]]]:
    """Two sentences linked by a pronoun; optionally verified-absent."""
    anchors = _unique_objects(scene)
    if not anchors:
        return None
    rng.shuffle(anchors)
    present = {o.category for o in scene.objects}
    for anchor in anchors[:4]:
        if no_target:
            absent = [c for c in CATEGORIES if c not in present]
            if not absent:
                return None
            categories = [str(absent[int(rng.integers(len(absent)))])]
        else:
            categories = [c for c in present if c != anchor.category]
            rng.shuffle(categories)
        relations = list(_RELATION_TEXT)
        rng.shuffle(relations)
        for category in categories[:3]:
            for relation in relations:
                query = (f"there is a {anchor.color} {anchor.category} . "
                         f"the {category} {relation} "
                         f"{_pronoun_for(anchor)}")
                verified = _verified(query, scene,
                                     0 if no_target else 1)
                if verified is None:
                    continue
                tree, resolved = verified
                # The pronoun must actually have resolved — a no-target
                # answer reached without anaphora is not this family.
                if not any(e.pronoun is not None and e.antecedent is not None
                           for e in tree.entities):
                    continue
                return query, resolved
    return None


def _nested_query(scene: Scene, rng: np.random.Generator,
                  ) -> Optional[Tuple[str, List[SceneObject]]]:
    """A depth-2 chain: target -> middle NP -> unique inner anchor."""
    inner_anchors = _unique_objects(scene)
    if not inner_anchors:
        return None
    rng.shuffle(inner_anchors)
    categories = list({o.category for o in scene.objects})
    for inner in inner_anchors[:4]:
        rng.shuffle(categories)
        for mid_category in categories[:3]:
            for outer_category in categories[:3]:
                relations = list(_RELATION_TEXT)
                rng.shuffle(relations)
                for rel1 in relations[:3]:
                    for rel2 in relations[:3]:
                        query = (
                            f"the {outer_category} {rel1} the "
                            f"{mid_category} that is {rel2} the "
                            f"{inner.color} {inner.category}")
                        verified = _verified(query, scene, 1)
                        if verified is None:
                            continue
                        tree, resolved = verified
                        if tree.depth() < 2:
                            continue
                        return query, resolved
    return None


def _negation_query(scene: Scene, rng: np.random.Generator,
                    ) -> Optional[Tuple[str, List[SceneObject]]]:
    """``the CAT that is not COLOR`` with a verified-unique referent."""
    categories = list({o.category for o in scene.objects})
    rng.shuffle(categories)
    for category in categories:
        group = [o for o in scene.objects if o.category == category]
        if len(group) < 2:
            continue
        colors = list({o.color for o in group})
        rng.shuffle(colors)
        for color in colors:
            query = f"the {category} that is not {color}"
            verified = _verified(query, scene, 1)
            if verified is not None:
                return query, verified[1]
    return None


def _conjunction_query(scene: Scene, rng: np.random.Generator,
                       ) -> Optional[Tuple[str, List[SceneObject]]]:
    """Two unique NPs joined by ``and``; the answer ranks both boxes."""
    uniques = _unique_objects(scene)
    if len(uniques) < 2:
        return None
    rng.shuffle(uniques)
    for first in uniques[:4]:
        for second in uniques[:4]:
            if second is first:
                continue
            query = (f"the {first.color} {first.category} and "
                     f"the {second.color} {second.category}")
            verified = _verified(query, scene, 2)
            if verified is not None:
                return query, verified[1]
    return None


_FAMILY_BUILDERS = {
    "anaphora_single": lambda scene, rng: _anaphora_query(scene, rng, False),
    "nested": _nested_query,
    "negation": _negation_query,
    "conjunction_multi": _conjunction_query,
    "anaphora_no_target": lambda scene, rng: _anaphora_query(scene, rng,
                                                             True),
}


def _make_sample(scene: Scene, image: np.ndarray, family: str, query: str,
                 resolved: List[SceneObject]) -> ScenarioSample:
    query_type = _FAMILY_TYPE[family]
    if query_type == "no_target":
        target_box = np.zeros(4)
        all_boxes = np.empty((0, 4))
        target_index = -1
    else:
        all_boxes = np.stack([o.box.copy() for o in resolved])
        target_box = all_boxes[0].copy()
        target_index = (-1 if query_type == "multi" else next(
            i for i, o in enumerate(scene.objects) if o is resolved[0]))
    return ScenarioSample(
        image=image, query=query, tokens=tokenize(query),
        target_box=target_box, target_index=target_index,
        scene=scene, split="eval", query_type=query_type,
        all_target_boxes=all_boxes, scenario="compositional")


def build_compositional(num_scenes: int,
                        rng: np.random.Generator,
                        ) -> Dict[str, List[ScenarioSample]]:
    """Generate the compositional scenario's eval split."""
    families = list(QUERY_FAMILY_MIX)
    weights = np.asarray([QUERY_FAMILY_MIX[f] for f in families])
    weights = weights / weights.sum()
    samples: List[ScenarioSample] = []
    want = num_scenes * 2
    guard = 0
    while len(samples) < want:
        guard += 1
        if guard > max(50, num_scenes * 50):
            raise RuntimeError("compositional scenario generation stalled")
        scene = generate_compositional_scene(rng)
        image = render_scene(scene, rng=rng)
        produced = 0
        order = list(rng.permutation(len(families)))
        start = int(rng.choice(len(families), p=weights))
        order.remove(start)
        for family_index in [start] + order:
            if produced >= 2:
                break
            family = families[family_index]
            result = _FAMILY_BUILDERS[family](scene, rng)
            if result is None:
                continue
            query, resolved = result
            samples.append(_make_sample(scene, image, family, query,
                                        resolved))
            produced += 1
    return {"eval": samples[:want]}


register_scenario(Scenario(
    name="compositional",
    description=("multi-sentence and multi-clause queries — anaphora, "
                 "nested relatives, negation, conjunction — verified "
                 "through the relation-tree parser"),
    build=build_compositional,
))

register_trace_mix(TraceMix(
    name="compositional",
    weights={"compositional": 1.0},
))
