"""Oracle ranked grounder: ground-truth answers behind the serving stack.

Fleet soaks need to assert *correctness* (a no-target query must come
back ``not_found``; a post-reload response must carry the new weights'
version) independently of how good the trained model happens to be.
:class:`OracleRankedGrounder` serves the scenario registry's answer
table (:func:`repro.scenarios.registry.answer_table`) verbatim as
ranked :class:`~repro.core.GroundingResponse` objects, with a fixed
simulated latency and a tiny ``version``/``bias`` "weight" state so hot
reloads are observable in responses and the checksum handshake
round-trips — the structured-protocol analogue of
:class:`~repro.serve.replica.LatencyGrounder`.

The builder is module-level and its kwargs (an answer dict of numpy
arrays) are picklable, so it works as a
:class:`~repro.serve.replica.ReplicaSpec` builder under the ``spawn``
start method.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.response import GroundingResponse
from repro.serve.cache import image_digest
from repro.text.tokenizer import normalize_query

from repro.scenarios.registry import RankedAnswer


class OracleRankedGrounder:
    """Answer (image, query) batches from a ground-truth table.

    Every response carries ``version`` (the reloadable "weight"), so a
    soak's ``post_reload_check`` can verify which weights produced it,
    and ``bias`` exists purely to give the checksum handshake more than
    one tensor to hash.  Unknown requests answer ``not_found`` rather
    than raising — a trace built from a different sample pool is a
    test bug the soak's correctness assertions will surface, not a
    reason to kill a replica.
    """

    def __init__(self, answers: Dict[Tuple[str, str], RankedAnswer],
                 latency: float = 0.002, version: float = 0.0,
                 bias: float = 1.0, threshold: float = 0.5):
        # Keys are normalised the same way the serve front door
        # normalises incoming queries, so a table built from raw sample
        # text still matches the requests replicas actually see.
        self.answers = {(digest, normalize_query(query)): answer
                        for (digest, query), answer in answers.items()}
        self.latency = float(latency)
        self.version = float(version)
        self.bias = float(bias)
        self.threshold = float(threshold)
        self.batches = 0

    def __call__(self, samples: Sequence) -> list:
        if self.latency > 0:
            time.sleep(self.latency)
        self.batches += 1
        responses = []
        for sample in samples:
            key = (image_digest(sample.image),
                   normalize_query(sample.query))
            boxes, scores, not_found = self.answers.get(
                key, (np.empty((0, 4)), np.empty((0,)), True))
            responses.append(GroundingResponse(
                boxes=np.asarray(boxes, dtype=np.float64).reshape(-1, 4),
                scores=np.asarray(scores, dtype=np.float64).reshape(-1),
                not_found=bool(not_found),
                threshold=self.threshold,
                version=self.version,
            ))
        return responses

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"version": np.array([self.version]),
                "bias": np.array([self.bias])}

    def load_state_dict(self, state) -> None:
        self.version = float(np.asarray(state["version"]).reshape(-1)[0])
        self.bias = float(np.asarray(state["bias"]).reshape(-1)[0])


def build_oracle_grounder(
    answers: Dict[Tuple[str, str], RankedAnswer],
    latency: float = 0.002, version: float = 0.0, bias: float = 1.0,
    threshold: float = 0.5,
) -> OracleRankedGrounder:
    """Spawn-picklable builder for oracle replicas."""
    return OracleRankedGrounder(answers, latency=latency, version=version,
                                bias=bias, threshold=threshold)
