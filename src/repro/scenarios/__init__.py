"""Registry-driven workload scenarios beyond the plain RefCOCO regime.

Importing this package registers the three scenario families —

* ``driving``  — road scenes with ego-perspective expressions
  ("the second car on my right", "the pedestrian past the blue truck");
* ``crowded``  — dense distractor scenes emitting multi-target and
  verified no-target queries, which force the structured
  :class:`~repro.core.GroundingResponse` protocol end to end;
* ``weak``     — image-level pairing supervision only: contrastive
  two-tower training, pointing-game eval;
* ``compositional`` — multi-sentence and multi-clause queries (anaphora,
  nested relatives, negation, conjunction), generated and verified
  through the :mod:`repro.lang` relation-tree parser;

— plus one named *trace mix* per scenario and a combined ``mixed``
blend, so serving harnesses (``serve-fleet --trace-mix``, the soak
benchmarks) can replay heterogeneous traffic with per-scenario latency
and correctness accounting.  See :mod:`repro.scenarios.registry` for
the registry/lookup API and :mod:`repro.scenarios.oracle` for the
ground-truth replica grounder used by soak correctness assertions.
"""

from repro.scenarios.registry import (
    RankedAnswer,
    Scenario,
    ScenarioSample,
    TraceMix,
    UnknownScenarioError,
    answer_table,
    available_scenarios,
    available_trace_mixes,
    build_trace_mix,
    get_scenario,
    get_trace_mix,
    ranked_answer,
    register_scenario,
    register_trace_mix,
)

# Importing the scenario modules registers them.
from repro.scenarios import crowded, driving, weak  # noqa: F401  (registration)
from repro.scenarios import compositional  # noqa: F401  (registration)
from repro.scenarios.compositional import (
    build_compositional,
    generate_compositional_scene,
)
from repro.scenarios.crowded import build_crowded, generate_crowded_scene
from repro.scenarios.driving import (
    DrivingConstraints,
    DrivingExpressionGenerator,
    DrivingSceneGenerator,
    build_driving,
    ego_distance,
    ego_side,
)
from repro.scenarios.oracle import OracleRankedGrounder, build_oracle_grounder
from repro.scenarios.weak import (
    WeakContrastiveModel,
    build_weak,
    contrastive_loss,
    pointing_accuracy,
    train_weak_model,
)

#: One mix per scenario plus the combined blend the acceptance soak uses.
register_trace_mix(TraceMix(name="driving", weights={"driving": 1.0}))
register_trace_mix(TraceMix(name="crowded", weights={"crowded": 1.0}))
register_trace_mix(TraceMix(name="weak", weights={"weak": 1.0}))
register_trace_mix(TraceMix(
    name="mixed",
    weights={"driving": 1.0, "crowded": 1.0, "weak": 1.0},
))

__all__ = [
    "Scenario",
    "ScenarioSample",
    "TraceMix",
    "RankedAnswer",
    "UnknownScenarioError",
    "register_scenario",
    "register_trace_mix",
    "available_scenarios",
    "available_trace_mixes",
    "get_scenario",
    "get_trace_mix",
    "ranked_answer",
    "answer_table",
    "build_trace_mix",
    "build_driving",
    "build_crowded",
    "build_weak",
    "build_compositional",
    "generate_crowded_scene",
    "generate_compositional_scene",
    "DrivingSceneGenerator",
    "DrivingExpressionGenerator",
    "DrivingConstraints",
    "ego_side",
    "ego_distance",
    "WeakContrastiveModel",
    "train_weak_model",
    "contrastive_loss",
    "pointing_accuracy",
    "OracleRankedGrounder",
    "build_oracle_grounder",
]
