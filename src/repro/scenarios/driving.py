"""Driving scenario: road scenes with ego-perspective expressions.

Scenes place vehicles, pedestrians and traffic cones on a road canvas
viewed from an ego camera at the bottom-centre of the image — the
viewpoint every expression is anchored to.  The grammar composes four
ego-relative selectors on top of the category/colour attributes the
base grammar uses:

* **side** — "to my left" / "to my right" / "ahead of me", decided by
  the object centre against the ego column with a safety margin;
* **ordinal distance** — "the nearest car", "the second car", ordered
  by Euclidean distance from the ego point with a minimum gap between
  consecutive ranks so ties can never flip the referent;
* **depth relation** — "past the blue truck" (farther from the ego
  than the anchor) / "before the blue truck" (nearer), against an
  anchor that is itself unique by category+colour;
* **colour** — as in the base grammar.

Like :mod:`repro.data.expressions`, every emitted expression is
verified to denote exactly one object under
:meth:`DrivingConstraints.resolve` before it is rendered, so ground
truth stays unambiguous by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.render import render_scene
from repro.data.scenes import COLORS, Scene, SceneObject
from repro.detection.boxes import iou_matrix
from repro.scenarios.registry import (
    Scenario,
    ScenarioSample,
    register_scenario,
)
from repro.text.tokenizer import tokenize

#: Categories that appear in road scenes (truck/cone glyphs live in
#: :data:`repro.data.render.GLYPHS` alongside the base categories).
DRIVING_CATEGORIES: Tuple[str, ...] = ("car", "truck", "person", "cone")

#: How each category is spoken from the driver's seat.
NOUNS: Dict[str, str] = {
    "car": "car",
    "truck": "truck",
    "person": "pedestrian",
    "cone": "cone",
}

ORDINAL_WORDS = ("nearest", "second", "third", "fourth")

#: Pixel margin for the side decision (an object straddling the ego
#: column within this margin is neither clearly left nor right).
_SIDE_MARGIN = 3.0
#: Minimum ego-distance gap between consecutive ordinal ranks.
_ORDINAL_GAP = 3.0
#: Minimum ego-distance difference for a depth ("past"/"before") claim.
_DEPTH_MARGIN = 3.0


def ego_point(scene: Scene) -> Tuple[float, float]:
    """The camera position: bottom-centre of the canvas."""
    return (scene.width / 2.0, float(scene.height))


def ego_distance(obj: SceneObject, scene: Scene) -> float:
    """Euclidean distance from the ego point to the object centre."""
    ex, ey = ego_point(scene)
    cx, cy = obj.center
    return float(np.hypot(cx - ex, cy - ey))


def ego_side(obj: SceneObject, scene: Scene) -> Optional[str]:
    """``"left"`` / ``"right"`` of the ego column, or ``None`` if too close
    to call with the safety margin."""
    ex, _ = ego_point(scene)
    cx, _ = obj.center
    if cx < ex - _SIDE_MARGIN:
        return "left"
    if cx > ex + _SIDE_MARGIN:
        return "right"
    return None


@dataclass(frozen=True)
class DrivingConstraints:
    """An ego-anchored compositional reference.

    ``resolve`` applies the filters in a fixed order: category, colour,
    side, depth relation against the anchor, and finally the ordinal
    rank by ego distance over whatever candidates remain.
    """

    category: str
    color: Optional[str] = None
    side: Optional[str] = None           # "left" | "right"
    #: 1-based rank by ego distance ("nearest" = 1) among candidates.
    ordinal: Optional[int] = None
    relation: Optional[str] = None       # "past" | "before"
    anchor_category: Optional[str] = None
    anchor_color: Optional[str] = None

    def resolve(self, scene: Scene) -> List[SceneObject]:
        candidates = [o for o in scene.objects
                      if o.category == self.category]
        if self.color is not None:
            candidates = [o for o in candidates if o.color == self.color]
        if self.side is not None:
            candidates = [o for o in candidates
                          if ego_side(o, scene) == self.side]
        if self.relation is not None and candidates:
            candidates = self._apply_relation(scene, candidates)
        if self.ordinal is not None and candidates:
            candidates = self._apply_ordinal(scene, candidates)
        return candidates

    def _apply_relation(self, scene: Scene,
                        candidates: List[SceneObject]) -> List[SceneObject]:
        anchors = [
            o for o in scene.objects
            if o.category == self.anchor_category
            and (self.anchor_color is None or o.color == self.anchor_color)
        ]
        if len(anchors) != 1:
            return []
        anchor_dist = ego_distance(anchors[0], scene)
        if self.relation == "past":
            kept = [o for o in candidates if o is not anchors[0]
                    and ego_distance(o, scene) > anchor_dist + _DEPTH_MARGIN]
        else:  # "before"
            kept = [o for o in candidates if o is not anchors[0]
                    and ego_distance(o, scene) < anchor_dist - _DEPTH_MARGIN]
        if not kept:
            return []
        # The nearest satisfier to the anchor's depth wins (and must win
        # by the same margin, or the reference is ambiguous).
        gaps = [abs(ego_distance(o, scene) - anchor_dist) for o in kept]
        order = np.argsort(gaps)
        if len(kept) > 1 and gaps[order[1]] - gaps[order[0]] < _DEPTH_MARGIN:
            return []
        return [kept[int(order[0])]]

    def _apply_ordinal(self, scene: Scene,
                       candidates: List[SceneObject]) -> List[SceneObject]:
        rank = self.ordinal - 1
        if rank < 0 or rank >= len(candidates):
            return []
        distances = np.asarray(
            [ego_distance(o, scene) for o in candidates])
        order = np.argsort(distances)
        ordered = distances[order]
        # Ranks must be separated by a real gap on both sides, so a
        # pixel of jitter cannot swap "second" and "third".
        if rank > 0 and ordered[rank] - ordered[rank - 1] < _ORDINAL_GAP:
            return []
        if rank + 1 < len(ordered) \
                and ordered[rank + 1] - ordered[rank] < _ORDINAL_GAP:
            return []
        return [candidates[int(order[rank])]]


class DrivingSceneGenerator:
    """Sample road scenes: rejection-placed driving-category objects."""

    def __init__(self, height: int = 48, width: int = 72,
                 min_objects: int = 5, max_objects: int = 8,
                 min_size: int = 8, max_size: int = 20,
                 max_overlap_iou: float = 0.08,
                 max_place_attempts: int = 60):
        self.height = height
        self.width = width
        self.min_objects = min_objects
        self.max_objects = max_objects
        self.min_size = min_size
        self.max_size = max_size
        self.max_overlap_iou = max_overlap_iou
        self.max_place_attempts = max_place_attempts

    def generate(self, rng: np.random.Generator) -> Scene:
        scene = Scene(self.height, self.width)
        count = int(rng.integers(self.min_objects, self.max_objects + 1))
        # At least two of one vehicle category, so ordinal and depth
        # references have something to rank.
        main = str(rng.choice(("car", "truck")))
        layout = [main, main]
        layout += [str(rng.choice(DRIVING_CATEGORIES))
                   for _ in range(max(0, count - 2))]
        for category in layout:
            placed = self._place(scene, category, rng)
            if placed is not None:
                scene.objects.append(placed)
        if len(scene.objects) < 3:
            return self.generate(rng)
        return scene

    def _place(self, scene: Scene, category: str,
               rng: np.random.Generator) -> Optional[SceneObject]:
        existing = scene.boxes()
        for _ in range(self.max_place_attempts):
            size = float(rng.integers(self.min_size, self.max_size + 1))
            aspect = {"car": 1.6, "truck": 1.4, "person": 0.5,
                      "cone": 0.7}[category]
            width = max(4.0, size * aspect)
            height = size
            if width >= self.width - 2 or height >= self.height - 2:
                continue
            x1 = float(rng.uniform(1.0, self.width - width - 1.0))
            y1 = float(rng.uniform(1.0, self.height - height - 1.0))
            box = np.asarray([x1, y1, x1 + width, y1 + height])
            if len(existing) \
                    and iou_matrix(box[None], existing).max() \
                    > self.max_overlap_iou:
                continue
            return SceneObject(category=category,
                               color=str(rng.choice(COLORS)), box=box)
        return None


class DrivingExpressionGenerator:
    """Verified-unique ego-perspective expressions."""

    def generate(self, scene: Scene, target: SceneObject,
                 rng: np.random.Generator) -> Optional[str]:
        constraints = self._find_unique(scene, target, rng)
        if constraints is None:
            return None
        return self._render(constraints, rng)

    # ------------------------------------------------------------------
    def _candidates(self, scene: Scene, target: SceneObject,
                    rng: np.random.Generator) -> List[DrivingConstraints]:
        base = DrivingConstraints(category=target.category)
        color = replace(base, color=target.color)
        options = [base, color]

        side = ego_side(target, scene)
        if side is not None:
            options.append(replace(base, side=side))
            options.append(replace(color, side=side))

        group = [o for o in scene.objects if o.category == target.category]
        distances = sorted(ego_distance(o, scene) for o in group)
        target_rank = distances.index(ego_distance(target, scene)) + 1
        if target_rank <= len(ORDINAL_WORDS):
            options.append(replace(base, ordinal=target_rank))
            if side is not None:
                side_group = [o for o in group
                              if ego_side(o, scene) == side]
                side_distances = sorted(
                    ego_distance(o, scene) for o in side_group)
                side_rank = side_distances.index(
                    ego_distance(target, scene)) + 1
                if side_rank <= len(ORDINAL_WORDS):
                    options.append(
                        replace(base, side=side, ordinal=side_rank))

        options.extend(self._depth_candidates(scene, target, rng))
        return options

    def _depth_candidates(self, scene: Scene, target: SceneObject,
                          rng: np.random.Generator,
                          ) -> List[DrivingConstraints]:
        results: List[DrivingConstraints] = []
        target_dist = ego_distance(target, scene)
        anchors = [o for o in scene.objects if o is not target]
        rng.shuffle(anchors)
        for anchor in anchors[:4]:
            unique = [o for o in scene.objects
                      if o.category == anchor.category
                      and o.color == anchor.color]
            if len(unique) != 1:
                continue
            gap = target_dist - ego_distance(anchor, scene)
            if gap > _DEPTH_MARGIN:
                relation = "past"
            elif gap < -_DEPTH_MARGIN:
                relation = "before"
            else:
                continue
            results.append(DrivingConstraints(
                category=target.category, relation=relation,
                anchor_category=anchor.category, anchor_color=anchor.color))
            results.append(DrivingConstraints(
                category=target.category, color=target.color,
                relation=relation, anchor_category=anchor.category,
                anchor_color=anchor.color))
        return results

    def _find_unique(self, scene: Scene, target: SceneObject,
                     rng: np.random.Generator,
                     ) -> Optional[DrivingConstraints]:
        options = [c for c in self._candidates(scene, target, rng)
                   if self._denotes(scene, c, target)]
        if not options:
            return None
        options.sort(key=self._complexity)
        simplest = self._complexity(options[0])
        pool = [c for c in options if self._complexity(c) <= simplest + 1]
        return pool[int(rng.integers(0, len(pool)))]

    @staticmethod
    def _denotes(scene: Scene, constraints: DrivingConstraints,
                 target: SceneObject) -> bool:
        resolved = constraints.resolve(scene)
        return len(resolved) == 1 and resolved[0] is target

    @staticmethod
    def _complexity(constraints: DrivingConstraints) -> int:
        return sum(attr is not None for attr in (
            constraints.color, constraints.side, constraints.ordinal,
            constraints.relation))

    # ------------------------------------------------------------------
    def _render(self, c: DrivingConstraints,
                rng: np.random.Generator) -> str:
        words = ["the"]
        if c.ordinal is not None:
            words.append(ORDINAL_WORDS[c.ordinal - 1])
        if c.color is not None:
            words.append(c.color)
        words.append(NOUNS[c.category])
        phrase = " ".join(words)
        if c.side is not None:
            phrase = f"{phrase} {self._side_phrase(c.side, rng)}"
        if c.relation is not None:
            anchor = f"the {c.anchor_color} {NOUNS[c.anchor_category]}"
            joiner = "past" if c.relation == "past" else "before"
            phrase = f"{phrase} {joiner} {anchor}"
        return phrase

    @staticmethod
    def _side_phrase(side: str, rng: np.random.Generator) -> str:
        variants = {
            "left": ("to my left", "on my left"),
            "right": ("to my right", "on my right"),
        }[side]
        return str(rng.choice(variants))


def build_driving(num_scenes: int,
                  rng: np.random.Generator,
                  ) -> Dict[str, List[ScenarioSample]]:
    """Generate the driving scenario's eval split."""
    scene_gen = DrivingSceneGenerator()
    expr_gen = DrivingExpressionGenerator()
    samples: List[ScenarioSample] = []
    guard = 0
    while len(samples) < num_scenes * 2:
        guard += 1
        if guard > max(50, num_scenes * 50):
            raise RuntimeError(
                "driving scenario generation stalled; the ego grammar "
                "cannot uniquely describe enough targets")
        scene = scene_gen.generate(rng)
        image = render_scene(scene, rng=rng)
        indices = list(range(len(scene.objects)))
        rng.shuffle(indices)
        produced = 0
        for index in indices:
            if produced >= 2:
                break
            target = scene.objects[index]
            query = expr_gen.generate(scene, target, rng)
            if query is None:
                continue
            samples.append(ScenarioSample(
                image=image, query=query, tokens=tokenize(query),
                target_box=target.box.copy(), target_index=index,
                scene=scene, split="eval", query_type="single",
                all_target_boxes=target.box.copy().reshape(1, 4),
                scenario="driving"))
            produced += 1
    return {"eval": samples[: num_scenes * 2]}


register_scenario(Scenario(
    name="driving",
    description=("road scenes with ego-perspective expressions: side, "
                 "ordinal distance and past/before depth relations"),
    build=build_driving,
))
