"""Scenario registry: named workload generators plus trace mixes.

A *scenario* is a named generator of grounding workloads beyond the
plain RefCOCO-style "one described object, always present" regime: road
scenes with ego-perspective language (``driving``), dense scenes whose
queries may match several objects or none (``crowded``), and an
image-level-supervision-only split (``weak``).  Each registers itself
here at import time (importing :mod:`repro.scenarios` pulls them all
in), so harnesses — the table runners, the soak CLI, the benchmarks —
enumerate workloads by name instead of hard-coding them.

Every scenario builds deterministic splits of
:class:`ScenarioSample` — a :class:`~repro.data.GroundingSample`
extended with the *query type* (``single`` / ``multi`` / ``no_target``
/ ``weak_pair``), the full set of satisfying boxes (several for multi
queries, none for no-target queries), and the scenario tag.  The same
seed always yields bit-identical scenes and expressions (a regression
test asserts this per registered scenario).

A *trace mix* turns scenario samples into serving traffic: a named
blend of scenarios replayed as one Poisson-arrival
:class:`~repro.serve.trace.TimedRequest` stream, each request tagged
with its scenario and with ``expect_not_found`` for no-target queries,
plus an *answer table* mapping ``(image_digest, query)`` to the ground
truth ranked response — what an oracle replica fleet serves so soak
runs can assert correctness (no false "found") independently of model
quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.refcoco import GroundingSample
from repro.serve.cache import image_digest
from repro.serve.trace import TimedRequest
from repro.text.tokenizer import normalize_query
from repro.utils.seeding import spawn_rng

#: (boxes (k, 4), scores (k,), not_found) — the oracle ground truth for
#: one query, convertible to a ranked GroundingResponse.
RankedAnswer = Tuple[np.ndarray, np.ndarray, bool]


@dataclass
class ScenarioSample(GroundingSample):
    """A grounding sample with structured-answer ground truth.

    ``query_type`` is one of ``"single"`` (exactly one referent, the
    classic regime), ``"multi"`` (several objects satisfy the query),
    ``"no_target"`` (nothing does — the only correct answer is
    ``not_found``) or ``"weak_pair"`` (image-level pairing, no box
    supervision at all).  ``all_target_boxes`` holds every satisfying
    box, ranked; for ``single`` it is just ``[target_box]`` and for
    ``no_target`` it is empty.
    """

    query_type: str = "single"
    all_target_boxes: np.ndarray = field(
        default_factory=lambda: np.empty((0, 4)))
    scenario: str = ""

    @property
    def is_no_target(self) -> bool:
        return self.query_type == "no_target"


#: A scenario's ``build`` returns named splits of samples.  Most emit
#: only ``eval``; ``weak`` also emits a box-free ``train`` split.
ScenarioBuilder = Callable[[int, Optional[np.random.Generator]],
                           Dict[str, List[ScenarioSample]]]


@dataclass(frozen=True)
class Scenario:
    """One registered workload generator."""

    name: str
    description: str
    #: ``build(num_scenes, rng)`` -> split name -> samples.  Passing
    #: ``rng=None`` spawns the scenario's own deterministic stream, so
    #: ``build(n, None)`` is bit-reproducible run to run.
    build: ScenarioBuilder

    def build_splits(self, num_scenes: int,
                     rng: Optional[np.random.Generator] = None,
                     ) -> Dict[str, List[ScenarioSample]]:
        if rng is None:
            rng = spawn_rng(f"scenario-{self.name}")
        return self.build(num_scenes, rng)

    def eval_samples(self, num_scenes: int,
                     rng: Optional[np.random.Generator] = None,
                     ) -> List[ScenarioSample]:
        return self.build_splits(num_scenes, rng)["eval"]


class UnknownScenarioError(KeyError):
    """Lookup of a name that is not in the registry."""

    def __init__(self, kind: str, name: str, available: Sequence[str]):
        self.name = name
        self.available = tuple(available)
        super().__init__(
            f"unknown {kind} {name!r}; available: "
            f"{', '.join(available) or '(none registered)'}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (idempotent per name)."""
    _SCENARIOS[scenario.name] = scenario
    return scenario


def available_scenarios() -> List[str]:
    return list(_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError("scenario", name,
                                   available_scenarios()) from None


# ----------------------------------------------------------------------
# Oracle answer tables
# ----------------------------------------------------------------------
def ranked_answer(sample: ScenarioSample) -> RankedAnswer:
    """Ground-truth ranked answer for one scenario sample.

    Boxes come from ``all_target_boxes`` in rank order with linearly
    decreasing confidences below 1.0; a no-target sample answers with
    zero boxes and ``not_found=True``.
    """
    boxes = np.asarray(sample.all_target_boxes,
                       dtype=np.float64).reshape(-1, 4)
    if sample.is_no_target or len(boxes) == 0:
        return (np.empty((0, 4)), np.empty((0,)), True)
    scores = np.linspace(1.0, 0.5, num=len(boxes))
    return (boxes, scores, False)


def answer_table(samples: Sequence[ScenarioSample],
                 ) -> Dict[Tuple[str, str], RankedAnswer]:
    """``(image_digest, query) -> ranked answer`` over ``samples``.

    The same keying as both serving cache tiers — queries are
    normalised exactly like the serve front door normalises incoming
    requests, so an oracle replica can answer any request drawn from
    these samples however the caller spelled it.
    """
    return {
        (image_digest(sample.image), normalize_query(sample.query)):
            ranked_answer(sample)
        for sample in samples
    }


# ----------------------------------------------------------------------
# Trace mixes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceMix:
    """A named blend of scenarios replayed as one request stream."""

    name: str
    #: scenario name -> relative weight (normalised at build time).
    weights: Dict[str, float]


_TRACE_MIXES: Dict[str, TraceMix] = {}


def register_trace_mix(mix: TraceMix) -> TraceMix:
    for scenario in mix.weights:
        get_scenario(scenario)  # fail fast on a bad registration
    _TRACE_MIXES[mix.name] = mix
    return mix


def available_trace_mixes() -> List[str]:
    return list(_TRACE_MIXES)


def get_trace_mix(name: str) -> TraceMix:
    try:
        return _TRACE_MIXES[name]
    except KeyError:
        raise UnknownScenarioError("trace mix", name,
                                   available_trace_mixes()) from None


def build_trace_mix(
    name: str,
    num_requests: int,
    rate_qps: float,
    scenes_per_scenario: int = 6,
    repeat_fraction: float = 0.3,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[List[TimedRequest], Dict[Tuple[str, str], RankedAnswer]]:
    """Build a scenario-tagged Poisson trace plus its oracle answers.

    Requests draw from each scenario's eval pool proportionally to the
    mix weights; with probability ``repeat_fraction`` a request repeats
    an earlier one verbatim (scenario tag included), exercising the
    cache tiers exactly like :func:`~repro.serve.trace.timed_trace`.
    No-target samples carry ``expect_not_found=True`` so the soak
    harness can assert a correct "not found" came back.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError("repeat_fraction must be in [0, 1]")
    mix = get_trace_mix(name)
    rng = rng if rng is not None else spawn_rng(f"trace-mix-{name}")

    pools: List[Tuple[str, List[ScenarioSample]]] = []
    answers: Dict[Tuple[str, str], RankedAnswer] = {}
    for scenario_name in mix.weights:
        samples = get_scenario(scenario_name).eval_samples(
            scenes_per_scenario, rng=rng)
        if not samples:
            raise ValueError(
                f"scenario {scenario_name!r} produced no eval samples")
        pools.append((scenario_name, samples))
        answers.update(answer_table(samples))

    weights = np.asarray([mix.weights[n] for n, _ in pools], dtype=np.float64)
    weights = weights / weights.sum()

    trace: List[TimedRequest] = []
    arrivals = np.cumsum(rng.exponential(1.0 / rate_qps, size=num_requests))
    for arrival in arrivals:
        if trace and rng.random() < repeat_fraction:
            earlier = trace[int(rng.integers(len(trace)))]
            trace.append(TimedRequest(
                image=earlier.image, query=earlier.query,
                arrival=float(arrival), scenario=earlier.scenario,
                expect_not_found=earlier.expect_not_found))
            continue
        scenario_name, pool = pools[
            int(rng.choice(len(pools), p=weights))]
        sample = pool[int(rng.integers(len(pool)))]
        trace.append(TimedRequest(
            image=sample.image, query=sample.query, arrival=float(arrival),
            scenario=scenario_name,
            expect_not_found=sample.is_no_target))
    return trace, answers
