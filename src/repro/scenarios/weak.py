"""Weak scenario: image-level pairing supervision, no boxes at train time.

The train split contains only (image, expression) *pairs* — every
``ScenarioSample`` has a zeroed ``target_box`` and ``target_index=-1``
(``query_type="weak_pair"``), so nothing downstream can accidentally
train on localisation labels.  A two-tower contrastive model
(:class:`WeakContrastiveModel`) learns a joint embedding from those
pairs alone with a symmetric in-batch InfoNCE loss.

Grounding then emerges at *eval* time without ever having trained on a
box: each eval expression is scored against per-object crops of its
scene and the best-scoring object is the prediction
(:func:`pointing_accuracy`) — the standard weakly-supervised grounding
protocol ("pointing game").  Eval samples keep their ground-truth boxes
purely for scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.data.expressions import ExpressionGenerator
from repro.data.refcoco import GroundingSample
from repro.data.render import render_scene
from repro.data.scenes import SceneGenerator
from repro.nn import Conv2d, Embedding, GlobalAvgPool2d, Linear, Module, \
    softmax_cross_entropy
from repro.optim import Adam
from repro.scenarios.registry import (
    Scenario,
    ScenarioSample,
    register_scenario,
)
from repro.text.tokenizer import tokenize
from repro.text.vocab import Vocabulary
from repro.utils.seeding import spawn_rng


class WeakContrastiveModel(Module):
    """Two-tower image/expression embedding model.

    A small strided CNN pools images (or object crops — the towers are
    resolution-agnostic) to a D-dim embedding; expressions are embedded
    by a masked mean over token embeddings.  Both towers L2-normalise,
    so similarity is a cosine score scaled by a learned-free inverse
    temperature at loss time.
    """

    def __init__(self, vocab_size: int, embed_dim: int = 24,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else spawn_rng("weak-model")
        self.embed_dim = embed_dim
        self.conv1 = Conv2d(3, 16, 3, stride=2, padding=1, rng=rng)
        self.conv2 = Conv2d(16, embed_dim, 3, stride=2, padding=1, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.image_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.token_embed = Embedding(vocab_size, embed_dim, rng=rng)
        self.text_proj = Linear(embed_dim, embed_dim, rng=rng)

    @staticmethod
    def _l2_normalize(features: Tensor) -> Tensor:
        norm = (features * features).sum(axis=-1, keepdims=True) + 1e-8
        return features / norm.sqrt()

    def encode_images(self, images: np.ndarray) -> Tensor:
        """(n, 3, H, W) pixels -> (n, D) unit embeddings."""
        hidden = self.conv1(Tensor(np.asarray(images))).relu()
        hidden = self.conv2(hidden).relu()
        pooled = self.pool(hidden)
        return self._l2_normalize(self.image_proj(pooled))

    def encode_texts(self, token_ids: np.ndarray,
                     token_mask: np.ndarray) -> Tensor:
        """(n, L) ids + mask -> (n, D) unit embeddings (masked mean)."""
        embedded = self.token_embed(np.asarray(token_ids))
        mask = Tensor(np.asarray(token_mask, dtype=float)[..., None])
        counts = np.maximum(
            np.asarray(token_mask, dtype=float).sum(axis=-1, keepdims=True),
            1.0)
        mean = (embedded * mask).sum(axis=1) / Tensor(counts)
        return self._l2_normalize(self.text_proj(mean))

    def forward(self, images: np.ndarray, token_ids: np.ndarray,
                token_mask: np.ndarray) -> Tensor:
        """(n, n) cosine similarity of every image against every text."""
        image_emb = self.encode_images(images)
        text_emb = self.encode_texts(token_ids, token_mask)
        return image_emb.matmul(text_emb.T)


def contrastive_loss(similarity: Tensor,
                     temperature: float = 0.1) -> Tensor:
    """Symmetric in-batch InfoNCE over an (n, n) similarity matrix.

    Row ``i``'s positive is column ``i`` (the paired expression) and
    vice versa — the only supervision is *which image goes with which
    sentence*, never where the referent is.
    """
    n = similarity.shape[0]
    targets = np.arange(n)
    logits = similarity * (1.0 / temperature)
    image_to_text = softmax_cross_entropy(logits, targets)
    text_to_image = softmax_cross_entropy(logits.T, targets)
    return (image_to_text + text_to_image) * 0.5


def _encode_batch(samples: Sequence[GroundingSample], vocab: Vocabulary,
                  max_length: int):
    ids, masks = zip(*(vocab.encode(s.tokens, max_length) for s in samples))
    return np.stack(ids), np.stack(masks)


def train_weak_model(
    samples: Sequence[ScenarioSample],
    vocab: Vocabulary,
    steps: int = 30,
    batch_size: int = 8,
    learning_rate: float = 5e-3,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, object]:
    """Fit a :class:`WeakContrastiveModel` on pairing-only samples.

    Refuses samples that carry box supervision (``target_index >= 0``)
    — the scenario's contract is that eval never sees a box at train
    time, and this guard makes violating it loud.
    """
    if any(s.target_index >= 0 for s in samples):
        raise ValueError(
            "weak training received box-supervised samples; the weak "
            "scenario trains on image-level pairs only")
    rng = rng if rng is not None else spawn_rng("weak-train")
    max_length = max(len(s.tokens) for s in samples)
    model = WeakContrastiveModel(len(vocab), rng=rng)
    optimizer = Adam(model.parameters(), lr=learning_rate)
    losses: List[float] = []
    for _ in range(steps):
        batch_indices = rng.choice(
            len(samples), size=min(batch_size, len(samples)), replace=False)
        batch = [samples[int(i)] for i in batch_indices]
        images = np.stack([s.image for s in batch])
        token_ids, token_mask = _encode_batch(batch, vocab, max_length)
        model.zero_grad()
        loss = contrastive_loss(model(images, token_ids, token_mask))
        loss.backward()
        optimizer.step()
        losses.append(float(loss.item()))
    return {"model": model, "losses": losses, "max_length": max_length}


def _crop(image: np.ndarray, box: np.ndarray) -> np.ndarray:
    """Cut one object's pixels out of a (3, H, W) image."""
    _, height, width = image.shape
    x1 = int(np.clip(np.floor(box[0]), 0, width - 2))
    y1 = int(np.clip(np.floor(box[1]), 0, height - 2))
    x2 = int(np.clip(np.ceil(box[2]), x1 + 2, width))
    y2 = int(np.clip(np.ceil(box[3]), y1 + 2, height))
    return image[:, y1:y2, x1:x2]


def pointing_accuracy(model: WeakContrastiveModel,
                      samples: Sequence[ScenarioSample],
                      vocab: Vocabulary, max_length: int) -> float:
    """Fraction of eval queries whose best-scoring object crop is the target.

    The "pointing game" protocol: the model never predicted a box — it
    only ranks the scene's objects by crop/expression similarity.
    """
    if not samples:
        return 0.0
    correct = 0
    with no_grad():
        for sample in samples:
            token_ids, token_mask = _encode_batch(
                [sample], vocab, max_length)
            text_emb = model.encode_texts(token_ids, token_mask).data[0]
            scores = []
            for obj in sample.scene.objects:
                crop = _crop(sample.image, obj.box)[None]
                scores.append(
                    float(model.encode_images(crop).data[0] @ text_emb))
            if int(np.argmax(scores)) == sample.target_index:
                correct += 1
    return correct / len(samples)


def build_weak(num_scenes: int,
               rng: np.random.Generator,
               ) -> Dict[str, List[ScenarioSample]]:
    """Pairing-only train split plus a box-scored eval split."""
    scene_gen = SceneGenerator(same_type_density=2.5, rng=rng)
    expr_gen = ExpressionGenerator("refcoco", rng=rng)
    train: List[ScenarioSample] = []
    eval_split: List[ScenarioSample] = []
    guard = 0
    want_train, want_eval = num_scenes * 2, num_scenes
    while len(train) < want_train or len(eval_split) < want_eval:
        guard += 1
        if guard > max(50, num_scenes * 50):
            raise RuntimeError("weak scenario generation stalled")
        scene = scene_gen.generate(rng=rng)
        image = render_scene(scene, rng=rng)
        indices = list(range(len(scene.objects)))
        rng.shuffle(indices)
        produced = None
        for index in indices:
            target = scene.objects[index]
            query = expr_gen.generate(scene, target, rng=rng)
            if query is not None:
                produced = (index, target, query)
                break
        if produced is None:
            continue
        index, target, query = produced
        if len(train) < want_train:
            # Image-level pair: the box never leaves the generator.
            train.append(ScenarioSample(
                image=image, query=query, tokens=tokenize(query),
                target_box=np.zeros(4), target_index=-1, scene=scene,
                split="train", query_type="weak_pair",
                all_target_boxes=np.empty((0, 4)), scenario="weak"))
        else:
            eval_split.append(ScenarioSample(
                image=image, query=query, tokens=tokenize(query),
                target_box=target.box.copy(), target_index=index,
                scene=scene, split="eval", query_type="single",
                all_target_boxes=target.box.copy().reshape(1, 4),
                scenario="weak"))
    return {"train": train, "eval": eval_split}


register_scenario(Scenario(
    name="weak",
    description=("image-level pairing supervision only: contrastive "
                 "two-tower training, pointing-game eval (no boxes at "
                 "train time)"),
    build=build_weak,
))
