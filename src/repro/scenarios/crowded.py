"""Crowded scenario: dense scenes, multi-target and no-target queries.

Scenes pack 8–13 objects with a relaxed overlap budget, so most queries
face heavy distractor pressure.  Three query types are emitted:

* ``single`` — a verified-unique referring expression from the base
  grammar (:class:`~repro.data.expressions.ExpressionGenerator`);
* ``multi`` — "all the red cars": a category(+colour) filter that
  matches **several** objects; the structured answer ranks every
  matching box;
* ``no_target`` — "the purple dog" in a scene verified to contain no
  purple dog; the only correct structured answer is ``not_found``.

The multi/no-target types are exactly what the legacy single-box
protocol cannot express — they force the ranked
:class:`~repro.core.GroundingResponse` protocol end to end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.expressions import ExpressionGenerator
from repro.data.render import render_scene
from repro.data.scenes import CATEGORIES, COLORS, Scene, SceneGenerator
from repro.scenarios.registry import (
    Scenario,
    ScenarioSample,
    register_scenario,
)
from repro.text.tokenizer import tokenize

#: Target object count for a "crowded" scene.
_MIN_OBJECTS = 8
_MAX_OBJECTS = 13

#: Fractions of each query type in the eval split.
QUERY_TYPE_MIX: Dict[str, float] = {
    "single": 0.5,
    "multi": 0.25,
    "no_target": 0.25,
}


def generate_crowded_scene(rng: np.random.Generator) -> Scene:
    """A dense scene: base generation plus extra rejection-placed objects."""
    gen = SceneGenerator(same_type_density=4.5, max_overlap_iou=0.25,
                         min_size=8, max_size=20, rng=rng)
    scene = gen.generate(rng=rng)
    want = int(rng.integers(_MIN_OBJECTS, _MAX_OBJECTS + 1))
    attempts = 0
    while len(scene.objects) < want and attempts < 4 * want:
        attempts += 1
        placed = gen._place_object(scene, str(rng.choice(CATEGORIES)), rng)
        if placed is not None:
            scene.objects.append(placed)
    return scene


def _multi_query(scene: Scene, rng: np.random.Generator,
                 ) -> Optional[Tuple[str, np.ndarray]]:
    """A query matched by ≥2 objects, plus every matching box (ranked).

    Prefers a category+colour filter when one matches several objects,
    falling back to a bare category filter.
    """
    combos: List[Tuple[str, Optional[str], List[int]]] = []
    for category in CATEGORIES:
        indices = [i for i, o in enumerate(scene.objects)
                   if o.category == category]
        if len(indices) >= 2:
            combos.append((category, None, indices))
        for color in COLORS:
            colored = [i for i in indices
                       if scene.objects[i].color == color]
            if len(colored) >= 2:
                combos.append((category, color, colored))
    if not combos:
        return None
    category, color, indices = combos[int(rng.integers(len(combos)))]
    noun = category + ("s" if not category.endswith("s") else "")
    query = (f"all the {color} {noun}" if color is not None
             else f"all the {noun}")
    # Rank large-to-small: a deterministic, appearance-derived order.
    boxes = np.stack([scene.objects[i].box for i in indices])
    areas = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
    return query, boxes[np.argsort(-areas)]


def _no_target_query(scene: Scene,
                     rng: np.random.Generator) -> Optional[str]:
    """A category+colour reference verified absent from the scene."""
    present = {(o.category, o.color) for o in scene.objects}
    absent = [(cat, col) for cat in CATEGORIES for col in COLORS
              if (cat, col) not in present]
    if not absent:
        return None
    category, color = absent[int(rng.integers(len(absent)))]
    return f"the {color} {category}"


def build_crowded(num_scenes: int,
                  rng: np.random.Generator,
                  ) -> Dict[str, List[ScenarioSample]]:
    """Generate the crowded scenario's eval split (mixed query types)."""
    expr_gen = ExpressionGenerator("refcoco", rng=rng)
    per_scene = 3  # one attempt of each query type per scene
    samples: List[ScenarioSample] = []
    guard = 0
    want = num_scenes * per_scene
    while len(samples) < want:
        guard += 1
        if guard > max(50, num_scenes * 50):
            raise RuntimeError("crowded scenario generation stalled")
        scene = generate_crowded_scene(rng)
        image = render_scene(scene, rng=rng)

        draw = rng.random()
        if draw < QUERY_TYPE_MIX["single"]:
            indices = list(range(len(scene.objects)))
            rng.shuffle(indices)
            for index in indices:
                target = scene.objects[index]
                query = expr_gen.generate(scene, target, rng=rng)
                if query is None:
                    continue
                samples.append(ScenarioSample(
                    image=image, query=query, tokens=tokenize(query),
                    target_box=target.box.copy(), target_index=index,
                    scene=scene, split="eval", query_type="single",
                    all_target_boxes=target.box.copy().reshape(1, 4),
                    scenario="crowded"))
                break
        elif draw < QUERY_TYPE_MIX["single"] + QUERY_TYPE_MIX["multi"]:
            multi = _multi_query(scene, rng)
            if multi is None:
                continue
            query, boxes = multi
            samples.append(ScenarioSample(
                image=image, query=query, tokens=tokenize(query),
                target_box=boxes[0].copy(), target_index=-1,
                scene=scene, split="eval", query_type="multi",
                all_target_boxes=boxes.copy(), scenario="crowded"))
        else:
            query = _no_target_query(scene, rng)
            if query is None:
                continue
            samples.append(ScenarioSample(
                image=image, query=query, tokens=tokenize(query),
                target_box=np.zeros(4), target_index=-1,
                scene=scene, split="eval", query_type="no_target",
                all_target_boxes=np.empty((0, 4)), scenario="crowded"))
    return {"eval": samples[:want]}


register_scenario(Scenario(
    name="crowded",
    description=("dense distractor scenes with single, multi-target and "
                 "verified no-target queries (structured answers)"),
    build=build_crowded,
))
