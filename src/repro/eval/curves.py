"""Training-curve recording (Figure 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class TrainingCurve:
    """Accuracy-versus-iteration series recorded during training."""

    label: str
    iterations: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, iteration: int, value: float) -> None:
        self.iterations.append(int(iteration))
        self.values.append(float(value))

    def final(self) -> float:
        """Last recorded value (0.0 when nothing was recorded)."""
        return self.values[-1] if self.values else 0.0

    def best(self) -> float:
        return max(self.values) if self.values else 0.0

    def convergence_iteration(self, fraction: float = 0.95) -> int:
        """First iteration reaching ``fraction`` of the best value.

        Quantifies the paper's "converges within 5000 iterations" claim.
        """
        if not self.values:
            return 0
        target = self.best() * fraction
        for iteration, value in zip(self.iterations, self.values):
            if value >= target:
                return iteration
        return self.iterations[-1]

    def as_series(self) -> List[Tuple[int, float]]:
        return list(zip(self.iterations, self.values))

    def render_ascii(self, width: int = 60, height: int = 12) -> str:
        """Plot the curve as ASCII art for terminal reports."""
        if not self.values:
            return f"{self.label}: (empty)"
        vmax = max(self.values) or 1.0
        rows = [[" "] * width for _ in range(height)]
        for i, value in enumerate(self.values):
            col = int(i / max(1, len(self.values) - 1) * (width - 1))
            row = height - 1 - int(value / vmax * (height - 1))
            rows[row][col] = "*"
        lines = ["".join(r) for r in rows]
        header = f"{self.label} (max={vmax:.3f}, final={self.final():.3f})"
        return "\n".join([header] + lines)
