"""Inference wall-clock measurement (Table 5).

All timings are single-sample (batch size 1), matching the paper's
deployment-style measurement.  We report mean seconds per query plus the
decomposition into proposal time and matching time for two-stage models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.data.refcoco import GroundingSample


@dataclass
class TimingReport:
    """Per-query inference time statistics in seconds."""

    mean: float
    std: float
    num_queries: int
    proposal_mean: float = 0.0  #: stage-i time for two-stage models (0 for YOLLO)

    @property
    def total_mean(self) -> float:
        """Matching time plus proposal time — the end-to-end latency."""
        return self.mean + self.proposal_mean


def summarize_latencies(
    durations: Sequence[float], proposal_mean: float = 0.0
) -> TimingReport:
    """Condense a list of per-query latencies into a :class:`TimingReport`.

    Shared by :func:`time_grounder` and the serving engine's
    :class:`repro.serve.ServerStats`, so every latency number in the
    repo is summarised the same way.
    """
    durations = np.asarray(list(durations), dtype=np.float64)
    if durations.size == 0:
        return TimingReport(mean=0.0, std=0.0, num_queries=0,
                            proposal_mean=proposal_mean)
    return TimingReport(
        mean=float(durations.mean()),
        std=float(durations.std()),
        num_queries=int(durations.size),
        proposal_mean=proposal_mean,
    )


def time_grounder(
    grounder: Callable[[Sequence[GroundingSample]], np.ndarray],
    samples: Sequence[GroundingSample],
    warmup: int = 2,
    proposal_timer: Optional[Callable[[GroundingSample], float]] = None,
) -> TimingReport:
    """Time a grounder one sample at a time.

    ``proposal_timer``, when given, measures the stage-i cost per sample
    separately (the parenthesised "+0.29s" column of Table 5).
    """
    samples = list(samples)
    for sample in samples[:warmup]:
        grounder([sample])

    durations = []
    for sample in samples:
        start = time.perf_counter()
        grounder([sample])
        durations.append(time.perf_counter() - start)

    proposal_mean = 0.0
    if proposal_timer is not None:
        proposal_mean = float(np.mean([proposal_timer(s) for s in samples]))

    return summarize_latencies(durations, proposal_mean=proposal_mean)
