"""Inference wall-clock measurement (Table 5).

All timings are single-sample (batch size 1), matching the paper's
deployment-style measurement.  We report mean seconds per query plus the
decomposition into proposal time and matching time for two-stage models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.data.refcoco import GroundingSample


@dataclass
class TimingReport:
    """Per-query inference time statistics in seconds."""

    mean: float
    std: float
    num_queries: int
    proposal_mean: float = 0.0  #: stage-i time for two-stage models (0 for YOLLO)

    @property
    def total_mean(self) -> float:
        """Matching time plus proposal time — the end-to-end latency."""
        return self.mean + self.proposal_mean


def time_grounder(
    grounder: Callable[[Sequence[GroundingSample]], np.ndarray],
    samples: Sequence[GroundingSample],
    warmup: int = 2,
    proposal_timer: Optional[Callable[[GroundingSample], float]] = None,
) -> TimingReport:
    """Time a grounder one sample at a time.

    ``proposal_timer``, when given, measures the stage-i cost per sample
    separately (the parenthesised "+0.29s" column of Table 5).
    """
    samples = list(samples)
    for sample in samples[:warmup]:
        grounder([sample])

    durations = []
    for sample in samples:
        start = time.perf_counter()
        grounder([sample])
        durations.append(time.perf_counter() - start)

    proposal_mean = 0.0
    if proposal_timer is not None:
        proposal_mean = float(np.mean([proposal_timer(s) for s in samples]))

    return TimingReport(
        mean=float(np.mean(durations)),
        std=float(np.std(durations)),
        num_queries=len(samples),
        proposal_mean=proposal_mean,
    )
