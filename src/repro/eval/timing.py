"""Inference wall-clock measurement (Table 5).

All timings are single-sample (batch size 1), matching the paper's
deployment-style measurement.  We report mean seconds per query plus the
decomposition into proposal time and matching time for two-stage models,
and — via :mod:`repro.obs` spans — the split between *model* time (time
inside the network forward) and *end-to-end* time (model plus decode,
preprocessing, and Python dispatch), so the reproduced speed table can
attribute two-stage overhead the way the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.data.refcoco import GroundingSample
from repro.obs.metrics import Histogram
from repro.obs.profiler import SpanTotals, collect_spans

#: Span names whose time counts as "model time" for a timed call.
MODEL_SPANS = ("yollo.forward", "twostage.match")


@dataclass
class TimingReport:
    """Per-query inference time statistics in seconds."""

    mean: float
    std: float
    num_queries: int
    proposal_mean: float = 0.0  #: stage-i time for two-stage models (0 for YOLLO)
    model_mean: float = 0.0  #: time inside the network forward (spans)
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    @property
    def total_mean(self) -> float:
        """Matching time plus proposal time — the end-to-end latency."""
        return self.mean + self.proposal_mean

    @property
    def overhead_mean(self) -> float:
        """End-to-end time not spent in the model forward."""
        return max(self.mean - self.model_mean, 0.0)


def summarize_latencies(
    durations: Sequence[float],
    proposal_mean: float = 0.0,
    model_mean: float = 0.0,
) -> TimingReport:
    """Condense a list of per-query latencies into a :class:`TimingReport`.

    Built on :class:`repro.obs.metrics.Histogram` so the mean/std/quantile
    semantics here are identical to the serving engine's
    :class:`repro.serve.ServerStats` and the profiler — one quantile
    implementation for every latency number in the repo.
    """
    histogram = Histogram("latency")
    histogram.observe_many(durations)
    summary = histogram.summary()
    return TimingReport(
        mean=summary.mean,
        std=summary.std,
        num_queries=summary.count,
        proposal_mean=proposal_mean,
        model_mean=model_mean,
        p50=summary.p50,
        p95=summary.p95,
        p99=summary.p99,
    )


def time_grounder(
    grounder: Callable[[Sequence[GroundingSample]], np.ndarray],
    samples: Sequence[GroundingSample],
    warmup: int = 2,
    proposal_timer: Optional[Callable[[GroundingSample], float]] = None,
) -> TimingReport:
    """Time a grounder one sample at a time.

    Each timed call runs under a span collector, so grounders that
    annotate their forward pass (``yollo.forward``, ``twostage.match``,
    ``twostage.propose``) get a model-time decomposition for free.

    ``proposal_timer``, when given, measures the stage-i cost per sample
    separately (the parenthesised "+0.29s" column of Table 5); spans are
    deliberately not used for it because the in-pipeline proposer time is
    already part of ``mean`` and would double-count in ``total_mean``.
    """
    samples = list(samples)
    for sample in samples[:warmup]:
        grounder([sample])

    durations = []
    spans = SpanTotals()
    with collect_spans(spans):
        for sample in samples:
            start = time.perf_counter()
            grounder([sample])
            durations.append(time.perf_counter() - start)

    num = max(len(samples), 1)
    model_mean = spans.total(MODEL_SPANS) / num

    proposal_mean = 0.0
    if proposal_timer is not None:
        proposal_mean = float(np.mean([proposal_timer(s) for s in samples]))

    return summarize_latencies(
        durations, proposal_mean=proposal_mean, model_mean=model_mean
    )


@dataclass
class EagerCompiledComparison:
    """Eager vs compiled inference timing for one grounder."""

    eager: TimingReport
    compiled: TimingReport
    compile_ms: float  #: one-time plan compilation cost (all plans)
    plans: int  #: plans compiled during the measurement

    @property
    def speedup(self) -> float:
        """End-to-end eager/compiled latency ratio (>1 = compiled wins)."""
        return self.eager.mean / max(self.compiled.mean, 1e-12)

    @property
    def model_speedup(self) -> float:
        """Forward-pass-only ratio (decode/dispatch overhead excluded)."""
        return self.eager.model_mean / max(self.compiled.model_mean, 1e-12)

    def render(self) -> str:
        return (
            f"eager    {self.eager.mean * 1e3:.2f}ms/query "
            f"(model {self.eager.model_mean * 1e3:.2f}ms)\n"
            f"compiled {self.compiled.mean * 1e3:.2f}ms/query "
            f"(model {self.compiled.model_mean * 1e3:.2f}ms)\n"
            f"speedup  {self.speedup:.2f}x end-to-end, "
            f"{self.model_speedup:.2f}x model, "
            f"{self.plans} plan(s) compiled in {self.compile_ms:.1f}ms"
        )


def compare_eager_compiled(
    grounder,
    samples: Sequence[GroundingSample],
    warmup: int = 2,
) -> EagerCompiledComparison:
    """Time a :class:`repro.core.Grounder` eager, then compiled.

    The grounder is compiled for the measurement and restored to its
    original mode afterwards.  Compilation happens during the compiled
    pass's warmup, so plan-build time never pollutes the timed samples;
    it is reported separately as ``compile_ms``.
    """
    was_compiled = getattr(grounder, "plan_cache", None) is not None
    grounder.uncompile()
    try:
        eager = time_grounder(grounder.ground_batch, samples, warmup=warmup)
        grounder.compile()
        compiled = time_grounder(
            grounder.ground_batch, samples, warmup=max(warmup, 1)
        )
        cache = grounder.plan_cache
        events = cache.drain_compile_events()
        return EagerCompiledComparison(
            eager=eager,
            compiled=compiled,
            compile_ms=float(sum(ms for _key, ms in events)),
            plans=len(events),
        )
    finally:
        if not was_compiled:
            grounder.uncompile()
