"""Grounding metrics: ACC@eta, the ACC sweep, and mean IoU (Section 4.3).

``evaluate_grounder`` works with anything exposing the grounder protocol:
a callable mapping a list of :class:`GroundingSample` to predicted boxes
``(n, 4)``.  Both YOLLO (via its batch predictor) and the two-stage
baselines implement it, so every table uses one evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.data.refcoco import GroundingSample
from repro.detection import box_area

#: The IoU thresholds of the COCO-style ACC metric (0.5:0.05:0.95).
SWEEP_THRESHOLDS = tuple(np.arange(0.5, 0.96, 0.05).round(2))

GrounderFn = Callable[[Sequence[GroundingSample]], np.ndarray]


def pairwise_ious(predicted: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """IoU of each predicted box with its own target: ``(n,)``.

    One vectorised pass over the aligned pairs — no per-sample Python
    loop, and no ``(n, n)`` matrix of which only the diagonal is used.
    """
    predicted = np.asarray(predicted, dtype=np.float64).reshape(-1, 4)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1, 4)
    if predicted.shape != targets.shape:
        raise ValueError("predicted and target boxes must align one-to-one")
    left = np.maximum(predicted[:, 0], targets[:, 0])
    top = np.maximum(predicted[:, 1], targets[:, 1])
    right = np.minimum(predicted[:, 2], targets[:, 2])
    bottom = np.minimum(predicted[:, 3], targets[:, 3])
    intersection = np.clip(right - left, 0.0, None) * np.clip(bottom - top, 0.0, None)
    union = box_area(predicted) + box_area(targets) - intersection
    return intersection / np.maximum(union, 1e-8)


def accuracy_at_iou(ious: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of predictions with IoU >= ``threshold`` (ACC@eta).

    The comparison is inclusive: the paper defines ACC@eta as the
    fraction of predictions whose IoU reaches the threshold, so a
    prediction at exactly IoU = eta counts as a hit.
    """
    ious = np.asarray(ious)
    return float((ious >= threshold).mean()) if len(ious) else 0.0


def accuracy_sweep(ious: np.ndarray) -> float:
    """COCO-style averaged accuracy over thresholds 0.5:0.05:0.95."""
    return float(np.mean([accuracy_at_iou(ious, t) for t in SWEEP_THRESHOLDS]))


def mean_iou(ious: np.ndarray) -> float:
    """MIoU: the plain average IoU over the dataset."""
    ious = np.asarray(ious)
    return float(ious.mean()) if len(ious) else 0.0


@dataclass
class MetricReport:
    """All Table-3 metrics for one evaluation run."""

    acc: float
    acc_at_50: float
    acc_at_75: float
    miou: float
    ious: np.ndarray = field(repr=False, default=None)

    def as_dict(self) -> Dict[str, float]:
        return {
            "ACC": self.acc,
            "ACC@0.5": self.acc_at_50,
            "ACC@0.75": self.acc_at_75,
            "MIOU": self.miou,
        }


def evaluate_grounder(grounder: GrounderFn, samples: Sequence[GroundingSample],
                      batch_size: int = 32) -> MetricReport:
    """Run a grounder over samples and compute every metric."""
    predictions: List[np.ndarray] = []
    for start in range(0, len(samples), batch_size):
        chunk = list(samples[start : start + batch_size])
        predictions.append(np.asarray(grounder(chunk)).reshape(len(chunk), 4))
    predicted = np.concatenate(predictions) if predictions else np.empty((0, 4))
    targets = np.stack([s.target_box for s in samples]) if samples else np.empty((0, 4))
    ious = pairwise_ious(predicted, targets)
    return MetricReport(
        acc=accuracy_sweep(ious),
        acc_at_50=accuracy_at_iou(ious, 0.5),
        acc_at_75=accuracy_at_iou(ious, 0.75),
        miou=mean_iou(ious),
        ious=ious,
    )


# ----------------------------------------------------------------------
# Ranked / structured-answer metrics (scenario workloads)
# ----------------------------------------------------------------------
def _cross_ious(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Full ``(n, m)`` IoU grid, reusing the vectorised aligned-pair path.

    Tiling ``a`` against ``b`` and reshaping keeps :func:`pairwise_ious`
    the single IoU implementation the eval layer depends on.
    """
    boxes_a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    boxes_b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    n, m = len(boxes_a), len(boxes_b)
    if n == 0 or m == 0:
        return np.zeros((n, m))
    flat = pairwise_ious(np.repeat(boxes_a, m, axis=0),
                         np.tile(boxes_b, (n, 1)))
    return flat.reshape(n, m)


def recall_at_k(ranked_boxes: Sequence[np.ndarray],
                target_boxes: Sequence[np.ndarray],
                k: int, iou_threshold: float = 0.5) -> float:
    """Fraction of queries whose top-``k`` ranking covers a true box.

    ``ranked_boxes[i]`` is the ``(r, 4)`` prediction ranking for query
    ``i`` (e.g. :attr:`~repro.core.GroundingResponse.boxes`);
    ``target_boxes[i]`` is the ``(t, 4)`` set of acceptable referents
    (one for single-target queries, several for multi-target).  A query
    counts as recalled when any of its first ``k`` predictions reaches
    ``iou_threshold`` against any true box.  Queries with no true box
    (no-target) are skipped — :func:`no_target_report` scores those.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(ranked_boxes) != len(target_boxes):
        raise ValueError("ranked_boxes and target_boxes must align")
    hits, scored = 0, 0
    for predicted, targets in zip(ranked_boxes, target_boxes):
        targets = np.asarray(targets, dtype=np.float64).reshape(-1, 4)
        if len(targets) == 0:
            continue
        scored += 1
        top = np.asarray(predicted, dtype=np.float64).reshape(-1, 4)[:k]
        if len(top) and _cross_ious(top, targets).max() >= iou_threshold:
            hits += 1
    return hits / scored if scored else 0.0


def group_by_clause_depth(queries: Sequence[str]) -> Dict[int, List[int]]:
    """Sample indices grouped by the parse tree's relation-chain depth.

    Depth comes from :meth:`repro.lang.RelationTree.depth`: 0 for a bare
    attribute reference, 1 for one relational clause, 2+ for nested
    chains.  Unparseable queries land in the depth-0 group (a trivial
    tree has no clauses).
    """
    from repro.lang import parse

    groups: Dict[int, List[int]] = {}
    for index, query in enumerate(queries):
        groups.setdefault(parse(query).depth(), []).append(index)
    return dict(sorted(groups.items()))


def recall_by_clause_depth(ranked_boxes: Sequence[np.ndarray],
                           target_boxes: Sequence[np.ndarray],
                           queries: Sequence[str],
                           k: int = 1,
                           iou_threshold: float = 0.5,
                           ) -> Dict[int, float]:
    """Per-clause-depth recall@k — the Table 2b depth breakdown.

    Groups queries by parse depth and scores each group with
    :func:`recall_at_k`; a query's grounding difficulty should grow
    with its relational depth, and this is where that shows up.
    """
    if not (len(ranked_boxes) == len(target_boxes) == len(queries)):
        raise ValueError("ranked_boxes, target_boxes and queries "
                         "must align one-to-one")
    return {
        depth: recall_at_k([ranked_boxes[i] for i in indices],
                           [target_boxes[i] for i in indices],
                           k=k, iou_threshold=iou_threshold)
        for depth, indices in group_by_clause_depth(queries).items()
    }


@dataclass(frozen=True)
class NoTargetReport:
    """Detection quality of the ``not_found`` decision.

    "Positive" is *predicting not-found*: precision is the fraction of
    not-found answers that were genuinely no-target queries, recall is
    the fraction of no-target queries answered not-found.  A false
    positive (claiming not-found when the object exists) loses a
    grounding; a false negative (a false "found") invents one.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "tn": self.true_negatives,
        }


def no_target_report(predicted_not_found: Sequence[bool],
                     actual_no_target: Sequence[bool]) -> NoTargetReport:
    """Score the not-found decision over aligned prediction/truth flags."""
    predicted = np.asarray(predicted_not_found, dtype=bool)
    actual = np.asarray(actual_no_target, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual flags must align one-to-one")
    return NoTargetReport(
        true_positives=int(np.sum(predicted & actual)),
        false_positives=int(np.sum(predicted & ~actual)),
        false_negatives=int(np.sum(~predicted & actual)),
        true_negatives=int(np.sum(~predicted & ~actual)),
    )


def calibrate_not_found_threshold(found_scores: Sequence[float],
                                  no_target_scores: Sequence[float],
                                  ) -> float:
    """Pick the score threshold that best separates found from absent.

    ``found_scores`` are top-1 confidences on queries whose referent
    exists; ``no_target_scores`` on queries where it does not.  Scoring
    "not found" whenever the top confidence falls below the threshold,
    the candidate maximising the not-found F1 wins; candidates are the
    midpoints between adjacent distinct scores (plus the extremes), and
    ties break toward the lowest threshold — deterministic, so the
    calibrated value is stable run to run.
    """
    found = np.asarray(found_scores, dtype=np.float64)
    absent = np.asarray(no_target_scores, dtype=np.float64)
    if len(absent) == 0:
        return 0.0
    if len(found) == 0:
        return float(absent.max()) + 1e-6
    scores = np.unique(np.concatenate([found, absent]))
    candidates = np.concatenate([
        [scores[0] - 1e-6],
        (scores[:-1] + scores[1:]) / 2.0,
        [scores[-1] + 1e-6],
    ])
    best_threshold, best_f1 = float(candidates[0]), -1.0
    for threshold in candidates:
        report = no_target_report(
            np.concatenate([found < threshold, absent < threshold]),
            np.concatenate([np.zeros(len(found), dtype=bool),
                            np.ones(len(absent), dtype=bool)]))
        if report.f1 > best_f1 + 1e-12:
            best_threshold, best_f1 = float(threshold), report.f1
    return best_threshold
