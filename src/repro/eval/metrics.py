"""Grounding metrics: ACC@eta, the ACC sweep, and mean IoU (Section 4.3).

``evaluate_grounder`` works with anything exposing the grounder protocol:
a callable mapping a list of :class:`GroundingSample` to predicted boxes
``(n, 4)``.  Both YOLLO (via its batch predictor) and the two-stage
baselines implement it, so every table uses one evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.data.refcoco import GroundingSample
from repro.detection import box_area

#: The IoU thresholds of the COCO-style ACC metric (0.5:0.05:0.95).
SWEEP_THRESHOLDS = tuple(np.arange(0.5, 0.96, 0.05).round(2))

GrounderFn = Callable[[Sequence[GroundingSample]], np.ndarray]


def pairwise_ious(predicted: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """IoU of each predicted box with its own target: ``(n,)``.

    One vectorised pass over the aligned pairs — no per-sample Python
    loop, and no ``(n, n)`` matrix of which only the diagonal is used.
    """
    predicted = np.asarray(predicted, dtype=np.float64).reshape(-1, 4)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1, 4)
    if predicted.shape != targets.shape:
        raise ValueError("predicted and target boxes must align one-to-one")
    left = np.maximum(predicted[:, 0], targets[:, 0])
    top = np.maximum(predicted[:, 1], targets[:, 1])
    right = np.minimum(predicted[:, 2], targets[:, 2])
    bottom = np.minimum(predicted[:, 3], targets[:, 3])
    intersection = np.clip(right - left, 0.0, None) * np.clip(bottom - top, 0.0, None)
    union = box_area(predicted) + box_area(targets) - intersection
    return intersection / np.maximum(union, 1e-8)


def accuracy_at_iou(ious: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of predictions with IoU >= ``threshold`` (ACC@eta).

    The comparison is inclusive: the paper defines ACC@eta as the
    fraction of predictions whose IoU reaches the threshold, so a
    prediction at exactly IoU = eta counts as a hit.
    """
    ious = np.asarray(ious)
    return float((ious >= threshold).mean()) if len(ious) else 0.0


def accuracy_sweep(ious: np.ndarray) -> float:
    """COCO-style averaged accuracy over thresholds 0.5:0.05:0.95."""
    return float(np.mean([accuracy_at_iou(ious, t) for t in SWEEP_THRESHOLDS]))


def mean_iou(ious: np.ndarray) -> float:
    """MIoU: the plain average IoU over the dataset."""
    ious = np.asarray(ious)
    return float(ious.mean()) if len(ious) else 0.0


@dataclass
class MetricReport:
    """All Table-3 metrics for one evaluation run."""

    acc: float
    acc_at_50: float
    acc_at_75: float
    miou: float
    ious: np.ndarray = field(repr=False, default=None)

    def as_dict(self) -> Dict[str, float]:
        return {
            "ACC": self.acc,
            "ACC@0.5": self.acc_at_50,
            "ACC@0.75": self.acc_at_75,
            "MIOU": self.miou,
        }


def evaluate_grounder(grounder: GrounderFn, samples: Sequence[GroundingSample],
                      batch_size: int = 32) -> MetricReport:
    """Run a grounder over samples and compute every metric."""
    predictions: List[np.ndarray] = []
    for start in range(0, len(samples), batch_size):
        chunk = list(samples[start : start + batch_size])
        predictions.append(np.asarray(grounder(chunk)).reshape(len(chunk), 4))
    predicted = np.concatenate(predictions) if predictions else np.empty((0, 4))
    targets = np.stack([s.target_box for s in samples]) if samples else np.empty((0, 4))
    ious = pairwise_ious(predicted, targets)
    return MetricReport(
        acc=accuracy_sweep(ious),
        acc_at_50=accuracy_at_iou(ious, 0.5),
        acc_at_75=accuracy_at_iou(ious, 0.75),
        miou=mean_iou(ious),
        ious=ious,
    )
