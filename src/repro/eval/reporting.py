"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width table; floats are formatted to 2 decimals."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
