"""Evaluation: grounding metrics, wall-clock timing, curves, reporting."""

from repro.eval.metrics import (
    MetricReport,
    accuracy_at_iou,
    accuracy_sweep,
    evaluate_grounder,
    mean_iou,
)
from repro.eval.timing import (
    EagerCompiledComparison,
    TimingReport,
    compare_eager_compiled,
    summarize_latencies,
    time_grounder,
)
from repro.eval.curves import TrainingCurve
from repro.eval.reporting import format_table

__all__ = [
    "accuracy_at_iou",
    "accuracy_sweep",
    "mean_iou",
    "evaluate_grounder",
    "MetricReport",
    "time_grounder",
    "summarize_latencies",
    "TimingReport",
    "EagerCompiledComparison",
    "compare_eager_compiled",
    "TrainingCurve",
    "format_table",
]
