"""Evaluation: grounding metrics, wall-clock timing, curves, reporting."""

from repro.eval.metrics import (
    MetricReport,
    NoTargetReport,
    accuracy_at_iou,
    accuracy_sweep,
    calibrate_not_found_threshold,
    evaluate_grounder,
    group_by_clause_depth,
    mean_iou,
    no_target_report,
    pairwise_ious,
    recall_at_k,
    recall_by_clause_depth,
)
from repro.eval.timing import (
    EagerCompiledComparison,
    TimingReport,
    compare_eager_compiled,
    summarize_latencies,
    time_grounder,
)
from repro.eval.curves import TrainingCurve
from repro.eval.reporting import format_table

__all__ = [
    "accuracy_at_iou",
    "accuracy_sweep",
    "mean_iou",
    "pairwise_ious",
    "evaluate_grounder",
    "MetricReport",
    "recall_at_k",
    "NoTargetReport",
    "no_target_report",
    "group_by_clause_depth",
    "recall_by_clause_depth",
    "calibrate_not_found_threshold",
    "time_grounder",
    "summarize_latencies",
    "TimingReport",
    "EagerCompiledComparison",
    "compare_eager_compiled",
    "TrainingCurve",
    "format_table",
]
