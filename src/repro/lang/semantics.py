"""Compositional semantics: interpret relation trees against scenes.

``resolve_tree`` evaluates a parsed query on a
:class:`~repro.data.scenes.Scene`, mirroring the verified-uniqueness
semantics of the expression generators (:mod:`repro.data.expressions`
for attributes and directional relations, :mod:`repro.scenarios.driving`
for the ego-anchored side/ordinal/depth selectors) — but driven by the
*tree*, so nested relative clauses, negated attributes, conjunctions
and resolved anaphora compose.  The compositional scenario generates a
candidate query, parses it with the real parser, and only emits it when
this interpreter confirms the intended referents: ground truth is
correct by construction *through the parser*.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data.expressions import (
    _SIZE_RATIO,
    describe_location,
    relation_between,
)
from repro.data.scenes import Scene, SceneObject
from repro.lang.tree import EntityPhrase, RelationTree

#: Directional relations with scene-level semantics.
_DIRECTIONAL = {"left of", "right of", "above", "below", "next to"}


class UnsupportedRelationError(ValueError):
    """The tree uses a relation with no scene-level semantics."""


def resolve_tree(tree: RelationTree, scene: Scene) -> List[SceneObject]:
    """Objects denoted by the tree's targets (empty = no referent).

    Raises :class:`UnsupportedRelationError` for relations the scene
    model cannot interpret (open-class verbs, attachments), so callers
    can reject rather than silently mis-ground.
    """
    resolved: List[SceneObject] = []
    for target in tree.targets:
        for obj in _resolve_entity(tree, scene, target, ()):
            if all(o is not obj for o in resolved):
                resolved.append(obj)
    return resolved


def _resolve_entity(tree: RelationTree, scene: Scene, index: int,
                    visiting: tuple) -> List[SceneObject]:
    if index in visiting:
        return []
    entity = tree.entities[index]
    if entity.pronoun is not None:
        if entity.antecedent is None:
            return []
        return _resolve_entity(tree, scene, entity.antecedent,
                               visiting + (index,))
    if entity.category is None:
        return []
    candidates = [o for o in scene.objects if o.category == entity.category]
    candidates = _apply_attributes(entity, candidates, scene)
    for clause in tree.clauses_of(index):
        if not candidates:
            break
        candidates = _apply_clause(tree, scene, clause, candidates,
                                   visiting + (index,))
    if not entity.plural and not entity.quantified_all:
        return candidates if len(candidates) == 1 else []
    # Plural reference: every match, ranked large-to-small (the crowded
    # scenario's deterministic answer order).
    if not candidates:
        return []
    areas = np.asarray([o.area for o in candidates])
    return [candidates[i] for i in np.argsort(-areas)]


def _apply_attributes(entity: EntityPhrase,
                      candidates: List[SceneObject],
                      scene: Scene) -> List[SceneObject]:
    for attribute in entity.attributes:
        if not candidates:
            return []
        if attribute.kind == "color":
            if attribute.negated:
                candidates = [o for o in candidates
                              if o.color != attribute.value]
            else:
                candidates = [o for o in candidates
                              if o.color == attribute.value]
        elif attribute.kind == "size":
            candidates = _apply_size(attribute.value, candidates)
        elif attribute.kind == "location":
            candidates = [o for o in candidates
                          if describe_location(o, candidates)
                          == attribute.value]
        elif attribute.kind == "ordinal":
            candidates = _apply_ordinal(int(attribute.value), candidates,
                                        scene)
    return candidates


def _apply_size(word: str, candidates: List[SceneObject],
                ) -> List[SceneObject]:
    """Area-superlative semantics, as in ``Constraints._apply_size``."""
    if len(candidates) == 1:
        return candidates
    wants_big = word in ("big", "large")
    areas = np.asarray([o.area for o in candidates])
    ordered = np.sort(areas)
    if wants_big:
        if ordered[-1] < ordered[-2] * _SIZE_RATIO:
            return []
        return [candidates[int(areas.argmax())]]
    if ordered[0] * _SIZE_RATIO > ordered[1]:
        return []
    return [candidates[int(areas.argmin())]]


def _apply_ordinal(rank: int, candidates: List[SceneObject],
                   scene: Scene) -> List[SceneObject]:
    """Ego-distance ordinal (driving grammar), gap rule included."""
    from repro.scenarios.driving import _ORDINAL_GAP, ego_distance

    index = rank - 1
    if index < 0 or index >= len(candidates):
        return []
    distances = np.asarray([ego_distance(o, scene) for o in candidates])
    order = np.argsort(distances)
    ordered = distances[order]
    if index > 0 and ordered[index] - ordered[index - 1] < _ORDINAL_GAP:
        return []
    if index + 1 < len(ordered) \
            and ordered[index + 1] - ordered[index] < _ORDINAL_GAP:
        return []
    return [candidates[int(order[index])]]


def _apply_clause(tree: RelationTree, scene: Scene, clause,
                  candidates: List[SceneObject],
                  visiting: tuple) -> List[SceneObject]:
    if clause.relation.startswith("side:"):
        from repro.scenarios.driving import ego_side

        side = clause.relation.split(":", 1)[1]
        kept = [o for o in candidates if ego_side(o, scene) == side]
        if clause.negated:
            kept = [o for o in candidates
                    if all(o is not k for k in kept)]
        return kept

    if clause.anchor is None:
        raise UnsupportedRelationError(
            f"relation {clause.relation!r} needs an anchor")
    anchors = _resolve_entity(tree, scene, clause.anchor, visiting)
    if len(anchors) != 1:
        return []
    anchor = anchors[0]

    if clause.relation in ("past", "before"):
        return _apply_depth(clause.relation, candidates, anchor, scene)
    if clause.relation not in _DIRECTIONAL:
        raise UnsupportedRelationError(
            f"no scene semantics for relation {clause.relation!r}")

    canonical = clause.relation
    satisfying = [o for o in candidates if o is not anchor
                  and relation_between(o, anchor) == canonical]
    if clause.negated:
        return [o for o in candidates if o is not anchor
                and all(o is not s for s in satisfying)]
    if not satisfying:
        return []
    # Nearest satisfier wins — the base grammar's disambiguation rule.
    distances = [np.hypot(o.center[0] - anchor.center[0],
                          o.center[1] - anchor.center[1])
                 for o in satisfying]
    return [satisfying[int(np.argmin(distances))]]


def _apply_depth(relation: str, candidates: List[SceneObject],
                 anchor: SceneObject, scene: Scene) -> List[SceneObject]:
    """``past``/``before`` ego-depth semantics (driving grammar)."""
    from repro.scenarios.driving import _DEPTH_MARGIN, ego_distance

    anchor_dist = ego_distance(anchor, scene)
    if relation == "past":
        kept = [o for o in candidates if o is not anchor
                and ego_distance(o, scene) > anchor_dist + _DEPTH_MARGIN]
    else:
        kept = [o for o in candidates if o is not anchor
                and ego_distance(o, scene) < anchor_dist - _DEPTH_MARGIN]
    if not kept:
        return []
    gaps = [abs(ego_distance(o, scene) - anchor_dist) for o in kept]
    order = np.argsort(gaps)
    if len(kept) > 1 and gaps[order[1]] - gaps[order[0]] < _DEPTH_MARGIN:
        return []
    return [kept[int(order[0])]]
