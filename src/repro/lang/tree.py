"""Typed relation trees — the parser's output schema.

A :class:`RelationTree` decomposes a referring expression into entity
phrases (head noun + attribute modifiers), relational clauses with
role-labelled arguments (``target`` is the figure, ``anchor`` the
ground), negation flags, and resolved cross-sentence antecedents for
pronouns.  Every consumed token is accounted for in ``segments`` — an
ordered, role-labelled tiling of the token range — so a tree can always
be lowered back to the exact token sequence it came from
(:meth:`RelationTree.token_sequence`), the invariant the property tests
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

#: Half-open ``[start, end)`` range over ``tokenize(query)`` output.
Span = Tuple[int, int]


@dataclass(frozen=True)
class Attribute:
    """One modifier on an entity phrase."""

    kind: str  # "color" | "size" | "location" | "ordinal"
    value: str
    negated: bool = False


@dataclass
class EntityPhrase:
    """A noun phrase: head, modifiers, number, and anaphoric links."""

    #: Surface head noun ("pedestrian", "cars"), ``None`` for a bare
    #: pronoun.
    head: Optional[str]
    #: Canonical scene category ("person" for "pedestrian"), ``None``
    #: for open-class nouns outside the scene vocabulary.
    category: Optional[str]
    span: Span
    attributes: List[Attribute] = field(default_factory=list)
    plural: bool = False
    #: "all the red cars" — the query denotes every matching object.
    quantified_all: bool = False
    #: Surface pronoun ("it", "he") when the phrase is anaphoric.
    pronoun: Optional[str] = None
    #: Index of the resolved antecedent entity, if any.
    antecedent: Optional[int] = None
    #: 0-based sentence the phrase appears in.
    sentence: int = 0

    def attribute(self, kind: str) -> Optional[Attribute]:
        for attr in self.attributes:
            if attr.kind == kind:
                return attr
        return None

    @property
    def is_anaphoric(self) -> bool:
        return self.pronoun is not None


@dataclass
class RelationClause:
    """One relational clause with role-labelled arguments.

    ``target`` (the figure) is the entity being located; ``anchor``
    (the ground) is the reference entity, or ``None`` for ego-anchored
    relations ("to my left").  ``relation`` is the canonical relation
    name — a spatial predicate ("left of", "past", "side:left"), an
    attachment preposition ("in"), or an open-class verb ("wearing").
    """

    relation: str
    target: int
    anchor: Optional[int] = None
    negated: bool = False
    span: Span = (0, 0)


@dataclass
class RelationTree:
    """The full parse of one (possibly multi-sentence) query."""

    query: str
    tokens: List[str]
    entities: List[EntityPhrase] = field(default_factory=list)
    clauses: List[RelationClause] = field(default_factory=list)
    #: Indices of the referent entities — usually one; two or more for
    #: conjunctions ("the red car and the blue dog").
    targets: List[int] = field(default_factory=list)
    #: Role-labelled tiling of ``[0, len(tokens))`` in surface order.
    segments: List[Tuple[str, Span]] = field(default_factory=list)
    num_sentences: int = 1

    # ------------------------------------------------------------------
    def token_sequence(self) -> List[str]:
        """Lower the tree back to its token sequence via ``segments``.

        Round-trips to ``tokenize(query)`` exactly when the segments
        tile the token range — the invariant the parser maintains and
        the property tests assert.
        """
        out: List[str] = []
        for _, (start, end) in self.segments:
            out.extend(self.tokens[start:end])
        return out

    @property
    def target_entity(self) -> Optional[EntityPhrase]:
        if not self.targets:
            return None
        return self.entities[self.targets[0]]

    @property
    def is_trivial(self) -> bool:
        """True when parsing found no referent to condition on.

        A trivial tree has no target entity with either a head noun or
        a resolved antecedent; the attention lowering falls back to
        flat tokens for it.
        """
        for index in self.targets:
            entity = self.entities[index]
            if entity.head is not None or entity.antecedent is not None:
                return False
        return True

    # ------------------------------------------------------------------
    def clauses_of(self, entity: int) -> List[RelationClause]:
        """Clauses whose figure is ``entity``."""
        return [c for c in self.clauses if c.target == entity]

    def depth(self) -> int:
        """Maximum relational nesting depth under any target.

        Attribute-only references are depth 0, one relational clause is
        depth 1, a clause whose anchor itself carries a clause is depth
        2, and so on.  Anaphoric links forward to their antecedent's
        depth without adding a level.
        """
        return max((self._entity_depth(t, set()) for t in self.targets),
                   default=0)

    def _entity_depth(self, index: int, seen: Set[int]) -> int:
        if index is None or index in seen:
            return 0
        seen.add(index)
        best = 0
        for clause in self.clauses:
            if clause.target != index:
                continue
            anchor_depth = (self._entity_depth(clause.anchor, seen)
                            if clause.anchor is not None else 0)
            best = max(best, 1 + anchor_depth)
        entity = self.entities[index]
        if entity.antecedent is not None:
            best = max(best, self._entity_depth(entity.antecedent, seen))
        return best
