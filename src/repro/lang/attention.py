"""Lower relation trees to per-clause attention targets.

Each *clause context* is the token span of one relational clause unioned
with its figure's head phrase (and its anchor's phrase), plus one
context per resolved cross-sentence antecedent — the pieces of the query
a clause-conditioned Rel2Att pass should attend to separately instead of
averaging over the whole flat token bag.

Fallback semantics: a query with fewer than two clause contexts (a bare
attribute reference, or a single-clause expression) compiles to ``None``
— the model's flat-token path, bit-exact with the unconditioned
forward.  Truncation at ``max_length`` can also demote a query to the
flat path when it leaves fewer than two non-empty contexts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.lang.tree import RelationTree, Span


def clause_contexts(tree: RelationTree) -> List[List[Span]]:
    """Token-span groups, one per clause context (head context first).

    Returns an empty list for trivial trees.  The first context is the
    union of the target entities' head phrases; then one context per
    clause (clause span + figure span + anchor span); then one per
    resolved pronoun antecedent (antecedent span + pronoun span).
    """
    if tree.is_trivial:
        return []
    contexts: List[List[Span]] = []
    head_spans = [tree.entities[t].span for t in tree.targets]
    for clause in tree.clauses:
        spans = [clause.span, tree.entities[clause.target].span]
        if clause.anchor is not None:
            spans.append(tree.entities[clause.anchor].span)
        contexts.append(spans)
    for entity in tree.entities:
        if entity.pronoun is not None and entity.antecedent is not None:
            contexts.append([tree.entities[entity.antecedent].span,
                             entity.span])
    if not contexts:
        return []
    return [head_spans] + contexts


def _mask_from_spans(spans: Sequence[Span], max_length: int) -> np.ndarray:
    mask = np.zeros(max_length, dtype=np.float64)
    for start, end in spans:
        start = max(0, min(start, max_length))
        end = max(0, min(end, max_length))
        if end > start:
            mask[start:end] = 1.0
    return mask


def clause_token_masks(tree: RelationTree,
                       max_length: int) -> Optional[np.ndarray]:
    """Compile a tree to ``(C, max_length)`` 0/1 clause masks.

    Returns ``None`` — the flat-token fallback — when the tree is
    trivial or yields fewer than two non-empty contexts beyond the head
    context (i.e. single-clause and attribute-only queries run the
    unconditioned, bit-exact flat path).
    """
    contexts = clause_contexts(tree)
    if not contexts:
        return None
    rows = [_mask_from_spans(spans, max_length) for spans in contexts]
    head, clause_rows = rows[0], [r for r in rows[1:] if r.any()]
    if len(clause_rows) < 2:
        return None
    if head.any():
        clause_rows = [head] + clause_rows
    return np.stack(clause_rows)


def pad_clause_masks(rows: Sequence[Optional[np.ndarray]],
                     max_length: int) -> Optional[np.ndarray]:
    """Stack per-sample masks into one ``(B, C, L)`` batch array.

    Samples compiled to ``None`` get all-zero rows — the per-sample
    flat fallback inside the clause-conditioned forward.  Returns
    ``None`` when every sample fell back (the whole batch runs the
    plain flat path).
    """
    if all(row is None for row in rows):
        return None
    num_clauses = max(row.shape[0] for row in rows if row is not None)
    out = np.zeros((len(rows), num_clauses, max_length), dtype=np.float64)
    for index, row in enumerate(rows):
        if row is not None:
            out[index, :row.shape[0]] = row
    return out
