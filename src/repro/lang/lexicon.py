"""Closed word classes of the referring-expression grammar.

One place for every word the scenario generators can emit — attribute
classes from the base grammar (:mod:`repro.data.expressions`), the
driving scenario's ego vocabulary, pronouns, and the multiword relation
phrases — so the parser and the generators cannot drift apart.  The
noun class is *open*: unknown words in head position parse as
open-class nouns ("the hat he is wearing"), they just carry no scene
category.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.data.expressions import LOCATION_WORDS
from repro.data.scenes import CATEGORIES, COLORS

#: Surface noun -> canonical scene category.  Covers the base
#: categories, the driving scenario's spoken forms, and plurals.
NOUN_TO_CATEGORY: Dict[str, str] = {category: category
                                    for category in CATEGORIES}
NOUN_TO_CATEGORY.update({"pedestrian": "person", "truck": "truck",
                         "cone": "cone"})

#: Plural surface noun -> canonical category (always category + "s" in
#: the generators: "all the red cars", "persons").
PLURAL_NOUN_TO_CATEGORY: Dict[str, str] = {
    noun + "s": category for noun, category in NOUN_TO_CATEGORY.items()
}
PLURAL_NOUN_TO_CATEGORY["people"] = "person"

COLOR_WORDS = frozenset(COLORS)
SIZE_WORDS = frozenset({"big", "large", "small", "little"})
LOCATION_ATTRIBUTE_WORDS = frozenset(LOCATION_WORDS)

#: Ordinal distance words (driving grammar), mapped to 1-based ranks.
ORDINAL_WORDS: Dict[str, int] = {
    "first": 1, "nearest": 1, "closest": 1,
    "second": 2, "third": 3, "fourth": 4,
}

DETERMINERS = frozenset({"the", "a", "an"})
QUANTIFIERS = frozenset({"all"})
NEGATIONS = frozenset({"not"})
CONJUNCTIONS = frozenset({"and"})

PRONOUNS = frozenset({"it", "he", "she", "they",
                      "him", "her", "them", "one"})
#: Pronouns whose antecedent must be a person.
PERSON_PRONOUNS = frozenset({"he", "she", "him", "her"})
#: Pronouns that prefer a plural antecedent.
PLURAL_PRONOUNS = frozenset({"they", "them"})

#: Words that introduce a relative clause before its relation phrase.
RELATIVIZER_SEQUENCES: Tuple[Tuple[str, ...], ...] = (
    ("that", "is", "standing"),
    ("that", "is"),
    ("that", "are"),
    ("which", "is"),
    ("which", "are"),
    ("who", "is"),
    ("standing",),
)

#: Multiword relation phrases -> canonical relation names (longest
#: match first at parse time).
RELATION_SEQUENCES: Tuple[Tuple[Tuple[str, ...], str], ...] = (
    (("to", "the", "left", "of"), "left of"),
    (("to", "the", "right", "of"), "right of"),
    (("in", "front", "of"), "in front of"),
    (("left", "of"), "left of"),
    (("right", "of"), "right of"),
    (("next", "to"), "next to"),
    (("above",), "above"),
    (("below",), "below"),
    (("behind",), "behind"),
    (("past",), "past"),
    (("before",), "before"),
)

#: Ego-anchored side phrases (driving grammar) -> side name.
SIDE_SEQUENCES: Tuple[Tuple[Tuple[str, ...], str], ...] = (
    (("to", "my", "left"), "left"),
    (("on", "my", "left"), "left"),
    (("to", "my", "right"), "right"),
    (("on", "my", "right"), "right"),
)

#: Scene-level filler phrases the long grammar appends; they carry no
#: constraint and lower to filler segments.
FILLER_SEQUENCES: Tuple[Tuple[str, ...], ...] = (
    ("that", "is", "shown", "in", "the", "image"),
    ("shown", "in", "the", "image"),
    ("in", "the", "picture"),
    ("in", "the", "image"),
    ("in", "the", "scene"),
)

#: Existential sentence openers ("there is the red dog in the scene").
EXISTENTIAL_SEQUENCES: Tuple[Tuple[str, ...], ...] = (
    ("there", "is"),
    ("there", "are"),
)


def noun_category(word: str) -> Optional[Tuple[str, bool]]:
    """``(canonical category, plural)`` for a known noun, else ``None``."""
    if word in NOUN_TO_CATEGORY:
        return NOUN_TO_CATEGORY[word], False
    if word in PLURAL_NOUN_TO_CATEGORY:
        return PLURAL_NOUN_TO_CATEGORY[word], True
    return None


def is_function_word(word: str) -> bool:
    """Words that can never head an open-class noun phrase."""
    return (word in DETERMINERS or word in QUANTIFIERS
            or word in NEGATIONS or word in CONJUNCTIONS
            or word in PRONOUNS
            or word in {"is", "are", "that", "which", "who", "there",
                        "of", "to", "on", "in", "my", "side", "and"})
