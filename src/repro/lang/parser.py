"""Deterministic recursive-descent parser for referring expressions.

Covers the full grammar the scenario generators emit — the short/long
base templates (:mod:`repro.data.expressions`), the driving scenario's
ego-relative selectors, the crowded scenario's quantified and no-target
forms — plus conjunction ("the red car and the blue dog"), negation
("the car that is not red"), nested relative clauses ("the dog next to
the car that is left of the lamp"), and cross-sentence anaphora ("a man
in a red shirt . the hat he is wearing").

``parse`` never raises on free-form input: anything outside the grammar
lowers to ``unparsed`` segments, and a query with no recognisable
referent yields a *trivial* tree the attention compiler falls back to
flat tokens for.  Every consumed token lands in exactly one segment, so
``tree.token_sequence() == tokenize(query)`` for every input — the
round-trip invariant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.lang import lexicon
from repro.lang.tree import (
    Attribute,
    EntityPhrase,
    RelationClause,
    RelationTree,
)
from repro.text.tokenizer import (
    PUNCTUATION,
    SENTENCE_BREAKS,
    _POSSESSIVE_PATTERN,
    _TOKEN_PATTERN,
    lex,
)

#: Open-class nouns that count as persons for pronoun agreement.
HUMAN_NOUNS = frozenset({"man", "woman", "boy", "girl", "guy", "lady",
                         "child", "person", "men", "women", "people"})

#: Copular verb forms inside relative clauses.
_COPULAS = frozenset({"is", "are", "was", "were"})

#: Prepositions that attach a plain NP as a clause ("a man in a red
#: shirt").
_ATTACHMENTS = frozenset({"in", "on", "with"})

#: Open-class participles accepted directly after a head ("the man
#: wearing a red shirt").
_PARTICIPLES = frozenset({"wearing", "holding", "carrying", "riding"})


def _word_stream(query: str) -> Tuple[List[str], List[int]]:
    """Tokens plus per-token sentence ids, aligned with ``tokenize``."""
    words: List[str] = []
    sentences: List[int] = []
    sentence = 0
    for lexeme in lex(query):
        if lexeme in SENTENCE_BREAKS:
            if sentences and sentences[-1] == sentence:
                sentence += 1
            continue
        if lexeme in PUNCTUATION or lexeme[0] in "'’":
            continue
        for sub in _TOKEN_PATTERN.findall(
                _POSSESSIVE_PATTERN.sub("", lexeme)):
            words.append(sub)
            sentences.append(sentence)
    return words, sentences


class _Parser:
    """One parse over a fixed word stream (single use)."""

    def __init__(self, query: str, words: List[str], sentences: List[int]):
        self.query = query
        self.words = words
        self.sentences = sentences
        self.pos = 0
        self.limit = 0
        self.entities: List[EntityPhrase] = []
        self.clauses: List[RelationClause] = []
        self.segments: List[Tuple[str, Tuple[int, int]]] = []

    # ------------------------------------------------------------------
    # Stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[str]:
        index = self.pos + offset
        if index >= self.limit:
            return None
        return self.words[index]

    def _match_sequence(self, sequence: Sequence[str]) -> bool:
        end = self.pos + len(sequence)
        return (end <= self.limit
                and tuple(self.words[self.pos:end]) == tuple(sequence))

    def _segment(self, label: str, start: int) -> None:
        if self.pos > start:
            self.segments.append((label, (start, self.pos)))

    def _mark(self) -> Tuple[int, int, int, int]:
        return (self.pos, len(self.entities), len(self.clauses),
                len(self.segments))

    def _reset(self, mark: Tuple[int, int, int, int]) -> None:
        self.pos, n_ent, n_cls, n_seg = mark
        del self.entities[n_ent:]
        del self.clauses[n_cls:]
        del self.segments[n_seg:]

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> RelationTree:
        principals: List[List[int]] = []
        num_sentences = (max(self.sentences) + 1) if self.sentences else 1
        for sentence in range(num_sentences):
            span = [i for i, s in enumerate(self.sentences) if s == sentence]
            if not span:
                principals.append([])
                continue
            self.pos, self.limit = span[0], span[-1] + 1
            principals.append(self._parse_sentence())

        targets: List[int] = []
        for sentence_targets in principals:
            if sentence_targets:
                targets = sentence_targets  # last sentence with a referent
        self._resolve_pronouns()
        segments = self._tiled_segments()
        return RelationTree(
            query=self.query, tokens=list(self.words),
            entities=self.entities, clauses=self.clauses,
            targets=targets, segments=segments,
            num_sentences=num_sentences,
        )

    def _parse_sentence(self) -> List[int]:
        start = self.pos
        for opener in lexicon.EXISTENTIAL_SEQUENCES:
            if self._match_sequence(opener):
                self.pos += len(opener)
                self._segment("filler", start)
                break
        principal = self._parse_np()
        found: List[int] = [] if principal is None else [principal]
        while found and self._peek() in lexicon.CONJUNCTIONS:
            mark = self._mark()
            self.pos += 1
            self._segment("conj", mark[0])
            conjunct = self._parse_np()
            if conjunct is None:
                self._reset(mark)
                break
            found.append(conjunct)
        leftover = self.pos
        self.pos = self.limit
        self._segment("unparsed", leftover)
        return found

    # ------------------------------------------------------------------
    # Noun phrases
    # ------------------------------------------------------------------
    def _parse_np(self, with_postmods: bool = True) -> Optional[int]:
        mark = self._mark()
        start = self.pos
        sentence = self.sentences[start] if start < len(self.sentences) else 0

        quantified = False
        saw_determiner = False
        if self._peek() in lexicon.QUANTIFIERS:
            quantified = True
            self.pos += 1
        if self._peek() in lexicon.DETERMINERS:
            saw_determiner = True
            self.pos += 1

        word = self._peek()
        if word in lexicon.PRONOUNS and not quantified:
            self.pos += 1
            entity = EntityPhrase(head=None, category=None,
                                  span=(start, self.pos), pronoun=word,
                                  sentence=sentence)
            self.entities.append(entity)
            self._segment("entity", start)
            if with_postmods:
                self._parse_postmods(len(self.entities) - 1)
            return len(self.entities) - 1

        attributes: List[Attribute] = []
        while True:
            word = self._peek()
            if word is None:
                break
            if word in lexicon.ORDINAL_WORDS \
                    and not any(a.kind == "ordinal" for a in attributes):
                attributes.append(Attribute(
                    "ordinal", str(lexicon.ORDINAL_WORDS[word])))
            elif word in lexicon.SIZE_WORDS:
                attributes.append(Attribute("size", word))
            elif word in lexicon.COLOR_WORDS:
                attributes.append(Attribute("color", word))
            elif word in lexicon.LOCATION_ATTRIBUTE_WORDS:
                attributes.append(Attribute("location", word))
            else:
                break
            self.pos += 1

        head = self._peek()
        category: Optional[str] = None
        plural = False
        if head is not None:
            known = lexicon.noun_category(head)
            if known is not None:
                category, plural = known
                self.pos += 1
            elif not lexicon.is_function_word(head) \
                    and (saw_determiner or quantified or attributes):
                # Open-class noun outside the scene vocabulary.
                self.pos += 1
            else:
                head = None
        if head is None and not attributes:
            self._reset(mark)
            return None

        entity = EntityPhrase(
            head=head, category=category, span=(start, self.pos),
            attributes=attributes, plural=plural,
            quantified_all=quantified, sentence=sentence,
        )
        self.entities.append(entity)
        index = len(self.entities) - 1
        self._segment("entity", start)
        if with_postmods:
            self._parse_postmods(index)
        return index

    # ------------------------------------------------------------------
    # Post-modifiers
    # ------------------------------------------------------------------
    def _parse_postmods(self, index: int) -> None:
        while self.pos < self.limit:
            if self._parse_filler():
                continue
            if self._parse_plain_location(index):
                continue
            if self._parse_relative_clause(index):
                continue
            if self._parse_side_phrase(index):
                continue
            if self._parse_relation_clause(index, negated=False):
                continue
            if self._parse_gap_relative(index):
                continue
            if self._parse_attachment(index):
                continue
            break

    def _parse_filler(self) -> bool:
        start = self.pos
        for sequence in lexicon.FILLER_SEQUENCES:
            if self._match_sequence(sequence):
                self.pos += len(sequence)
                self._segment("filler", start)
                return True
        return False

    def _parse_plain_location(self, index: int) -> bool:
        """``on the LOC`` plus the long grammar's optional trailers."""
        start = self.pos
        if self._peek() != "on" or self._peek(1) != "the":
            return False
        word = self._peek(2)
        if word not in lexicon.LOCATION_ATTRIBUTE_WORDS:
            return False
        self.pos += 3
        for trailer in (("side", "of", "the", "picture"),
                        ("side", "of", "the", "image"),
                        ("of", "the", "image"),
                        ("of", "the", "picture")):
            if self._match_sequence(trailer):
                self.pos += len(trailer)
                break
        self.entities[index].attributes.append(Attribute("location", word))
        self._segment("location", start)
        return True

    def _parse_relative_clause(self, index: int) -> bool:
        """``that is ...`` — negated attribute, location, or relation."""
        mark = self._mark()
        start = self.pos
        for relativizer in lexicon.RELATIVIZER_SEQUENCES:
            if self._match_sequence(relativizer):
                self.pos += len(relativizer)
                break
        else:
            return False
        self._segment("relativizer", start)

        negated = False
        if self._peek() in lexicon.NEGATIONS:
            negation_start = self.pos
            self.pos += 1
            self._segment("negation", negation_start)
            negated = True
            word = self._peek()
            if word in lexicon.COLOR_WORDS:
                self.pos += 1
                self._segment("attribute", self.pos - 1)
                self.entities[index].attributes.append(
                    Attribute("color", word, negated=True))
                return True

        if not negated and self._parse_plain_location(index):
            return True
        if self._parse_relation_clause(index, negated=negated):
            return True
        if not negated and self._parse_participle_clause(index):
            return True
        self._reset(mark)
        return False

    def _parse_relation_clause(self, index: int, negated: bool) -> bool:
        mark = self._mark()
        start = self.pos
        for sequence, relation in lexicon.RELATION_SEQUENCES:
            if self._match_sequence(sequence):
                self.pos += len(sequence)
                break
        else:
            return False
        relation_span = (start, self.pos)
        self._segment("relation", start)
        anchor = self._parse_np()
        if anchor is None:
            self._reset(mark)
            return False
        self.clauses.append(RelationClause(
            relation=relation, target=index, anchor=anchor,
            negated=negated, span=relation_span))
        return True

    def _parse_side_phrase(self, index: int) -> bool:
        start = self.pos
        for sequence, side in lexicon.SIDE_SEQUENCES:
            if self._match_sequence(sequence):
                self.pos += len(sequence)
                self._segment("relation", start)
                self.clauses.append(RelationClause(
                    relation=f"side:{side}", target=index, anchor=None,
                    span=(start, self.pos)))
                return True
        return False

    def _parse_gap_relative(self, index: int) -> bool:
        """Reduced object relative: ``the hat he is wearing``."""
        word = self._peek()
        if word not in lexicon.PRONOUNS:
            return False
        if self._peek(1) not in _COPULAS:
            return False
        verb = self._peek(2)
        if verb is None or not verb.endswith("ing"):
            return False
        start = self.pos
        sentence = self.sentences[start]
        self.pos += 1
        self.entities.append(EntityPhrase(
            head=None, category=None, span=(start, self.pos),
            pronoun=word, sentence=sentence))
        self._segment("entity", start)
        verb_start = self.pos
        self.pos += 2
        self._segment("relation", verb_start)
        self.clauses.append(RelationClause(
            relation=verb, target=index,
            anchor=len(self.entities) - 1,
            span=(verb_start, self.pos)))
        return True

    def _parse_participle_clause(self, index: int) -> bool:
        """``that is wearing a red hat`` / bare ``wearing ...``."""
        verb = self._peek()
        if verb is None or not verb.endswith("ing") \
                or verb in lexicon.NOUN_TO_CATEGORY:
            return False
        mark = self._mark()
        start = self.pos
        self.pos += 1
        self._segment("relation", start)
        anchor = self._parse_np()
        if anchor is None:
            self._reset(mark)
            return False
        self.clauses.append(RelationClause(
            relation=verb, target=index, anchor=anchor,
            span=(start, start + 1)))
        return True

    def _parse_attachment(self, index: int) -> bool:
        """Prepositional attachment: ``a man in a red shirt``."""
        word = self._peek()
        if word in _PARTICIPLES:
            return self._parse_participle_clause(index)
        if word not in _ATTACHMENTS:
            return False
        if self._peek(1) not in lexicon.DETERMINERS:
            return False
        mark = self._mark()
        start = self.pos
        self.pos += 1
        self._segment("relation", start)
        anchor = self._parse_np()
        if anchor is None:
            self._reset(mark)
            return False
        self.clauses.append(RelationClause(
            relation=word, target=index, anchor=anchor,
            span=(start, start + 1)))
        return True

    # ------------------------------------------------------------------
    # Anaphora
    # ------------------------------------------------------------------
    def _resolve_pronouns(self) -> None:
        for index, entity in enumerate(self.entities):
            if entity.pronoun is None:
                continue
            entity.antecedent = self._find_antecedent(index, entity)

    def _antecedent_agrees(self, pronoun: str,
                           candidate: EntityPhrase) -> bool:
        is_person = (candidate.category == "person"
                     or (candidate.head or "") in HUMAN_NOUNS)
        if pronoun in lexicon.PERSON_PRONOUNS:
            return is_person
        if pronoun in lexicon.PLURAL_PRONOUNS:
            return candidate.plural or candidate.quantified_all
        if pronoun == "it":
            return not is_person
        return True

    def _find_antecedent(self, index: int,
                         entity: EntityPhrase) -> Optional[int]:
        candidates = [
            (j, other) for j, other in enumerate(self.entities)
            if j != index and other.pronoun is None
            and other.head is not None
            and other.span[0] < entity.span[0]
        ]
        if not candidates:
            return None
        # Prefer: earlier sentence + agreement > earlier sentence >
        # same sentence + agreement > most recent mention.
        pools = (
            [c for c in candidates if c[1].sentence < entity.sentence
             and self._antecedent_agrees(entity.pronoun, c[1])],
            [c for c in candidates if c[1].sentence < entity.sentence],
            [c for c in candidates
             if self._antecedent_agrees(entity.pronoun, c[1])],
            candidates,
        )
        for pool in pools:
            if pool:
                return max(pool, key=lambda c: c[1].span[0])[0]
        return None

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    def _tiled_segments(self) -> List[Tuple[str, Tuple[int, int]]]:
        """Order segments and fill any gaps so they tile the range."""
        ordered = sorted(self.segments, key=lambda seg: seg[1][0])
        tiled: List[Tuple[str, Tuple[int, int]]] = []
        cursor = 0
        for label, (start, end) in ordered:
            if start < cursor:  # defensive: never emit overlaps
                start = cursor
                if start >= end:
                    continue
            if start > cursor:
                tiled.append(("unparsed", (cursor, start)))
            tiled.append((label, (start, end)))
            cursor = end
        if cursor < len(self.words):
            tiled.append(("unparsed", (cursor, len(self.words))))
        return tiled


def parse(query: str) -> RelationTree:
    """Parse a referring expression into a :class:`RelationTree`.

    Never raises on arbitrary input: out-of-grammar material lowers to
    ``unparsed`` segments, and a query with no recognisable referent
    yields a trivial tree (``tree.is_trivial``), which downstream
    consumers treat as "fall back to flat tokens".
    """
    words, sentences = _word_stream(query)
    parser = _Parser(query, words, sentences)
    try:
        return parser.parse()
    except Exception:
        # A parser bug must never take down serving or evaluation;
        # degrade to the flat-token reading instead.
        return RelationTree(
            query=query, tokens=words,
            segments=[("unparsed", (0, len(words)))] if words else [],
            num_sentences=(max(sentences) + 1) if sentences else 1,
        )
