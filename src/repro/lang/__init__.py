"""Structured query understanding: parse referring expressions to trees.

The subsystem has three layers:

* :mod:`repro.lang.parser` — a deterministic recursive-descent parser
  over the referring-expression grammar (base templates, driving/crowded
  scenario forms, conjunction, negation, nested relative clauses,
  cross-sentence anaphora) producing a typed
  :class:`~repro.lang.tree.RelationTree`;
* :mod:`repro.lang.attention` — lowers trees to per-clause attention
  masks consumed by the clause-conditioned Rel2Att forward (flat-token
  fallback for trivial/single-clause trees);
* :mod:`repro.lang.semantics` — interprets trees against synthetic
  scenes, the verified-by-construction ground truth the compositional
  scenario is built on.
"""

from repro.lang.tree import (
    Attribute,
    EntityPhrase,
    RelationClause,
    RelationTree,
)
from repro.lang.parser import parse
from repro.lang.attention import (
    clause_contexts,
    clause_token_masks,
    pad_clause_masks,
)
from repro.lang.semantics import UnsupportedRelationError, resolve_tree

__all__ = [
    "Attribute",
    "EntityPhrase",
    "RelationClause",
    "RelationTree",
    "parse",
    "clause_contexts",
    "clause_token_masks",
    "pad_clause_masks",
    "UnsupportedRelationError",
    "resolve_tree",
]
