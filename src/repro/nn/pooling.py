"""Pooling layers wrapping the functional im2col implementations."""

from __future__ import annotations

from repro.autograd import Tensor, avg_pool2d, max_pool2d
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling over NCHW input."""

    def __init__(self, kernel_size: int, stride: int = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling over NCHW input."""

    def __init__(self, kernel_size: int, stride: int = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Collapse the spatial dimensions of NCHW input by averaging."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
