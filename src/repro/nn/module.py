"""Module system: parameters, hierarchical containers, state persistence."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.autograd.tensor import get_default_dtype


class StateDictKeyError(KeyError):
    """Raised when a state_dict has missing or unexpected parameter names."""

    def __str__(self) -> str:  # KeyError quotes its message; show it plainly
        return self.args[0] if self.args else ""


class StateDictShapeError(ValueError):
    """Raised when state_dict entries disagree with parameter shapes."""


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(np.asarray(data, dtype=get_default_dtype()), requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Child modules and parameters assigned as attributes are registered
    automatically, supporting recursive parameter collection, train/eval
    mode propagation, and ``state_dict`` persistence (numpy ``.npz``).
    Non-trainable state that must survive checkpointing (batch-norm
    running statistics, for instance) is declared with
    :meth:`register_buffer` and travels with the parameters through
    ``state_dict``/``load_state_dict``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        elif key in self.__dict__.get("_buffers", ()):
            value = np.asarray(value)
            self._buffers[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Buffers (persistent non-trainable state)
    # ------------------------------------------------------------------
    def register_buffer(self, name: str, value) -> np.ndarray:
        """Register ``value`` as a persistent non-trainable array.

        The buffer is exposed as a plain attribute; re-assigning the
        attribute (``self.running_mean = ...``) keeps the registry in
        sync, so exponential-average updates need no special casing.
        """
        value = np.asarray(value)
        self._buffers[name] = value
        object.__setattr__(self, name, value)
        return value

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs recursively."""
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def buffers(self) -> List[np.ndarray]:
        """Return all registered buffers of this module tree."""
        return [buffer for _, buffer in self.named_buffers()]

    def _named_buffer_owners(self, prefix: str = ""):
        """Yield ``(dotted_name, owning_module, attribute)`` triples."""
        for name in self._buffers:
            yield (f"{prefix}{name}", self, name)
        for name, module in self._modules.items():
            yield from module._named_buffer_owners(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module tree."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout / batch norm)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot all parameters and buffers (copies), dotted-keyed."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        state.update({name: buffer.copy() for name, buffer in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter and buffer values atomically.

        Every problem is gathered before any state is touched, so a
        bad snapshot can never leave the module half-loaded: missing and
        unexpected keys raise ``StateDictKeyError`` (a ``KeyError``)
        listing both sets, and shape mismatches raise
        ``StateDictShapeError`` (a ``ValueError``) listing every
        offending entry — silent numpy broadcasting never happens.
        Parameters are converted to the active default dtype; buffers
        keep the snapshot's dtype so resume stays bit-exact.
        """
        own = dict(self.named_parameters())
        buffer_owners = {
            name: (module, attr) for name, module, attr in self._named_buffer_owners()
        }
        own_buffers = dict(self.named_buffers())
        known = set(own) | set(own_buffers)
        missing = sorted(known - set(state))
        unexpected = sorted(set(state) - known)
        if missing or unexpected:
            parts = []
            if missing:
                parts.append(f"missing keys: {', '.join(missing)}")
            if unexpected:
                parts.append(f"unexpected keys: {', '.join(unexpected)}")
            raise StateDictKeyError(
                f"state_dict does not match module ({'; '.join(parts)})"
            )
        converted = {
            name: np.asarray(state[name], dtype=get_default_dtype()) for name in own
        }
        converted_buffers = {name: np.asarray(state[name]) for name in own_buffers}
        mismatched = [
            f"{name}: expected {param.shape}, got {converted[name].shape}"
            for name, param in own.items()
            if converted[name].shape != param.shape
        ]
        mismatched += [
            f"{name}: expected {buffer.shape}, got {converted_buffers[name].shape}"
            for name, buffer in own_buffers.items()
            if converted_buffers[name].shape != buffer.shape
        ]
        if mismatched:
            raise StateDictShapeError(
                "state_dict shape mismatch (" + "; ".join(mismatched) + ")"
            )
        for name, param in own.items():
            param.data[...] = converted[name]
        for name, (module, attr) in buffer_owners.items():
            setattr(module, attr, converted_buffers[name].copy())

    def save(self, path: str) -> None:
        """Serialise the parameters to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters previously written by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({key: archive[key] for key in archive.files})

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
