"""Module system: parameters, hierarchical containers, state persistence."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.autograd.tensor import get_default_dtype


class StateDictKeyError(KeyError):
    """Raised when a state_dict has missing or unexpected parameter names."""

    def __str__(self) -> str:  # KeyError quotes its message; show it plainly
        return self.args[0] if self.args else ""


class StateDictShapeError(ValueError):
    """Raised when state_dict entries disagree with parameter shapes."""


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a :class:`Module`."""

    def __init__(self, data, name: str = ""):
        super().__init__(np.asarray(data, dtype=get_default_dtype()), requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Child modules and parameters assigned as attributes are registered
    automatically, supporting recursive parameter collection, train/eval
    mode propagation, and ``state_dict`` persistence (numpy ``.npz``).
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module tree."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout / batch norm)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot all parameters (copies) keyed by dotted names."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values atomically.

        Every problem is gathered before any parameter is touched, so a
        bad snapshot can never leave the module half-loaded: missing and
        unexpected keys raise ``StateDictKeyError`` (a ``KeyError``)
        listing both sets, and shape mismatches raise
        ``StateDictShapeError`` (a ``ValueError``) listing every
        offending entry — silent numpy broadcasting never happens.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            parts = []
            if missing:
                parts.append(f"missing keys: {', '.join(missing)}")
            if unexpected:
                parts.append(f"unexpected keys: {', '.join(unexpected)}")
            raise StateDictKeyError(
                f"state_dict does not match module ({'; '.join(parts)})"
            )
        converted = {
            name: np.asarray(state[name], dtype=get_default_dtype()) for name in own
        }
        mismatched = [
            f"{name}: expected {param.shape}, got {converted[name].shape}"
            for name, param in own.items()
            if converted[name].shape != param.shape
        ]
        if mismatched:
            raise StateDictShapeError(
                "state_dict shape mismatch (" + "; ".join(mismatched) + ")"
            )
        for name, param in own.items():
            param.data[...] = converted[name]

    def save(self, path: str) -> None:
        """Serialise the parameters to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters previously written by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({key: archive[key] for key in archive.files})

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
