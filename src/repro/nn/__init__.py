"""Neural-network building blocks on top of :mod:`repro.autograd`."""

from repro.nn.module import (
    Module,
    Parameter,
    StateDictKeyError,
    StateDictShapeError,
)
from repro.nn.layers import (
    Conv2d,
    DilatedConv2d,
    Dropout,
    Embedding,
    FeedForward,
    Flatten,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.norm import BatchNorm2d, GroupNorm2d, LayerNorm
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.rnn import GRUCell, LSTM, LSTMCell
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    margin_ranking_loss,
    sigmoid_focal_loss,
    smooth_l1,
    softmax_cross_entropy,
)
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "StateDictKeyError",
    "StateDictShapeError",
    "Linear",
    "Conv2d",
    "DilatedConv2d",
    "Embedding",
    "Dropout",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "FeedForward",
    "BatchNorm2d",
    "GroupNorm2d",
    "LayerNorm",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "LSTM",
    "LSTMCell",
    "GRUCell",
    "softmax_cross_entropy",
    "binary_cross_entropy_with_logits",
    "sigmoid_focal_loss",
    "smooth_l1",
    "margin_ranking_loss",
    "init",
]
