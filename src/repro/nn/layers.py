"""Core layers: linear, convolution, embedding, dropout, containers."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.autograd import Tensor, conv2d, embedding_lookup
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.seeding import get_rng


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` over the last input dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng=rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution over NCHW inputs (cross-correlation, zero padding)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng=rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class DilatedConv2d(Module):
    """2-D convolution with a dilation rate, via kernel expansion.

    The autograd ``conv2d`` primitive (and the compiled executor's
    autotuned kernels behind it) has no dilation parameter, so dilation
    is lowered algebraically instead: the dense ``k x k`` weight is
    scattered into a zero-stuffed ``(d(k-1)+1)`` square kernel with a
    constant 0/1 placement matrix, and the standard convolution runs on
    that.  The scatter is a ``matmul`` against a constant, so gradients
    flow to the dense weight and the graph tracer captures the whole
    layer with the ordinary conv machinery (autotuner included).

    ``dilation=1`` skips the expansion and is bit-exact with
    :class:`Conv2d` given the same weights.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 dilation: int = 1, stride: int = 1,
                 padding: Optional[int] = None, bias: bool = True,
                 rng: np.random.Generator = None):
        super().__init__()
        if dilation < 1:
            raise ValueError(f"dilation must be >= 1, got {dilation}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.stride = stride
        #: Effective (zero-stuffed) kernel span.
        self.span = dilation * (kernel_size - 1) + 1
        # Default padding keeps the spatial size at stride 1 ("same").
        self.padding = padding if padding is not None else self.span // 2
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng=rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        if dilation > 1:
            # (k*k, span*span) 0/1 scatter: tap (i, j) of the dense
            # kernel lands at (i*d, j*d) of the expanded kernel.
            placement = np.zeros((kernel_size * kernel_size,
                                  self.span * self.span))
            for i in range(kernel_size):
                for j in range(kernel_size):
                    placement[i * kernel_size + j,
                              (i * dilation) * self.span + j * dilation] = 1.0
            self._placement = placement
        else:
            self._placement = None

    def expanded_weight(self) -> Tensor:
        """The zero-stuffed kernel the convolution actually runs with."""
        if self._placement is None:
            return self.weight
        flat = self.weight.reshape(
            self.out_channels * self.in_channels,
            self.kernel_size * self.kernel_size)
        spread = flat.matmul(Tensor(self._placement))
        return spread.reshape(self.out_channels, self.in_channels,
                              self.span, self.span)

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.expanded_weight(), self.bias,
                      stride=self.stride, padding=self.padding)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    ``padding_idx`` (if given) is initialised to zero; its row still
    receives gradients, matching the paper's fine-tuned PAD handling.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 padding_idx: Optional[int] = None, rng: np.random.Generator = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), std=0.1, rng=rng)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (get_rng().random(x.shape) < keep) / keep
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Collapse all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Sequential(Module):
    """Chain modules; ``forward`` pipes the input through each in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def __iter__(self) -> Iterable[Module]:
        return iter(getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x


class FeedForward(Module):
    """Two-layer feed-forward network as used inside Rel2Att (Eq. 1-2).

    ``FFN(x) = W2 relu(W1 x + b1) + b2`` applied position-wise.
    """

    def __init__(self, in_features: int, hidden_features: int, out_features: int,
                 rng: np.random.Generator = None):
        super().__init__()
        self.fc1 = Linear(in_features, hidden_features, rng=rng)
        self.fc2 = Linear(hidden_features, out_features, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())
