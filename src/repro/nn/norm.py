"""Normalisation layers: batch norm (2-D) and layer norm."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalisation over NCHW activations.

    Tracks running statistics for eval mode with exponential averaging,
    matching the standard formulation used by ResNet backbones.  The
    running statistics are registered buffers, so they persist through
    ``state_dict``/``load_state_dict`` and checkpoint/resume reproduces
    eval-mode predictions bit-exactly.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normalised = (x - mean) / (var + self.eps) ** 0.5
        scale = self.weight.reshape(1, -1, 1, 1)
        shift = self.bias.reshape(1, -1, 1, 1)
        return normalised * scale + shift


class GroupNorm2d(Module):
    """Group normalisation over NCHW activations (Wu & He, 2018).

    Statistics are computed per sample over (channel-group, H, W), so
    train and eval behaviour are identical — the preferred trunk norm
    here because grounding inference runs with batch size 1.
    """

    def __init__(self, num_features: int, num_groups: int = 4, eps: float = 1e-5):
        super().__init__()
        if num_features % num_groups != 0:
            num_groups = 1
        self.num_features = num_features
        self.num_groups = num_groups
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"GroupNorm2d expects NCHW input, got shape {x.shape}")
        batch, channels, height, width = x.shape
        grouped = x.reshape(batch, self.num_groups, channels // self.num_groups, height, width)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        normalised = (grouped - mean) / (var + self.eps) ** 0.5
        normalised = normalised.reshape(batch, channels, height, width)
        scale = self.weight.reshape(1, -1, 1, 1)
        shift = self.bias.reshape(1, -1, 1, 1)
        return normalised * scale + shift


class LayerNorm(Module):
    """Layer normalisation over the last dimension (per-position)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalised = (x - mean) / (var + self.eps) ** 0.5
        return normalised * self.weight + self.bias
