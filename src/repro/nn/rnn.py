"""Recurrent cells used by the two-stage baselines (speaker / listener).

Implements LSTM and GRU cells plus a sequence-unrolling wrapper.  These
model the RNN query encoders and the captioning decoder of the
speaker-listener-reinforcer baseline family.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor, concatenate, stack, zeros
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module


class LSTMCell(Module):
    """Single-step LSTM: gates computed from ``[x; h]`` with one matmul."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.gates = Linear(input_size + hidden_size, 4 * hidden_size, rng=rng)
        # Forget-gate bias of 1 stabilises early training.
        self.gates.bias.data[hidden_size : 2 * hidden_size] = 1.0

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        combined = concatenate([x, h_prev], axis=-1)
        pre = self.gates(combined)
        hs = self.hidden_size
        i = pre[:, 0 * hs : 1 * hs].sigmoid()
        f = pre[:, 1 * hs : 2 * hs].sigmoid()
        g = pre[:, 2 * hs : 3 * hs].tanh()
        o = pre[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        return (zeros((batch_size, self.hidden_size)), zeros((batch_size, self.hidden_size)))


class GRUCell(Module):
    """Single-step GRU cell."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.reset_update = Linear(input_size + hidden_size, 2 * hidden_size, rng=rng)
        self.candidate = Linear(input_size + hidden_size, hidden_size, rng=rng)

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        combined = concatenate([x, h_prev], axis=-1)
        pre = self.reset_update(combined)
        hs = self.hidden_size
        r = pre[:, :hs].sigmoid()
        z = pre[:, hs:].sigmoid()
        candidate_input = concatenate([x, r * h_prev], axis=-1)
        h_tilde = self.candidate(candidate_input).tanh()
        return (1.0 - z) * h_prev + z * h_tilde

    def initial_state(self, batch_size: int) -> Tensor:
        return zeros((batch_size, self.hidden_size))


class LSTM(Module):
    """Unroll an :class:`LSTMCell` over a ``(batch, time, features)`` input.

    Returns the per-step hidden states stacked on the time axis and the
    final ``(h, c)`` state.  ``mask`` (batch, time in {0,1}) freezes the
    state on padded steps so variable-length queries encode correctly.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        batch, steps = x.shape[0], x.shape[1]
        h, c = state if state is not None else self.cell.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            h_new, c_new = self.cell(x[:, t], (h, c))
            if mask is not None:
                keep = Tensor(mask[:, t : t + 1].astype(np.float64))
                h = keep * h_new + (1.0 - keep) * h
                c = keep * c_new + (1.0 - keep) * c
            else:
                h, c = h_new, c_new
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)
