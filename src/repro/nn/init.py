"""Weight initialisation schemes (Xavier/Glorot, Kaiming/He, plain)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.seeding import get_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape)) if shape else 1
    return fan_in, fan_out


def xavier_uniform(shape, gain: float = 1.0, rng: np.random.Generator = None) -> np.ndarray:
    """Glorot uniform: suitable for tanh/sigmoid and attention projections."""
    rng = rng or get_rng()
    fan_in, fan_out = _fan_in_out(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape, rng: np.random.Generator = None) -> np.ndarray:
    """He normal: suitable for ReLU networks (CNN trunks)."""
    rng = rng or get_rng()
    fan_in, _ = _fan_in_out(tuple(shape))
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def normal(shape, std: float = 0.01, rng: np.random.Generator = None) -> np.ndarray:
    """Plain zero-mean Gaussian initialisation."""
    rng = rng or get_rng()
    return rng.normal(0.0, std, size=shape)


def uniform(shape, bound: float = 0.1, rng: np.random.Generator = None) -> np.ndarray:
    """Plain symmetric uniform initialisation."""
    rng = rng or get_rng()
    return rng.uniform(-bound, bound, size=shape)
