"""Loss functions shared across YOLLO and the baseline models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor, as_tensor, log_softmax, where


def softmax_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer class ``targets``.

    ``logits`` has shape ``(..., classes)``; ``targets`` has the leading
    shape.  ``weights`` (same shape as targets) re-weights samples, e.g.
    to ignore padded time-steps in the speaker decoder.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    flat = log_probs.reshape(-1, logits.shape[-1])
    rows = np.arange(flat.shape[0])
    picked = flat[rows, targets.reshape(-1)]
    if weights is None:
        return -picked.mean()
    flat_weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    total = max(float(flat_weights.sum()), 1e-12)
    return -(picked * Tensor(flat_weights)).sum() / total


def _bce_elements(logits: Tensor, targets_t: Tensor) -> Tensor:
    """Per-element numerically stable BCE over raw logits.

    log(1 + exp(-|x|)) + max(x, 0) - x*t is the stable formulation.
    """
    abs_neg = -logits.abs()
    softplus = (abs_neg.exp() + 1.0).log()
    return logits.maximum(0.0) - logits * targets_t + softplus


def _weighted_mean(per_element: Tensor,
                   weights: Optional[np.ndarray]) -> Tensor:
    if weights is None:
        return per_element.mean()
    weight_t = Tensor(np.asarray(weights, dtype=np.float64))
    total = max(float(weight_t.data.sum()), 1e-12)
    return (per_element * weight_t).sum() / total


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Numerically stable elementwise BCE over raw logits."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    return _weighted_mean(_bce_elements(logits, targets_t), weights)


def sigmoid_focal_loss(
    logits: Tensor,
    targets: np.ndarray,
    alpha: Optional[float] = 0.25,
    gamma: float = 2.0,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Focal loss over raw logits (RetinaNet Eq. (4), sigmoid form).

    Per element: ``FL = alpha_t * (1 - p_t)^gamma * BCE`` where
    ``p_t = p`` for positives and ``1 - p`` for negatives.  The
    ``(1 - p_t)^gamma`` factor down-weights already-confident easy
    examples so dense negative anchors stop drowning the rare positives.

    ``alpha=None`` disables the class balance factor, and ``gamma=0``
    skips the modulation entirely, making the result *exactly*
    :func:`binary_cross_entropy_with_logits` — the reduction-equivalence
    anchor the loss registry's tests pin down.
    """
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    targets_arr = np.asarray(targets, dtype=np.float64)
    targets_t = Tensor(targets_arr)
    per_element = _bce_elements(logits, targets_t)
    if gamma > 0:
        p = logits.sigmoid()
        # 1 - p_t == p for negatives, 1 - p for positives.
        one_minus_pt = p + targets_t * (1.0 - p * 2.0)
        per_element = per_element * one_minus_pt ** gamma
    if alpha is not None:
        alpha_t = np.where(targets_arr > 0.5, alpha, 1.0 - alpha)
        per_element = per_element * Tensor(alpha_t)
    return _weighted_mean(per_element, weights)


def smooth_l1(
    predictions: Tensor,
    targets: np.ndarray,
    beta: float = 1.0,
) -> Tensor:
    """Elementwise smooth-L1 (Huber) as in Fast R-CNN Eq. (3); returns per-element losses."""
    diff = predictions - as_tensor(np.asarray(targets, dtype=np.float64))
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear = abs_diff - 0.5 * beta
    return where(abs_diff.data < beta, quadratic, linear)


def margin_ranking_loss(positive: Tensor, negative: Tensor, margin: float = 0.1) -> Tensor:
    """Hinge loss pushing ``positive`` scores above ``negative`` by ``margin``.

    Used by the listener baseline (and the MMI variant of the speaker) to
    contrast the target proposal against distractor proposals.
    """
    return (negative - positive + margin).maximum(0.0).mean()
