"""Greedy non-maximum suppression (used by the two-stage proposal stage)."""

from __future__ import annotations

import numpy as np

from repro.detection.boxes import iou_matrix


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5,
        max_keep: int = None) -> np.ndarray:
    """Return indices of kept boxes, sorted by descending score."""
    boxes = np.asarray(boxes, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if len(boxes) == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(-scores)
    ious = iou_matrix(boxes, boxes)
    keep = []
    suppressed = np.zeros(len(boxes), dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(idx)
        if max_keep is not None and len(keep) >= max_keep:
            break
        suppressed |= ious[idx] > iou_threshold
        suppressed[idx] = True
    return np.asarray(keep, dtype=np.int64)
