"""Balanced positive/negative anchor sampling (N=256 in the paper)."""

from __future__ import annotations

import numpy as np

from repro.detection.matcher import MatchResult
from repro.utils.seeding import get_rng


class BalancedSampler:
    """Sample a fixed-size minibatch of anchors for the detection losses.

    Up to ``positive_fraction * batch_size`` positives are drawn; the
    remainder is filled with negatives.  Returns flat anchor indices and
    matching 0/1 labels.
    """

    def __init__(self, batch_size: int = 256, positive_fraction: float = 0.5):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 < positive_fraction <= 1.0:
            raise ValueError("positive_fraction must be in (0, 1]")
        self.batch_size = batch_size
        self.positive_fraction = positive_fraction

    def sample(self, match: MatchResult, rng: np.random.Generator = None):
        """Return ``(indices, labels)`` arrays for one sample's anchors."""
        rng = rng or get_rng()
        positives = match.positive_indices
        negatives = match.negative_indices

        max_pos = int(round(self.batch_size * self.positive_fraction))
        if len(positives) > max_pos:
            positives = rng.choice(positives, size=max_pos, replace=False)
        num_neg = min(self.batch_size - len(positives), len(negatives))
        if len(negatives) > num_neg:
            negatives = rng.choice(negatives, size=num_neg, replace=False)

        indices = np.concatenate([positives, negatives])
        labels = np.concatenate(
            [np.ones(len(positives), dtype=np.int64), np.zeros(len(negatives), dtype=np.int64)]
        )
        return indices, labels
