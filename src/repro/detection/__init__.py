"""Detection toolbox: boxes, anchors, matching, sampling, NMS.

These utilities implement the RPN-style machinery of Section 3.3 of the
paper (anchor grids, IoU-based positive/negative labelling with
``rho_high``/``rho_low``, minibatch sampling of N anchors, bounding-box
offset encoding and decoding, and non-maximum suppression for the
two-stage proposal baseline).
"""

from repro.detection.boxes import (
    box_area,
    boxes_to_cxcywh,
    clip_boxes,
    cxcywh_to_boxes,
    decode_offsets,
    encode_offsets,
    iou_matrix,
)
from repro.detection.anchors import AnchorGrid
from repro.detection.matcher import AnchorMatcher, MatchResult, UniformTopKMatcher
from repro.detection.sampler import BalancedSampler
from repro.detection.nms import nms

__all__ = [
    "box_area",
    "iou_matrix",
    "clip_boxes",
    "boxes_to_cxcywh",
    "cxcywh_to_boxes",
    "encode_offsets",
    "decode_offsets",
    "AnchorGrid",
    "AnchorMatcher",
    "MatchResult",
    "UniformTopKMatcher",
    "BalancedSampler",
    "nms",
]
