"""Anchor-grid generation for the RPN-like target detection network.

``K`` anchors (scales x aspect ratios) are centred on every cell of the
backbone feature map and expressed in input-image pixel coordinates, as
in Section 3.3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class AnchorGrid:
    """Anchor boxes over a ``(grid_h, grid_w)`` feature map.

    Parameters
    ----------
    grid_h, grid_w:
        Spatial size of the backbone feature map.
    stride:
        Input pixels per feature-map cell.
    scales:
        Anchor side lengths in input pixels (before aspect adjustment).
    aspect_ratios:
        Height/width ratios; each (scale, ratio) pair yields one anchor.
    """

    grid_h: int
    grid_w: int
    stride: int
    scales: Tuple[float, ...] = (16.0, 32.0, 48.0)
    aspect_ratios: Tuple[float, ...] = (0.5, 1.0, 2.0)

    @property
    def num_anchors_per_cell(self) -> int:
        return len(self.scales) * len(self.aspect_ratios)

    @property
    def num_anchors(self) -> int:
        return self.grid_h * self.grid_w * self.num_anchors_per_cell

    def base_anchors(self) -> np.ndarray:
        """Anchor shapes centred at the origin: ``(K, 4)`` corner boxes."""
        shapes = []
        for scale in self.scales:
            for ratio in self.aspect_ratios:
                # Preserve area scale**2 while applying the aspect ratio.
                width = scale / np.sqrt(ratio)
                height = scale * np.sqrt(ratio)
                shapes.append([-width / 2, -height / 2, width / 2, height / 2])
        return np.asarray(shapes, dtype=np.float64)

    def all_anchors(self) -> np.ndarray:
        """Every anchor in image coordinates: ``(grid_h*grid_w*K, 4)``.

        Ordering is row-major over cells with the K anchors contiguous
        per cell, matching the detection head's output layout.
        """
        base = self.base_anchors()
        ys = (np.arange(self.grid_h) + 0.5) * self.stride
        xs = (np.arange(self.grid_w) + 0.5) * self.stride
        centers = np.stack(
            [
                np.repeat(xs[None, :], self.grid_h, axis=0),
                np.repeat(ys[:, None], self.grid_w, axis=1),
            ],
            axis=-1,
        ).reshape(-1, 2)  # (cells, 2) as (cx, cy)
        shifts = np.concatenate([centers, centers], axis=-1)  # (cells, 4)
        anchors = shifts[:, None, :] + base[None, :, :]
        return anchors.reshape(-1, 4)

    def cell_index(self, anchor_index: int) -> Tuple[int, int, int]:
        """Map a flat anchor index back to ``(row, col, k)``."""
        k = anchor_index % self.num_anchors_per_cell
        cell = anchor_index // self.num_anchors_per_cell
        return cell // self.grid_w, cell % self.grid_w, k
