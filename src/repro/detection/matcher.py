"""IoU-based anchor labelling with the paper's rho_high / rho_low rule."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import encode_offsets, iou_matrix


@dataclass
class MatchResult:
    """Per-anchor supervision produced by :class:`AnchorMatcher`.

    Attributes
    ----------
    labels:
        ``1`` positive, ``0`` negative, ``-1`` ignored (between thresholds).
    offsets:
        Regression targets toward the ground-truth box, per anchor.
    ious:
        IoU of every anchor with the ground-truth box.
    """

    labels: np.ndarray
    offsets: np.ndarray
    ious: np.ndarray

    @property
    def positive_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == 1)

    @property
    def negative_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == 0)


class AnchorMatcher:
    """Label anchors against the single target box of a grounding sample.

    Anchors with IoU >= ``rho_high`` become positives; anchors with
    IoU < ``rho_low`` become negatives; the band in between is ignored.
    If no anchor clears ``rho_high``, the best-IoU anchor is forced
    positive so every sample has at least one positive (standard RPN
    practice, required because the target is a single box).
    """

    def __init__(self, rho_high: float = 0.5, rho_low: float = 0.25,
                 force_match: bool = True):
        if not 0.0 <= rho_low <= rho_high <= 1.0:
            raise ValueError(f"invalid thresholds: rho_low={rho_low}, rho_high={rho_high}")
        self.rho_high = rho_high
        self.rho_low = rho_low
        self.force_match = force_match

    def match(self, anchors: np.ndarray, target_box: np.ndarray) -> MatchResult:
        """Produce labels and regression targets for one ground-truth box."""
        target = np.asarray(target_box, dtype=np.float64).reshape(1, 4)
        ious = iou_matrix(anchors, target)[:, 0]
        labels = np.full(len(anchors), -1, dtype=np.int64)
        labels[ious < self.rho_low] = 0
        labels[ious >= self.rho_high] = 1
        if self.force_match and not (labels == 1).any():
            labels[int(ious.argmax())] = 1
        offsets = encode_offsets(anchors, np.broadcast_to(target, anchors.shape))
        return MatchResult(labels=labels, offsets=offsets, ious=ious)
