"""Anchor labelling: the paper's IoU rule and YOLOF-style uniform top-k."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import boxes_to_cxcywh, encode_offsets, iou_matrix


@dataclass
class MatchResult:
    """Per-anchor supervision produced by :class:`AnchorMatcher`.

    Attributes
    ----------
    labels:
        ``1`` positive, ``0`` negative, ``-1`` ignored (between thresholds).
    offsets:
        Regression targets toward the ground-truth box, per anchor.
    ious:
        IoU of every anchor with the ground-truth box.
    """

    labels: np.ndarray
    offsets: np.ndarray
    ious: np.ndarray

    @property
    def positive_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == 1)

    @property
    def negative_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == 0)


class AnchorMatcher:
    """Label anchors against the single target box of a grounding sample.

    Anchors with IoU >= ``rho_high`` become positives; anchors with
    IoU < ``rho_low`` become negatives; the band in between is ignored.
    If no anchor clears ``rho_high``, the best-IoU anchor is forced
    positive so every sample has at least one positive (standard RPN
    practice, required because the target is a single box).
    """

    def __init__(self, rho_high: float = 0.5, rho_low: float = 0.25,
                 force_match: bool = True):
        if not 0.0 <= rho_low <= rho_high <= 1.0:
            raise ValueError(f"invalid thresholds: rho_low={rho_low}, rho_high={rho_high}")
        self.rho_high = rho_high
        self.rho_low = rho_low
        self.force_match = force_match

    def match(self, anchors: np.ndarray, target_box: np.ndarray) -> MatchResult:
        """Produce labels and regression targets for one ground-truth box."""
        target = np.asarray(target_box, dtype=np.float64).reshape(1, 4)
        ious = iou_matrix(anchors, target)[:, 0]
        labels = np.full(len(anchors), -1, dtype=np.int64)
        labels[ious < self.rho_low] = 0
        labels[ious >= self.rho_high] = 1
        if self.force_match and not (labels == 1).any():
            labels[int(ious.argmax())] = 1
        offsets = encode_offsets(anchors, np.broadcast_to(target, anchors.shape))
        return MatchResult(labels=labels, offsets=offsets, ious=ious)


class UniformTopKMatcher:
    """YOLOF-style uniform matching for the single-target grounding case.

    Instead of thresholding IoU (which hands large objects many positives
    and small objects almost none), the ``k`` anchors whose centers lie
    closest to the target's center become the positives — *exactly* ``k``
    per target, uniformly across object scales.  Everything else is
    negative, except non-selected anchors whose IoU with the target is at
    least ``ignore_threshold``: those are close enough that pushing them
    to background would fight the regression head, so they are ignored
    (label ``-1``), mirroring the reference implementation's
    ``ignore_thresh`` band.

    Ties in center distance are broken by anchor index (``argsort`` is
    stable over the lexicographic key), so matching is deterministic.
    """

    def __init__(self, topk: int = 4, ignore_threshold: float = 0.7):
        if topk < 1:
            raise ValueError(f"topk must be at least 1, got {topk}")
        if not 0.0 <= ignore_threshold <= 1.0:
            raise ValueError(
                f"ignore_threshold must be in [0, 1], got {ignore_threshold}")
        self.topk = topk
        self.ignore_threshold = ignore_threshold

    def match(self, anchors: np.ndarray, target_box: np.ndarray) -> MatchResult:
        """Produce labels and regression targets for one ground-truth box."""
        anchors = np.asarray(anchors, dtype=np.float64)
        target = np.asarray(target_box, dtype=np.float64).reshape(1, 4)
        ious = iou_matrix(anchors, target)[:, 0]
        anchor_centers = boxes_to_cxcywh(anchors)[:, :2]
        target_center = boxes_to_cxcywh(target)[0, :2]
        distances = np.abs(anchor_centers - target_center).sum(axis=1)

        k = min(self.topk, len(anchors))
        order = np.argsort(distances, kind="stable")
        selected = order[:k]
        labels = np.zeros(len(anchors), dtype=np.int64)
        labels[ious >= self.ignore_threshold] = -1
        labels[selected] = 1
        offsets = encode_offsets(anchors, np.broadcast_to(target, anchors.shape))
        return MatchResult(labels=labels, offsets=offsets, ious=ious)
