"""Bounding-box primitives.

Boxes are numpy arrays of shape ``(..., 4)`` in ``(x1, y1, x2, y2)``
corner format with pixel coordinates; ``x2``/``y2`` are exclusive-ish
continuous coordinates (no +1 convention).  Offset encoding follows the
Faster R-CNN parameterisation the paper adopts for its RPN-like head.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-8


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Area of each box; degenerate boxes get zero area."""
    boxes = np.asarray(boxes, dtype=np.float64)
    width = np.clip(boxes[..., 2] - boxes[..., 0], 0.0, None)
    height = np.clip(boxes[..., 3] - boxes[..., 1], 0.0, None)
    return width * height


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between ``(m, 4)`` and ``(n, 4)`` boxes → ``(m, n)``."""
    boxes_a = np.atleast_2d(np.asarray(boxes_a, dtype=np.float64))
    boxes_b = np.atleast_2d(np.asarray(boxes_b, dtype=np.float64))
    left = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    top = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    right = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    bottom = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])
    intersection = np.clip(right - left, 0.0, None) * np.clip(bottom - top, 0.0, None)
    union = box_area(boxes_a)[:, None] + box_area(boxes_b)[None, :] - intersection
    return intersection / np.maximum(union, _EPS)


def clip_boxes(boxes: np.ndarray, height: float, width: float) -> np.ndarray:
    """Clip boxes to image bounds ``[0, width] x [0, height]``."""
    boxes = np.asarray(boxes, dtype=np.float64).copy()
    boxes[..., 0] = np.clip(boxes[..., 0], 0.0, width)
    boxes[..., 2] = np.clip(boxes[..., 2], 0.0, width)
    boxes[..., 1] = np.clip(boxes[..., 1], 0.0, height)
    boxes[..., 3] = np.clip(boxes[..., 3], 0.0, height)
    return boxes


def boxes_to_cxcywh(boxes: np.ndarray) -> np.ndarray:
    """Convert corner boxes to ``(cx, cy, w, h)``."""
    boxes = np.asarray(boxes, dtype=np.float64)
    width = boxes[..., 2] - boxes[..., 0]
    height = boxes[..., 3] - boxes[..., 1]
    cx = boxes[..., 0] + 0.5 * width
    cy = boxes[..., 1] + 0.5 * height
    return np.stack([cx, cy, width, height], axis=-1)


def cxcywh_to_boxes(boxes: np.ndarray) -> np.ndarray:
    """Convert ``(cx, cy, w, h)`` boxes to corner format."""
    boxes = np.asarray(boxes, dtype=np.float64)
    half_w = 0.5 * boxes[..., 2]
    half_h = 0.5 * boxes[..., 3]
    return np.stack(
        [
            boxes[..., 0] - half_w,
            boxes[..., 1] - half_h,
            boxes[..., 0] + half_w,
            boxes[..., 1] + half_h,
        ],
        axis=-1,
    )


def encode_offsets(anchors: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Encode target boxes as offsets relative to anchors (Faster R-CNN).

    ``t_x = (cx - cx_a) / w_a``, ``t_w = log(w / w_a)`` and analogously
    for y/h.  Both inputs are corner-format ``(..., 4)`` arrays.
    """
    anchor_c = boxes_to_cxcywh(anchors)
    target_c = boxes_to_cxcywh(targets)
    tx = (target_c[..., 0] - anchor_c[..., 0]) / np.maximum(anchor_c[..., 2], _EPS)
    ty = (target_c[..., 1] - anchor_c[..., 1]) / np.maximum(anchor_c[..., 3], _EPS)
    tw = np.log(np.maximum(target_c[..., 2], _EPS) / np.maximum(anchor_c[..., 2], _EPS))
    th = np.log(np.maximum(target_c[..., 3], _EPS) / np.maximum(anchor_c[..., 3], _EPS))
    return np.stack([tx, ty, tw, th], axis=-1)


def decode_offsets(anchors: np.ndarray, offsets: np.ndarray, max_log_wh: float = 4.0) -> np.ndarray:
    """Apply predicted offsets to anchors, inverting :func:`encode_offsets`.

    ``max_log_wh`` clamps the exponent so early-training garbage cannot
    overflow to astronomically large boxes.
    """
    anchor_c = boxes_to_cxcywh(anchors)
    offsets = np.asarray(offsets, dtype=np.float64)
    cx = anchor_c[..., 0] + offsets[..., 0] * anchor_c[..., 2]
    cy = anchor_c[..., 1] + offsets[..., 1] * anchor_c[..., 3]
    w = anchor_c[..., 2] * np.exp(np.clip(offsets[..., 2], -max_log_wh, max_log_wh))
    h = anchor_c[..., 3] * np.exp(np.clip(offsets[..., 3], -max_log_wh, max_log_wh))
    return cxcywh_to_boxes(np.stack([cx, cy, w, h], axis=-1))
