"""Process-wide deterministic random-number management.

Every stochastic component in the library (weight initialisation, data
generation, minibatch sampling, dropout) draws from generators produced
here, so a single :func:`seed_everything` call makes an entire training
run reproducible.
"""

from __future__ import annotations

import numpy as np

_GLOBAL_SEED = 0
_GLOBAL_RNG = np.random.default_rng(_GLOBAL_SEED)


def seed_everything(seed: int) -> None:
    """Reset the global generator; subsequent components are deterministic."""
    global _GLOBAL_SEED, _GLOBAL_RNG
    _GLOBAL_SEED = int(seed)
    _GLOBAL_RNG = np.random.default_rng(_GLOBAL_SEED)


def get_rng() -> np.random.Generator:
    """Return the process-global generator (seeded by :func:`seed_everything`)."""
    return _GLOBAL_RNG


def spawn_rng(tag: str = "") -> np.random.Generator:
    """Derive an independent generator from the global seed and a tag.

    Use this for components that must not perturb each other's random
    streams (e.g. the data generator vs. model initialisation).
    """
    tag_hash = abs(hash(tag)) % (2**31)
    return np.random.default_rng((_GLOBAL_SEED, tag_hash))
