"""Process-wide deterministic random-number management.

Every stochastic component in the library (weight initialisation, data
generation, minibatch sampling, dropout) draws from generators produced
here, so a single :func:`seed_everything` call makes an entire training
run reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np

_GLOBAL_SEED = 0
_GLOBAL_RNG = np.random.default_rng(_GLOBAL_SEED)


def seed_everything(seed: int) -> None:
    """Reset the global generator; subsequent components are deterministic."""
    global _GLOBAL_SEED, _GLOBAL_RNG
    _GLOBAL_SEED = int(seed)
    _GLOBAL_RNG = np.random.default_rng(_GLOBAL_SEED)


def get_rng() -> np.random.Generator:
    """Return the process-global generator (seeded by :func:`seed_everything`)."""
    return _GLOBAL_RNG


def spawn_rng(tag: str = "") -> np.random.Generator:
    """Derive an independent generator from the global seed and a tag.

    Use this for components that must not perturb each other's random
    streams (e.g. the data generator vs. model initialisation).

    The tag is folded in with CRC-32 rather than ``hash()`` — the
    built-in string hash is salted per process (``PYTHONHASHSEED``),
    which would give every process a different stream and break
    cross-process reproducibility (and checkpoint resume in a fresh
    process).
    """
    tag_hash = zlib.crc32(tag.encode("utf-8"))
    return np.random.default_rng((_GLOBAL_SEED, tag_hash))
