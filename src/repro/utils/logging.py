"""Minimal progress logging used by trainers and the experiment harness."""

from __future__ import annotations

import sys
import time


class ProgressLogger:
    """Rate-limited stderr logger with a common prefix.

    Keeps long training loops observable without flooding the console:
    messages tagged as periodic are dropped unless ``min_interval``
    seconds elapsed since the last emitted periodic message.
    """

    def __init__(self, prefix: str = "", min_interval: float = 1.0, enabled: bool = True):
        self.prefix = prefix
        self.min_interval = min_interval
        self.enabled = enabled
        # -inf, not 0.0: time.monotonic() has an arbitrary origin, so a
        # zero start could silently swallow the first periodic message.
        self._last_emit = float("-inf")

    def log(self, message: str) -> None:
        """Emit an unconditional message."""
        if self.enabled:
            print(f"[{self.prefix}] {message}" if self.prefix else message, file=sys.stderr)

    def periodic(self, message: str) -> None:
        """Emit a message only if enough time passed since the previous one."""
        now = time.monotonic()
        if self.enabled and now - self._last_emit >= self.min_interval:
            self._last_emit = now
            self.log(message)
