"""Shared utilities: deterministic seeding and lightweight progress logging."""

from repro.utils.seeding import get_rng, seed_everything, spawn_rng
from repro.utils.logging import ProgressLogger

__all__ = ["get_rng", "seed_everything", "spawn_rng", "ProgressLogger"]
