"""Two-stage visual-grounding baselines (the paper's comparison systems).

Stage i proposes query-blind object candidates (:mod:`proposals`): either
a deterministic selective-search-style segmenter or a trained
class-agnostic RPN — both reproduce the pathologies the paper attributes
to two-stage pipelines (misaligned boxes, missed targets).  Stage ii
scores every proposal against the query (:mod:`listener`,
:mod:`speaker`), paying the per-proposal cost that makes these systems
20-30x slower than YOLLO.
"""

from repro.twostage.regions import RegionEncoder, crop_and_resize, spatial_features
from repro.twostage.proposals import (
    ProposalSet,
    RPNProposer,
    SegmentationProposer,
    train_rpn,
)
from repro.twostage.listener import ListenerMatcher, train_listener
from repro.twostage.speaker import SpeakerScorer, train_speaker
from repro.twostage.pipeline import TwoStageGrounder, train_matchers

__all__ = [
    "crop_and_resize",
    "spatial_features",
    "RegionEncoder",
    "ProposalSet",
    "SegmentationProposer",
    "RPNProposer",
    "train_rpn",
    "ListenerMatcher",
    "train_listener",
    "SpeakerScorer",
    "train_speaker",
    "TwoStageGrounder",
    "train_matchers",
]
