"""The assembled two-stage grounder (Figure 1, top path).

Stage i proposes boxes for the image; stage ii scores every proposal
against the query with one or more matchers (listener / speaker); the
top-scoring proposal is the answer.  Implements the same batch-grounder
protocol as :class:`repro.core.Grounder` so a single evaluation and
timing path serves both paradigms.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.data.refcoco import GroundingSample
from repro.obs import trace_span


class TwoStageGrounder:
    """Compose a proposal generator with matching model(s).

    Parameters
    ----------
    proposer:
        Object with ``propose(image) -> ProposalSet``.
    matchers:
        Mapping of name -> matcher; each matcher is called per proposal
        set and returns scores.  Multiple matchers form an ensemble
        (scores are z-normalised and summed), reproducing the
        "speaker+listener" rows of the paper's tables.
    """

    def __init__(self, proposer, matchers: Dict[str, object],
                 cache_proposals: bool = True):
        if not matchers:
            raise ValueError("at least one matcher is required")
        self.proposer = proposer
        self.matchers = dict(matchers)
        self.cache_proposals = cache_proposals
        self._proposal_cache: Dict[int, object] = {}
        self.last_proposal_seconds = 0.0
        self.last_matching_seconds = 0.0

    @property
    def name(self) -> str:
        return "+".join(self.matchers)

    def _proposals_for(self, sample: GroundingSample):
        key = id(sample.scene)
        if self.cache_proposals and key in self._proposal_cache:
            return self._proposal_cache[key]
        proposals = self.proposer.propose(sample.image)
        if self.cache_proposals:
            self._proposal_cache[key] = proposals
        return proposals

    def ground_sample(self, sample: GroundingSample) -> np.ndarray:
        """Ground one sample; records stage timings for Table 5."""
        start = time.perf_counter()
        with trace_span("twostage.propose"):
            proposals = self.proposer.propose(sample.image)
        self.last_proposal_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with trace_span("twostage.match"), no_grad():
            combined = np.zeros(len(proposals))
            for matcher in self.matchers.values():
                token_ids, token_mask = matcher.vocab.encode(
                    sample.tokens, matcher.max_query_length
                )
                scores = matcher(sample.image, proposals, token_ids, token_mask)
                spread = scores.std() + 1e-8
                combined = combined + (scores - scores.mean()) / spread
        self.last_matching_seconds = time.perf_counter() - start
        return proposals.boxes[int(combined.argmax())]

    def ground_batch(self, samples: Sequence[GroundingSample]) -> np.ndarray:
        """Batch grounder protocol: samples -> boxes ``(n, 4)``."""
        return np.stack([self.ground_sample(sample) for sample in samples])

    __call__ = ground_batch

    def serve(self, **kwargs):
        """Wrap this grounder in a micro-batching :class:`ServeEngine`.

        Two-stage grounding has no batched forward, so the engine's win
        here comes from the result cache and the shared telemetry.
        """
        from repro.serve import ServeEngine

        return ServeEngine(self, **kwargs)

    def proposal_time(self, sample: GroundingSample) -> float:
        """Stage-i wall-clock for one sample (Table 5's parenthesis)."""
        start = time.perf_counter()
        self.proposer.propose(sample.image)
        return time.perf_counter() - start


def train_matchers(
    matchers: Dict[str, object],
    samples: Sequence[GroundingSample],
    proposer=None,
    *,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    resume: bool = False,
    logger=None,
    listener_kwargs: Optional[Dict] = None,
    speaker_kwargs: Optional[Dict] = None,
) -> Dict[str, List[float]]:
    """Fault-tolerantly train every matcher of a two-stage ensemble.

    Each matcher trains under its own checkpoint sub-directory, so a
    crash while training the speaker of a "speaker+listener" ensemble
    resumes the speaker mid-run instead of re-training the finished
    listener.  Returns per-matcher loss curves keyed like ``matchers``.
    """
    from repro.twostage.listener import ListenerMatcher, train_listener
    from repro.twostage.speaker import SpeakerScorer, train_speaker

    losses: Dict[str, List[float]] = {}
    for name, matcher in matchers.items():
        subdir = os.path.join(checkpoint_dir, name) if checkpoint_dir else None
        common = dict(checkpoint_dir=subdir, checkpoint_every=checkpoint_every,
                      resume=resume, logger=logger)
        if isinstance(matcher, ListenerMatcher):
            if proposer is None:
                raise ValueError("training a listener requires a proposer")
            losses[name] = train_listener(
                matcher, samples, proposer, **common, **(listener_kwargs or {})
            )
        elif isinstance(matcher, SpeakerScorer):
            losses[name] = train_speaker(
                matcher, samples, **common, **(speaker_kwargs or {})
            )
        else:
            raise TypeError(f"matcher {name!r} has unknown type {type(matcher)!r}")
    return losses
