"""Per-proposal region features for the matching stage.

Two-stage methods embed each proposal independently: the region pixels
are cropped and resized to a fixed resolution, encoded by a small CNN,
and concatenated with the standard 5-d normalised spatial feature
(x1, y1, x2, y2, relative area).  This per-proposal work is exactly the
cost the paper eliminates.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.autograd import Tensor, concatenate
from repro.nn import Linear, Module


def crop_and_resize(image: np.ndarray, box: np.ndarray,
                    out_size: Tuple[int, int] = (16, 16)) -> np.ndarray:
    """Crop ``(3, H, W)`` image to ``box`` and nearest-neighbour resize."""
    _, height, width = image.shape
    x1 = float(np.clip(box[0], 0, width - 1))
    y1 = float(np.clip(box[1], 0, height - 1))
    x2 = float(np.clip(box[2], x1 + 1e-3, width))
    y2 = float(np.clip(box[3], y1 + 1e-3, height))
    out_h, out_w = out_size
    ys = np.clip((y1 + (np.arange(out_h) + 0.5) / out_h * (y2 - y1)).astype(int), 0, height - 1)
    xs = np.clip((x1 + (np.arange(out_w) + 0.5) / out_w * (x2 - x1)).astype(int), 0, width - 1)
    return image[:, ys[:, None], xs[None, :]]


def spatial_features(boxes: np.ndarray, image_height: int, image_width: int) -> np.ndarray:
    """Normalised 5-d spatial feature per box: corners + relative area."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scale = np.asarray([image_width, image_height, image_width, image_height])
    normalised = boxes / scale
    area = (
        (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
        / (image_height * image_width)
    )
    return np.concatenate([normalised, area[:, None]], axis=1)


class RegionEncoder(Module):
    """Backbone + spatial-feature encoder for fixed-size region crops.

    As in the speaker-listener-reinforcer systems, every proposal crop
    is resized to the network's canonical input size and pushed through
    the full CNN — the per-proposal cost that dominates two-stage
    inference (Table 5).  Maps ``(3, crop, crop)`` crops plus 5-d
    spatial features to ``embed_dim`` vectors.
    """

    def __init__(self, embed_dim: int = 32, crop_size: int = 32,
                 backbone: str = "resnet50"):
        super().__init__()
        from repro.backbone import build_backbone

        self.crop_size = crop_size
        self.backbone = build_backbone(backbone)
        self.fc = Linear(self.backbone.out_channels + 5, embed_dim)

    def encode_crops(self, crops: np.ndarray, spatial: np.ndarray) -> Tensor:
        """Crops ``(P, 3, c, c)`` + spatial ``(P, 5)`` -> ``(P, d)``."""
        hidden = self.backbone(Tensor(crops))
        pooled = hidden.max(axis=(2, 3))
        features = concatenate([pooled, Tensor(np.asarray(spatial))], axis=1)
        return self.fc(features)

    def forward(self, image: np.ndarray, boxes: np.ndarray) -> Tensor:
        """Encode every box of one image: ``(P, d)``."""
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        crops = np.stack(
            [crop_and_resize(image, box, (self.crop_size, self.crop_size)) for box in boxes]
        )
        spatial = spatial_features(boxes, image.shape[1], image.shape[2])
        return self.encode_crops(crops, spatial)
