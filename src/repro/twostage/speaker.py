"""Speaker baseline: caption-likelihood scoring (Mao et al. / Yu et al.).

The speaker is an LSTM language model conditioned on a region embedding;
a proposal's score is the log-likelihood of generating the query as that
region's caption.  At inference the LSTM must be unrolled once *per
proposal*, which is why the speaker is the slowest row of Table 5.
The MMI variant adds a max-margin term contrasting the target region's
likelihood against distractor regions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, concatenate, no_grad
from repro.data.refcoco import GroundingSample
from repro.detection import iou_matrix
from repro.nn import Embedding, Linear, LSTM, Module, softmax_cross_entropy
from repro.optim import Adam
from repro.text.vocab import Vocabulary
from repro.twostage.proposals import ProposalSet
from repro.twostage.regions import RegionEncoder
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


class SpeakerScorer(Module):
    """Region-conditioned LSTM language model over queries.

    The region embedding is concatenated to every word input (a common
    show-and-tell conditioning variant that avoids state surgery).
    """

    def __init__(self, vocab: Vocabulary, embed_dim: int = 32,
                 word_dim: int = 24, hidden_dim: int = 48,
                 max_query_length: int = 20):
        super().__init__()
        self.vocab = vocab
        self.max_query_length = max_query_length
        self.word_embedding = Embedding(len(vocab), word_dim, padding_idx=vocab.pad_id)
        self.lstm = LSTM(word_dim + embed_dim, hidden_dim)
        self.output = Linear(hidden_dim, len(vocab))
        self.region_encoder = RegionEncoder(embed_dim=embed_dim)

    def sequence_logits(self, region_embed: Tensor, token_ids: np.ndarray,
                        token_mask: np.ndarray) -> Tensor:
        """Teacher-forced next-token logits ``(P, L, V)``.

        ``region_embed`` is ``(P, d)``; the query is broadcast to all P
        regions.  Step ``t`` predicts token ``t`` from tokens ``< t``
        (BOS is the zero word embedding).
        """
        num_regions = region_embed.shape[0]
        length = token_ids.shape[-1]
        ids = np.broadcast_to(token_ids.reshape(1, -1), (num_regions, length))
        # Shift right: input at step t is token t-1 (PAD acts as BOS).
        shifted = np.zeros_like(ids)
        shifted[:, 1:] = ids[:, :-1]
        embedded = self.word_embedding(shifted)  # (P, L, w)
        region_seq = region_embed.expand_dims(1) * Tensor(np.ones((1, length, 1)))
        inputs = concatenate([embedded, region_seq], axis=2)
        mask = np.broadcast_to(token_mask.reshape(1, -1), (num_regions, length))
        outputs, _ = self.lstm(inputs, mask=mask)
        return self.output(outputs)

    def log_likelihoods(self, image: np.ndarray, boxes: np.ndarray,
                        token_ids: np.ndarray, token_mask: np.ndarray) -> Tensor:
        """Per-proposal mean log P(query | region): ``(P,)``."""
        from repro.autograd import log_softmax

        region_embed = self.region_encoder(image, boxes)
        logits = self.sequence_logits(region_embed, token_ids, token_mask)
        log_probs = log_softmax(logits, axis=-1)
        num_regions = logits.shape[0]
        length = token_ids.shape[-1]
        ids = np.broadcast_to(token_ids.reshape(1, -1), (num_regions, length))
        rows = np.arange(num_regions)[:, None]
        cols = np.arange(length)[None, :]
        picked = log_probs[rows, cols, ids]  # (P, L)
        mask = Tensor(np.broadcast_to(token_mask.reshape(1, -1), (num_regions, length)).copy())
        token_count = max(float(token_mask.sum()), 1.0)
        return (picked * mask).sum(axis=1) / token_count

    def forward(self, image: np.ndarray, proposals: ProposalSet,
                token_ids: np.ndarray, token_mask: np.ndarray) -> np.ndarray:
        """Inference scores for a proposal set (higher = better match)."""
        self.eval()
        with no_grad():
            scores = self.log_likelihoods(
                image, proposals.boxes, token_ids, token_mask
            )
        self.train()
        return scores.data.copy()


def train_speaker(
    speaker: SpeakerScorer,
    samples: Sequence[GroundingSample],
    steps: int = 400,
    lr: float = 2e-3,
    mmi_margin: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    logger: Optional[ProgressLogger] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> List[float]:
    """Train the speaker to caption ground-truth regions.

    ``mmi_margin > 0`` enables the MMI objective: the target region's
    query likelihood must beat a random distractor region's by the
    margin (Mao et al., 2016).

    With ``checkpoint_dir`` set the loop runs under a
    :class:`repro.runtime.TrainingSupervisor` (checkpoint/resume plus
    anomaly skip-step); ``resume=True`` continues a killed run.
    """
    rng = rng if rng is not None else spawn_rng("speaker-train")
    logger = logger or ProgressLogger("speaker", enabled=False)
    optimizer = Adam(speaker.parameters(), lr=lr)
    losses: List[float] = []

    def forward_backward(step: int) -> float:
        sample = samples[int(rng.integers(0, len(samples)))]
        token_ids, token_mask = speaker.vocab.encode(
            sample.tokens, speaker.max_query_length
        )
        region_embed = speaker.region_encoder(sample.image, sample.target_box[None])
        logits = speaker.sequence_logits(region_embed, token_ids, token_mask)
        loss = softmax_cross_entropy(
            logits.reshape(-1, logits.shape[-1]),
            np.broadcast_to(token_ids, (1, len(token_ids))).reshape(-1),
            weights=token_mask.reshape(-1),
        )

        if mmi_margin > 0 and len(sample.scene.objects) > 1:
            distractors = [
                o.box for i, o in enumerate(sample.scene.objects)
                if i != sample.target_index
            ]
            distractor = distractors[int(rng.integers(0, len(distractors)))]
            pair = np.stack([sample.target_box, distractor])
            likelihoods = speaker.log_likelihoods(
                sample.image, pair, token_ids, token_mask
            )
            margin_term = (likelihoods[1] - likelihoods[0] + mmi_margin).maximum(0.0)
            loss = loss + margin_term

        optimizer.zero_grad()
        loss.backward()
        return float(loss.data)

    def apply_update(step: int, loss_value: float) -> None:
        optimizer.step()
        losses.append(loss_value)
        logger.periodic(f"step {step}/{steps} loss={loss_value:.3f}")

    from repro.runtime import CallbackTask, TrainingSupervisor

    task = CallbackTask(
        total_iterations=steps,
        forward_backward=forward_backward,
        apply_update=apply_update,
        optimizer=optimizer,
        modules={"speaker": speaker},
        rng=rng,
        fingerprint_data={"task": "speaker-train", "steps": steps, "lr": lr,
                          "mmi_margin": mmi_margin},
        extra_state=lambda: {"losses": list(losses)},
        load_extra_state=lambda saved: losses.__setitem__(
            slice(None), saved["losses"]
        ),
        result=lambda: losses,
    )
    if checkpoint_dir is not None:
        TrainingSupervisor(
            task,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every or max(1, steps // 4),
            resume=resume,
            logger=logger,
        ).run()
    else:
        while task.iteration < task.total_iterations:
            task.apply_step(task.forward_backward())
    return losses
