"""Stage-i proposal generators (query-blind, as the paper criticises).

Two implementations:

* :class:`SegmentationProposer` — a deterministic selective-search-style
  proposer: foreground segmentation, connected components, plus jittered
  and merged variants.  Its ``quality`` knob controls box misalignment
  and target misses, modelling the detector pathologies of Section 1.
* :class:`RPNProposer` — a trained class-agnostic region proposal
  network (the Faster-R-CNN stand-in): backbone + objectness/offset
  heads over the shared anchor grid, decoded with top-k + NMS.

Both are *query-blind*: nothing about the language query informs stage i,
which is precisely the structural weakness YOLLO removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import ndimage

from repro.autograd import Tensor, no_grad, softmax
from repro.backbone import build_backbone
from repro.data.refcoco import GroundingSample
from repro.detection import (
    AnchorGrid,
    AnchorMatcher,
    BalancedSampler,
    MatchResult,
    clip_boxes,
    decode_offsets,
    encode_offsets,
    iou_matrix,
    nms,
)
from repro.nn import Conv2d, Module, smooth_l1, softmax_cross_entropy
from repro.optim import Adam
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


@dataclass
class ProposalSet:
    """Stage-i output for one image."""

    boxes: np.ndarray  # (P, 4)
    scores: np.ndarray  # (P,) objectness

    def __len__(self) -> int:
        return len(self.boxes)


class SegmentationProposer:
    """Selective-search-style proposer over the synthetic renders.

    Foreground pixels (those deviating from the smooth background) are
    grouped into connected components; each component contributes its
    bounding box plus ``jitter_copies`` perturbed variants, and adjacent
    component pairs contribute merged boxes.  ``quality`` in (0, 1]
    scales both the jitter magnitude and the per-component miss rate.
    """

    def __init__(self, quality: float = 0.7, jitter_copies: int = 10,
                 max_proposals: int = 100,
                 rng: Optional[np.random.Generator] = None):
        if not 0.0 < quality <= 1.0:
            raise ValueError("quality must be in (0, 1]")
        self.quality = quality
        self.jitter_copies = jitter_copies
        self.max_proposals = max_proposals
        self._rng = rng if rng is not None else spawn_rng("seg-proposer")

    def propose(self, image: np.ndarray) -> ProposalSet:
        """Image ``(3, H, W)`` -> proposals."""
        rng = self._rng
        _, height, width = image.shape
        foreground = self._foreground_mask(image)
        labels, count = ndimage.label(foreground)
        jitter_scale = 2.5 * (1.0 - self.quality) + 0.5

        boxes: List[np.ndarray] = []
        components: List[np.ndarray] = []
        for slice_y, slice_x in ndimage.find_objects(labels):
            box = np.asarray(
                [slice_x.start, slice_y.start, slice_x.stop, slice_y.stop], dtype=np.float64
            )
            if (box[2] - box[0]) * (box[3] - box[1]) < 9:
                continue
            components.append(box)
            if rng.random() > self.quality * 0.3 + 0.7:  # occasional hard miss
                continue
            boxes.append(box)
            for _ in range(self.jitter_copies):
                noise = rng.normal(0.0, jitter_scale, size=4)
                boxes.append(box + noise)
        for i in range(len(components)):
            for j in range(i + 1, len(components)):
                merged = np.concatenate([components[i], components[j]])
                boxes.append(
                    np.asarray(
                        [merged[0::4].min(), merged[1::4].min(),
                         merged[2::4].max(), merged[3::4].max()]
                    )
                )
        if not boxes:  # degenerate image: fall back to the full frame
            boxes = [np.asarray([0.0, 0.0, width, height])]

        stacked = clip_boxes(np.stack(boxes), height, width)[: self.max_proposals]
        scores = np.linspace(1.0, 0.5, len(stacked))
        return ProposalSet(boxes=stacked, scores=scores)

    @staticmethod
    def _foreground_mask(image: np.ndarray) -> np.ndarray:
        """Pixels whose colour deviates from the smooth background."""
        channel_spread = image.max(axis=0) - image.min(axis=0)
        brightness = image.mean(axis=0)
        return (channel_spread > 0.12) | (brightness > 0.35)


class RPNProposer(Module):
    """Trained class-agnostic RPN (the Faster-R-CNN stage-i stand-in)."""

    def __init__(self, image_height: int = 48, image_width: int = 72,
                 backbone: str = "tiny", hidden: int = 32,
                 scales=(12.0, 18.0, 26.0), ratios=(0.5, 1.0, 2.0),
                 max_proposals: int = 20, nms_iou: float = 0.7):
        super().__init__()
        self.backbone = build_backbone(backbone)
        self.image_height = image_height
        self.image_width = image_width
        self.max_proposals = max_proposals
        self.nms_iou = nms_iou
        grid_h = image_height // self.backbone.stride
        grid_w = image_width // self.backbone.stride
        self.anchor_grid = AnchorGrid(
            grid_h=grid_h, grid_w=grid_w, stride=self.backbone.stride,
            scales=tuple(scales), aspect_ratios=tuple(ratios),
        )
        k = self.anchor_grid.num_anchors_per_cell
        self.conv = Conv2d(self.backbone.out_channels, hidden, 3, padding=1)
        self.cls_head = Conv2d(hidden, 2 * k, 1)
        self.reg_head = Conv2d(hidden, 4 * k, 1)

    def forward(self, images: Tensor):
        """Images -> per-anchor (cls logits (B,A,2), offsets (B,A,4))."""
        feature_map = self.backbone(images)
        hidden = self.conv(feature_map).relu()
        batch = feature_map.shape[0]
        grid = self.anchor_grid
        k = grid.num_anchors_per_cell
        cls = self.cls_head(hidden).reshape(batch, k, 2, grid.grid_h, grid.grid_w)
        cls = cls.transpose(0, 3, 4, 1, 2).reshape(batch, grid.num_anchors, 2)
        reg = self.reg_head(hidden).reshape(batch, k, 4, grid.grid_h, grid.grid_w)
        reg = reg.transpose(0, 3, 4, 1, 2).reshape(batch, grid.num_anchors, 4)
        return cls, reg

    def propose(self, image: np.ndarray) -> ProposalSet:
        """Run the RPN on one image and decode top proposals."""
        self.eval()
        with no_grad():
            cls, reg = self.forward(Tensor(image[None]))
            probs = softmax(cls, axis=-1).data[0, :, 1]
            offsets = reg.data[0]
        self.train()
        anchors = self.anchor_grid.all_anchors()
        order = np.argsort(-probs)[: self.max_proposals * 4]
        decoded = decode_offsets(anchors[order], offsets[order])
        decoded = clip_boxes(decoded, self.image_height, self.image_width)
        keep = nms(decoded, probs[order], iou_threshold=self.nms_iou,
                   max_keep=self.max_proposals)
        return ProposalSet(boxes=decoded[keep], scores=probs[order][keep])


def train_rpn(
    rpn: RPNProposer,
    samples: Sequence[GroundingSample],
    steps: int = 300,
    batch_size: int = 8,
    lr: float = 2e-3,
    rng: Optional[np.random.Generator] = None,
    logger: Optional[ProgressLogger] = None,
) -> List[float]:
    """Train the RPN to propose *every* object (class-agnostic, query-blind).

    Each scene's full object set supervises the anchors: an anchor is
    positive if it overlaps any object.  Returns per-step losses.
    """
    rng = rng if rng is not None else spawn_rng("rpn-train")
    logger = logger or ProgressLogger("rpn", enabled=False)
    matcher = AnchorMatcher(rho_high=0.5, rho_low=0.25)
    sampler = BalancedSampler(batch_size=128)
    optimizer = Adam(rpn.parameters(), lr=lr)
    anchors = rpn.anchor_grid.all_anchors()
    losses: List[float] = []

    # De-duplicate scenes (several samples share one scene/image).
    unique = list({id(s.scene): s for s in samples}.values())
    for step in range(steps):
        chosen = [unique[int(i)] for i in rng.integers(0, len(unique), size=batch_size)]
        images = np.stack([s.image for s in chosen])
        cls, reg = rpn(Tensor(images))

        total = None
        for b, sample in enumerate(chosen):
            boxes = sample.scene.boxes()
            ious = iou_matrix(anchors, boxes)
            best_iou = ious.max(axis=1)
            best_obj = ious.argmax(axis=1)
            labels = np.full(len(anchors), -1, dtype=np.int64)
            labels[best_iou < 0.25] = 0
            labels[best_iou >= 0.5] = 1
            offsets = encode_offsets(anchors, boxes[best_obj])
            match = MatchResult(labels=labels, offsets=offsets, ious=best_iou)
            indices, picked_labels = sampler.sample(match, rng=rng)
            loss = softmax_cross_entropy(cls[b][indices], picked_labels)
            regressed = np.flatnonzero(best_iou >= 0.25)
            if len(regressed):
                loss = loss + smooth_l1(reg[b][regressed], offsets[regressed]).sum(axis=-1).mean()
            total = loss if total is None else total + loss
        total = total / float(batch_size)
        optimizer.zero_grad()
        total.backward()
        optimizer.step()
        losses.append(float(total.data))
        logger.periodic(f"step {step + 1}/{steps} loss={losses[-1]:.3f}")
    return losses
