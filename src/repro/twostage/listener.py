"""Listener baseline: joint-embedding matching (Yu et al., 2017).

The listener embeds the query with an LSTM and each proposal with a
:class:`RegionEncoder`, and scores proposals by dot product with the
query embedding.  Training uses a margin ranking loss that pushes the
best-IoU proposal above the distractor proposals of the same image.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.data.refcoco import GroundingSample
from repro.detection import iou_matrix
from repro.nn import Embedding, Linear, LSTM, Module, margin_ranking_loss
from repro.optim import Adam
from repro.text.vocab import Vocabulary
from repro.twostage.proposals import ProposalSet
from repro.twostage.regions import RegionEncoder
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


class ListenerMatcher(Module):
    """Score (query, proposal) pairs by joint-embedding similarity."""

    def __init__(self, vocab: Vocabulary, embed_dim: int = 32,
                 word_dim: int = 24, max_query_length: int = 20):
        super().__init__()
        self.vocab = vocab
        self.max_query_length = max_query_length
        self.word_embedding = Embedding(len(vocab), word_dim, padding_idx=vocab.pad_id)
        self.query_lstm = LSTM(word_dim, embed_dim)
        self.query_proj = Linear(embed_dim, embed_dim)
        self.region_encoder = RegionEncoder(embed_dim=embed_dim)

    def encode_query(self, token_ids: np.ndarray, token_mask: np.ndarray) -> Tensor:
        """Token ids ``(B, L)`` -> query embeddings ``(B, d)``."""
        embedded = self.word_embedding(token_ids)
        _, (hidden, _) = self.query_lstm(embedded, mask=token_mask)
        return self.query_proj(hidden.tanh())

    def score_proposals(self, image: np.ndarray, boxes: np.ndarray,
                        token_ids: np.ndarray, token_mask: np.ndarray) -> Tensor:
        """Scores ``(P,)`` for one image's proposals against one query."""
        region_embed = self.region_encoder(image, boxes)  # (P, d)
        query_embed = self.encode_query(token_ids[None], token_mask[None])  # (1, d)
        return region_embed.matmul(query_embed.reshape(-1))

    def forward(self, image: np.ndarray, proposals: ProposalSet,
                token_ids: np.ndarray, token_mask: np.ndarray) -> np.ndarray:
        """Inference scores (plain array) for a proposal set."""
        self.eval()
        with no_grad():
            scores = self.score_proposals(image, proposals.boxes, token_ids, token_mask)
        self.train()
        return scores.data.copy()


def train_listener(
    listener: ListenerMatcher,
    samples: Sequence[GroundingSample],
    proposer,
    steps: int = 400,
    lr: float = 2e-3,
    margin: float = 0.2,
    negatives_per_step: int = 8,
    rng: Optional[np.random.Generator] = None,
    logger: Optional[ProgressLogger] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    resume: bool = False,
) -> List[float]:
    """Train the listener over stage-i proposals with a ranking loss.

    For each sample the proposal with the best IoU against the target is
    the positive; up to ``negatives_per_step`` distractor proposals are
    sampled as negatives (scoring all ~100 proposals per step would be
    needlessly slow — inference still scores all of them).  Samples
    whose proposals all miss the target (IoU < 0.3) are skipped — the
    standard two-stage training-time consequence of stage-i misses.

    With ``checkpoint_dir`` set the loop runs under a
    :class:`repro.runtime.TrainingSupervisor` (checkpoint/resume plus
    anomaly skip-step); ``resume=True`` continues a killed run.
    """
    rng = rng if rng is not None else spawn_rng("listener-train")
    logger = logger or ProgressLogger("listener", enabled=False)
    optimizer = Adam(listener.parameters(), lr=lr)
    proposal_cache = {}
    losses: List[float] = []

    def forward_backward(step: int) -> Optional[float]:
        sample = samples[int(rng.integers(0, len(samples)))]
        key = id(sample.scene)
        if key not in proposal_cache:
            proposal_cache[key] = proposer.propose(sample.image)
        proposals = proposal_cache[key]
        ious = iou_matrix(proposals.boxes, sample.target_box[None])[:, 0]
        positive = int(ious.argmax())
        if ious[positive] < 0.3 or len(proposals) < 2:
            return None

        negatives = np.flatnonzero(ious < 0.3)
        if not len(negatives):
            return None
        if len(negatives) > negatives_per_step:
            negatives = rng.choice(negatives, size=negatives_per_step, replace=False)
        picked = np.concatenate([[positive], negatives])

        token_ids, token_mask = listener.vocab.encode(
            sample.tokens, listener.max_query_length
        )
        scores = listener.score_proposals(
            sample.image, proposals.boxes[picked], token_ids, token_mask
        )
        loss = margin_ranking_loss(scores[0], scores[1:], margin=margin)
        optimizer.zero_grad()
        loss.backward()
        return float(loss.data)

    def apply_update(step: int, loss_value: float) -> None:
        optimizer.step()
        losses.append(loss_value)
        logger.periodic(f"step {step}/{steps} loss={loss_value:.3f}")

    from repro.runtime import CallbackTask, TrainingSupervisor

    task = CallbackTask(
        total_iterations=steps,
        forward_backward=forward_backward,
        apply_update=apply_update,
        optimizer=optimizer,
        modules={"listener": listener},
        rng=rng,
        fingerprint_data={"task": "listener-train", "steps": steps, "lr": lr,
                          "margin": margin, "negatives": negatives_per_step},
        extra_state=lambda: {"losses": list(losses)},
        load_extra_state=lambda saved: losses.__setitem__(
            slice(None), saved["losses"]
        ),
        result=lambda: losses,
    )
    if checkpoint_dir is not None:
        TrainingSupervisor(
            task,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every or max(1, steps // 4),
            resume=resume,
            logger=logger,
        ).run()
    else:
        while task.iteration < task.total_iterations:
            loss_value = task.forward_backward()
            if loss_value is None:
                task.skip_step()
            else:
                task.apply_step(loss_value)
    return losses
