"""YOLLO training losses (Eqs. 6-9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, log_softmax
from repro.core.config import YolloConfig
from repro.detection import (
    AnchorGrid,
    AnchorMatcher,
    BalancedSampler,
    UniformTopKMatcher,
)
from repro.nn import sigmoid_focal_loss, smooth_l1, softmax_cross_entropy


@dataclass
class LossBreakdown:
    """Total loss tensor plus detached component values for logging."""

    total: Tensor
    att: float
    cls: float
    reg: float


def build_gt_mask(target_boxes: np.ndarray, grid_h: int, grid_w: int,
                  stride: float) -> np.ndarray:
    """Rasterise target boxes into ground-truth attention masks (Sec. 3.2).

    Each box is scaled to feature-map coordinates; cells inside receive
    ``1 / (w_r * h_r)`` and cells outside zero, so each mask sums to one.
    Returns ``(B, grid_h * grid_w)``.
    """
    target_boxes = np.asarray(target_boxes, dtype=np.float64)
    batch = target_boxes.shape[0]
    masks = np.zeros((batch, grid_h, grid_w))
    for b in range(batch):
        x1, y1, x2, y2 = target_boxes[b] / stride
        col1 = int(np.clip(np.floor(x1), 0, grid_w - 1))
        col2 = int(np.clip(np.ceil(x2), col1 + 1, grid_w))
        row1 = int(np.clip(np.floor(y1), 0, grid_h - 1))
        row2 = int(np.clip(np.ceil(y2), row1 + 1, grid_h))
        area = (row2 - row1) * (col2 - col1)
        masks[b, row1:row2, col1:col2] = 1.0 / area
    return masks.reshape(batch, grid_h * grid_w)


def attention_mask_loss(att_v: Tensor, gt_mask: np.ndarray) -> Tensor:
    """Eq. (6): cross-entropy between softmax(att_v) and the box mask."""
    log_p = log_softmax(att_v, axis=-1)
    return -(log_p * Tensor(gt_mask)).sum(axis=-1).mean()


def build_matcher(config: YolloConfig):
    """Anchor matcher selected by ``config.matcher``.

    ``"iou"`` is the paper's rho_high/rho_low thresholding; ``"topk"``
    is YOLOF-style uniform matching (exactly ``topk_candidates``
    positives per target regardless of scale).
    """
    if config.matcher == "iou":
        return AnchorMatcher(rho_high=config.rho_high, rho_low=config.rho_low)
    if config.matcher == "topk":
        return UniformTopKMatcher(topk=config.topk_candidates,
                                  ignore_threshold=config.topk_ignore_iou)
    raise ValueError(
        f"unknown matcher {config.matcher!r}; valid matchers: iou, topk")


def classification_loss(picked_logits: Tensor, labels: np.ndarray,
                        config: YolloConfig) -> Tensor:
    """Classification term over sampled anchors, per ``config.cls_loss``.

    ``"softmax_ce"`` is the paper's 2-way softmax cross-entropy;
    ``"focal"`` collapses the two logits into the target-vs-background
    margin and applies sigmoid focal loss (easy negatives are
    down-weighted rather than balanced purely by sampling).
    """
    if config.cls_loss == "softmax_ce":
        return softmax_cross_entropy(picked_logits, labels)
    if config.cls_loss == "focal":
        margin = picked_logits[:, 1] - picked_logits[:, 0]
        return sigmoid_focal_loss(margin, labels,
                                  alpha=config.focal_alpha,
                                  gamma=config.focal_gamma)
    raise ValueError(
        f"unknown cls_loss {config.cls_loss!r}; valid losses: "
        f"softmax_ce, focal")


def detection_loss(
    cls_logits: Tensor,
    reg_offsets: Tensor,
    target_boxes: np.ndarray,
    anchor_grid: AnchorGrid,
    config: YolloConfig,
    rng: Optional[np.random.Generator] = None,
):
    """Eqs. (7)-(8): sampled classification + positive-only regression.

    Anchors are labelled by the configured matcher (rho_high/rho_low by
    default, uniform top-k as the zoo variant), ``N`` anchors per image
    are sampled (balanced positive/negative), classification is the
    configured loss over the sampled anchors, and regression is
    smooth-L1 on the positives only (the ``p_i^*`` factor).
    Returns ``(cls_loss, reg_loss)`` tensors averaged over the batch.
    """
    anchors = anchor_grid.all_anchors()
    matcher = build_matcher(config)
    sampler = BalancedSampler(batch_size=config.anchor_batch)
    batch = cls_logits.shape[0]

    cls_terms: List[Tensor] = []
    reg_terms: List[Tensor] = []
    for b in range(batch):
        match = matcher.match(anchors, target_boxes[b])
        indices, labels = sampler.sample(match, rng=rng)
        picked_logits = cls_logits[b][indices]
        cls_terms.append(classification_loss(picked_logits, labels, config))

        if config.regress_ignore_band:
            regressed = np.flatnonzero(match.ious >= config.rho_low)
            if len(regressed) == 0:
                regressed = match.positive_indices
        else:
            regressed = match.positive_indices
        picked_offsets = reg_offsets[b][regressed]
        offset_targets = match.offsets[regressed]
        reg_terms.append(smooth_l1(picked_offsets, offset_targets).sum(axis=-1).mean())

    cls_loss = sum(cls_terms[1:], cls_terms[0]) / float(batch)
    reg_loss = sum(reg_terms[1:], reg_terms[0]) / float(batch)
    return cls_loss, reg_loss


def yollo_loss(
    attention_masks: Sequence[Tensor],
    cls_logits: Tensor,
    reg_offsets: Tensor,
    target_boxes: np.ndarray,
    anchor_grid: AnchorGrid,
    config: YolloConfig,
    rng: Optional[np.random.Generator] = None,
) -> LossBreakdown:
    """Eq. (9): ``L = L_att + L_cls + lambda * L_reg``.

    ``attention_masks`` are the raw per-module masks from the Rel2Att
    stack; with ``att_loss_on_all_modules`` every module is supervised
    (deep supervision), otherwise only the last.
    """
    gt_mask = build_gt_mask(
        target_boxes, anchor_grid.grid_h, anchor_grid.grid_w, anchor_grid.stride
    )
    supervised = attention_masks if config.att_loss_on_all_modules else attention_masks[-1:]
    att_terms = [attention_mask_loss(mask, gt_mask) for mask in supervised]
    att_loss = sum(att_terms[1:], att_terms[0]) / float(len(att_terms))

    cls_loss, reg_loss = detection_loss(
        cls_logits, reg_offsets, target_boxes, anchor_grid, config, rng=rng
    )
    total = config.lambda_att * att_loss + cls_loss + config.lambda_reg * reg_loss
    return LossBreakdown(
        total=total,
        att=float(att_loss.data),
        cls=float(cls_loss.data),
        reg=float(reg_loss.data),
    )
