"""High-level inference wrapper: ground free-form queries in images."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.yollo import GroundingPrediction, YolloModel
from repro.data.loader import encode_batch
from repro.data.refcoco import GroundingSample
from repro.text.vocab import Vocabulary


class Grounder:
    """Bundle a trained YOLLO model with its vocabulary.

    Exposes the single-query API used by the examples and implements the
    batch grounder protocol consumed by :func:`repro.eval.evaluate_grounder`.
    """

    def __init__(self, model: YolloModel, vocab: Vocabulary):
        self.model = model
        self.vocab = vocab

    @property
    def name(self) -> str:
        return "yollo"

    @property
    def max_query_length(self) -> int:
        return self.model.config.max_query_length

    def compile(self, max_plans: int = 32) -> "Grounder":
        """Enable compiled inference on the wrapped model (see
        :meth:`repro.core.yollo.YolloModel.compile`)."""
        self.model.eval()
        self.model.compile(max_plans=max_plans)
        return self

    def uncompile(self) -> "Grounder":
        self.model.uncompile()
        return self

    @property
    def plan_cache(self):
        """The model's active plan cache, or ``None`` when eager."""
        return self.model.plan_cache

    def ground(self, image: np.ndarray, query: str) -> GroundingPrediction:
        """Locate the object a natural-language ``query`` refers to.

        ``image`` is a ``(3, H, W)`` float array matching the model's
        configured input size.
        """
        ids, mask = self.vocab.encode(query, self.max_query_length)
        return self.model.predict(image[None], ids[None], mask[None])[0]

    def ground_batch(self, samples: Sequence[GroundingSample]) -> np.ndarray:
        """Grounder protocol: samples -> predicted boxes ``(n, 4)``."""
        batch = encode_batch(samples, self.vocab, self.max_query_length)
        predictions: List[GroundingPrediction] = self.model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"]
        )
        return np.stack([p.box for p in predictions])

    __call__ = ground_batch

    def serve(self, **kwargs) -> "ServeEngine":  # noqa: F821 (lazy import)
        """Wrap this grounder in a micro-batching :class:`ServeEngine`."""
        from repro.serve import ServeEngine

        return ServeEngine(self, **kwargs)
