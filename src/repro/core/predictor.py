"""High-level inference wrapper: ground free-form queries in images."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.yollo import GroundingPrediction, YolloModel
from repro.data.refcoco import GroundingSample
from repro.text.vocab import Vocabulary


class Grounder:
    """Bundle a trained YOLLO model with its vocabulary.

    Exposes the single-query API used by the examples and implements the
    batch grounder protocol consumed by :func:`repro.eval.evaluate_grounder`.
    """

    def __init__(self, model: YolloModel, vocab: Vocabulary):
        self.model = model
        self.vocab = vocab

    @property
    def max_query_length(self) -> int:
        return self.model.config.max_query_length

    def ground(self, image: np.ndarray, query: str) -> GroundingPrediction:
        """Locate the object a natural-language ``query`` refers to.

        ``image`` is a ``(3, H, W)`` float array matching the model's
        configured input size.
        """
        ids, mask = self.vocab.encode(query, self.max_query_length)
        return self.model.predict(image[None], ids[None], mask[None])[0]

    def ground_batch(self, samples: Sequence[GroundingSample]) -> np.ndarray:
        """Grounder protocol: samples -> predicted boxes ``(n, 4)``."""
        images = np.stack([s.image for s in samples])
        ids = np.empty((len(samples), self.max_query_length), dtype=np.int64)
        mask = np.empty((len(samples), self.max_query_length))
        for row, sample in enumerate(samples):
            ids[row], mask[row] = self.vocab.encode(sample.tokens, self.max_query_length)
        predictions: List[GroundingPrediction] = self.model.predict(images, ids, mask)
        return np.stack([p.box for p in predictions])

    __call__ = ground_batch
