"""High-level inference wrapper: ground free-form queries in images."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.response import GroundingResponse
from repro.core.yollo import GroundingPrediction, YolloModel
from repro.data.loader import encode_batch
from repro.data.refcoco import GroundingSample
from repro.text.vocab import Vocabulary


class Grounder:
    """Bundle a trained YOLLO model with its vocabulary.

    Exposes the single-query API used by the examples and implements the
    batch grounder protocol consumed by :func:`repro.eval.evaluate_grounder`.

    ``clause_conditioning=True`` parses each query with
    :func:`repro.lang.parse` and feeds the compiled per-clause token
    masks to the model's clause-conditioned Rel2Att path.  Queries that
    compile to the flat fallback (trivial or single-clause trees) run
    the unchanged flat path, so turning the flag on never perturbs
    simple queries.
    """

    def __init__(self, model: YolloModel, vocab: Vocabulary,
                 clause_conditioning: bool = False):
        self.model = model
        self.vocab = vocab
        self.clause_conditioning = bool(clause_conditioning)

    def _clause_masks(
        self, queries: Sequence[str]
    ) -> Optional[np.ndarray]:
        """Compile ``queries`` to a ``(B, C, L)`` batch of clause masks.

        Returns ``None`` (the exact flat path) when conditioning is off
        or every query falls back.
        """
        if not self.clause_conditioning:
            return None
        from repro.lang import clause_token_masks, pad_clause_masks, parse

        rows = [clause_token_masks(parse(query), self.max_query_length)
                for query in queries]
        return pad_clause_masks(rows, self.max_query_length)

    @property
    def name(self) -> str:
        return "yollo"

    @property
    def max_query_length(self) -> int:
        return self.model.config.max_query_length

    def compile(self, max_plans: int = 32) -> "Grounder":
        """Enable compiled inference on the wrapped model (see
        :meth:`repro.core.yollo.YolloModel.compile`)."""
        self.model.eval()
        self.model.compile(max_plans=max_plans)
        return self

    def uncompile(self) -> "Grounder":
        self.model.uncompile()
        return self

    @property
    def plan_cache(self):
        """The model's active plan cache, or ``None`` when eager."""
        return self.model.plan_cache

    def ground(self, image: np.ndarray, query: str) -> GroundingPrediction:
        """Locate the object a natural-language ``query`` refers to.

        ``image`` is a ``(3, H, W)`` float array matching the model's
        configured input size.
        """
        ids, mask = self.vocab.encode(query, self.max_query_length)
        return self.model.predict(
            image[None], ids[None], mask[None],
            clause_masks=self._clause_masks([query]),
        )[0]

    def ground_batch(self, samples: Sequence[GroundingSample]) -> np.ndarray:
        """Grounder protocol: samples -> predicted boxes ``(n, 4)``."""
        batch = encode_batch(samples, self.vocab, self.max_query_length)
        predictions: List[GroundingPrediction] = self.model.predict(
            batch["images"], batch["token_ids"], batch["token_mask"],
            clause_masks=self._clause_masks([s.query for s in samples]),
        )
        return np.stack([p.box for p in predictions])

    __call__ = ground_batch

    # ------------------------------------------------------------------
    # Ranked (structured-response) protocol
    # ------------------------------------------------------------------
    def ground_ranked(self, image: np.ndarray, query: str, top_k: int = 5,
                      not_found_threshold: float = 0.0) -> GroundingResponse:
        """Ranked answer for one query: boxes + scores + ``not_found``."""
        ids, mask = self.vocab.encode(query, self.max_query_length)
        return self.model.predict_ranked(
            image[None], ids[None], mask[None],
            top_k=top_k, not_found_threshold=not_found_threshold,
            clause_masks=self._clause_masks([query]),
        )[0]

    def ground_batch_ranked(
        self, samples: Sequence[GroundingSample], top_k: int = 5,
        not_found_threshold: float = 0.0,
    ) -> List[GroundingResponse]:
        """Batched ranked protocol: samples -> response list."""
        batch = encode_batch(samples, self.vocab, self.max_query_length)
        return self.model.predict_ranked(
            batch["images"], batch["token_ids"], batch["token_mask"],
            top_k=top_k, not_found_threshold=not_found_threshold,
            clause_masks=self._clause_masks([s.query for s in samples]),
        )

    def ranked(self, top_k: int = 5,
               not_found_threshold: float = 0.0) -> "RankedGrounder":
        """Adapter that makes the ranked protocol this grounder's
        ``__call__`` — plug it into ``ServeEngine``/``FleetRouter`` to
        serve structured responses instead of single boxes."""
        return RankedGrounder(self, top_k=top_k,
                              not_found_threshold=not_found_threshold)

    def serve(self, **kwargs) -> "ServeEngine":  # noqa: F821 (lazy import)
        """Wrap this grounder in a micro-batching :class:`ServeEngine`."""
        from repro.serve import ServeEngine

        return ServeEngine(self, **kwargs)


class RankedGrounder:
    """Batch-protocol adapter returning :class:`GroundingResponse` lists.

    Wraps a :class:`Grounder` so that ``__call__`` yields ranked
    responses — the shape the scenario serving stack caches and ships.
    Weight-reload plumbing (``.model``) and compiled-inference telemetry
    (``.plan_cache``) pass through to the wrapped grounder, so a
    ``RankedGrounder`` drops into a serving replica unchanged.
    """

    def __init__(self, grounder: Grounder, top_k: int = 5,
                 not_found_threshold: float = 0.0):
        self.grounder = grounder
        self.top_k = int(top_k)
        self.not_found_threshold = float(not_found_threshold)

    @property
    def name(self) -> str:
        return f"{self.grounder.name}-ranked"

    @property
    def model(self) -> YolloModel:
        return self.grounder.model

    @property
    def vocab(self) -> Vocabulary:
        return self.grounder.vocab

    @property
    def plan_cache(self):
        return self.grounder.plan_cache

    def __call__(
        self, samples: Sequence[GroundingSample]
    ) -> List[GroundingResponse]:
        return self.grounder.ground_batch_ranked(
            samples, top_k=self.top_k,
            not_found_threshold=self.not_found_threshold,
        )

    def serve(self, **kwargs) -> "ServeEngine":  # noqa: F821 (lazy import)
        """Serve ranked responses through a micro-batching engine."""
        from repro.serve import ServeEngine

        return ServeEngine(self, **kwargs)
