"""The full YOLLO model: encoder -> Rel2Att stack -> detection head."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.autograd import Tensor, no_grad, softmax
from repro.core.config import YolloConfig
from repro.core.detector import TargetDetectionNetwork
from repro.core.encoder import FeatureEncoder
from repro.core.response import GroundingResponse
from repro.core.word2pix import build_fusion_stack
from repro.detection import clip_boxes, decode_offsets, nms
from repro.nn import Module
from repro.obs import trace_span


@dataclass
class YolloOutput:
    """Raw network outputs for a batch."""

    cls_logits: Tensor  # (B, A, 2)
    reg_offsets: Tensor  # (B, A, 4)
    attention_masks: List[Tensor]  # per-module (B, m) raw masks


@dataclass
class GroundingPrediction:
    """Decoded top-1 prediction for one image/query pair."""

    box: np.ndarray  # (4,) x1, y1, x2, y2
    score: float  # target probability of the winning anchor
    anchor_index: int
    attention_map: np.ndarray  # (grid_h, grid_w) softmax of the last mask


class YolloModel(Module):
    """One-stage visual grounding (Figure 2a).

    ``forward`` returns raw outputs for training; ``predict`` decodes the
    top-1 scored anchor into an image-space box (Section 3.3: no NMS, no
    ranking over proposals — the single best anchor is the answer).
    """

    def __init__(self, config: YolloConfig, vocab_size: int,
                 pretrained_embeddings: Optional[np.ndarray] = None,
                 backbone=None):
        super().__init__()
        self.config = config
        self.encoder = FeatureEncoder(config, vocab_size, pretrained_embeddings, backbone)
        # Attribute keeps its historical name whichever fusion stack is
        # installed, so state-dict keys stay stable across presets that
        # share a fusion choice.
        self.rel2att = build_fusion_stack(config)
        self.detector = TargetDetectionNetwork(
            config,
            grid_h=self.encoder.grid_h,
            grid_w=self.encoder.grid_w,
            stride=self.encoder.backbone.stride,
        )

    @property
    def anchor_grid(self):
        return self.detector.anchor_grid

    # ------------------------------------------------------------------
    # Compiled inference
    # ------------------------------------------------------------------
    def compile(self, max_plans: int = 32) -> "YolloModel":
        """Enable compiled inference: trace once per input shape, replay.

        ``predict`` keeps its exact eager semantics (plans are validated
        bit-exact against the trace at build time) but runs the forward
        pass through a :class:`repro.graph.ExecutionPlan` — constant
        folding, BatchNorm folding, epilogue fusion, and arena buffer
        reuse — compiled lazily per input shape ``(B, H, W, L)`` and
        cached in a :class:`repro.graph.PlanCache`.
        """
        from repro.graph import PlanCache

        self._plan_cache = PlanCache(max_plans=max_plans)
        return self

    def uncompile(self) -> "YolloModel":
        """Drop compiled plans and return to eager ``predict``."""
        self._plan_cache = None
        return self

    @property
    def plan_cache(self):
        """The active :class:`repro.graph.PlanCache`, or ``None``."""
        return getattr(self, "_plan_cache", None)

    def _plan_key(self, images: np.ndarray, token_ids: np.ndarray,
                  token_mask: Optional[np.ndarray]) -> tuple:
        return (
            tuple(images.shape),
            tuple(token_ids.shape),
            token_mask is None,
            str(np.asarray(images).dtype),
        )

    def _compiled_forward(self, images: np.ndarray, token_ids: np.ndarray,
                          token_mask: Optional[np.ndarray]) -> YolloOutput:
        """Run ``forward`` through a cached execution plan (eval only).

        On a cache miss the forward pass is traced, optimised, and
        compiled; the compile time is recorded on the cache so callers
        (e.g. the serving engine) can attribute it separately from
        execution time.
        """
        import time as _time

        from repro.graph import ExecutionPlan, optimize_graph, trace

        cache = self._plan_cache
        key = self._plan_key(images, token_ids, token_mask)
        plan = cache.get(key)
        if plan is None:
            start = _time.perf_counter()
            traced = trace(
                self.forward, Tensor(images), token_ids, token_mask,
                name="yollo.forward",
            )
            optimize_graph(traced.graph)
            plan = ExecutionPlan(traced)
            cache.store(key, plan, (_time.perf_counter() - start) * 1e3)
        # Keep the eager span name so model-time attribution (e.g.
        # eval.timing MODEL_SPANS) sees compiled runs as forward time.
        with trace_span("yollo.forward"):
            return plan.run(Tensor(images), token_ids, token_mask)

    def train(self, mode: bool = True) -> "YolloModel":
        # Plans bake eval-mode state (BN running stats fold to
        # constants), so any return to training invalidates them.
        if mode:
            cache = getattr(self, "_plan_cache", None)
            if cache is not None:
                cache.clear()
        super().train(mode)
        return self

    def load_state_dict(self, state) -> None:
        # New weights invalidate every compiled plan: constants hold the
        # traced arrays by reference and folded BN stats are snapshots.
        super().load_state_dict(state)
        cache = getattr(self, "_plan_cache", None)
        if cache is not None:
            cache.clear()

    def forward(self, images: Tensor, token_ids: np.ndarray,
                token_mask: Optional[np.ndarray] = None,
                clause_masks: Optional[np.ndarray] = None) -> YolloOutput:
        with trace_span("yollo.forward"):
            with trace_span("yollo.encoder"):
                image_seq, query_seq = self.encoder(images, token_ids)
            with trace_span("yollo.rel2att"):
                attended, attention_masks = self.rel2att(
                    image_seq, query_seq, token_mask, clause_masks)
            # Reconstruct the attended feature map M~ (B, d, gh, gw).
            batch = attended.shape[0]
            feature_map = attended.transpose(0, 2, 1).reshape(
                batch, self.config.d_model, self.encoder.grid_h, self.encoder.grid_w
            )
            with trace_span("yollo.detector"):
                cls_logits, reg_offsets = self.detector(feature_map)
        return YolloOutput(cls_logits, reg_offsets, attention_masks)

    def _predict_arrays(self, images: np.ndarray, token_ids: np.ndarray,
                        token_mask: Optional[np.ndarray],
                        clause_masks: Optional[np.ndarray] = None):
        """Shared inference pass for :meth:`predict`/:meth:`predict_ranked`.

        Returns ``(probs, offsets, last_mask)`` as plain arrays, with
        cross-boundary anchors' probabilities forced to -1 (standard RPN
        practice): an anchor hanging off the image decodes to a clipped
        sliver, and its classification score is weakly supervised, so
        letting it win produces degenerate boxes.

        Clause-conditioned batches (``clause_masks`` not ``None``) always
        run eager: compiled plans are traced over the three-argument
        forward, and clause masks vary per query in ways a shape-keyed
        plan cache cannot capture.
        """
        was_training = self.training
        self.eval()
        with no_grad():
            if clause_masks is None \
                    and getattr(self, "_plan_cache", None) is not None:
                output = self._compiled_forward(images, token_ids, token_mask)
            else:
                output = self.forward(Tensor(images), token_ids, token_mask,
                                      clause_masks)
            with trace_span("yollo.decode"):
                probs = softmax(output.cls_logits, axis=-1).data[..., 1]  # (B, A)
                offsets = output.reg_offsets.data
                last_mask = softmax(output.attention_masks[-1], axis=-1).data
        if was_training:
            self.train()

        anchors = self.anchor_grid.all_anchors()
        margin = 0.25 * self.anchor_grid.stride
        inside = (
            (anchors[:, 0] >= -margin)
            & (anchors[:, 1] >= -margin)
            & (anchors[:, 2] <= self.config.image_width + margin)
            & (anchors[:, 3] <= self.config.image_height + margin)
        )
        if inside.any():
            probs = np.where(inside[None, :], probs, -1.0)
        return probs, offsets, last_mask

    def predict(self, images: np.ndarray, token_ids: np.ndarray,
                token_mask: Optional[np.ndarray] = None,
                clause_masks: Optional[np.ndarray] = None,
                ) -> List[GroundingPrediction]:
        """Run inference and decode the top-1 box per sample.

        Cross-boundary anchors are excluded from the top-1 choice; see
        :meth:`_predict_arrays`.
        """
        probs, offsets, last_mask = self._predict_arrays(
            images, token_ids, token_mask, clause_masks)
        anchors = self.anchor_grid.all_anchors()
        grid_h, grid_w = self.encoder.grid_h, self.encoder.grid_w
        predictions: List[GroundingPrediction] = []
        for b in range(probs.shape[0]):
            best = int(probs[b].argmax())
            box = decode_offsets(anchors[best], offsets[b, best])
            box = clip_boxes(box, self.config.image_height, self.config.image_width)
            predictions.append(
                GroundingPrediction(
                    box=box,
                    score=float(probs[b, best]),
                    anchor_index=best,
                    attention_map=last_mask[b].reshape(grid_h, grid_w),
                )
            )
        return predictions

    def predict_ranked(self, images: np.ndarray, token_ids: np.ndarray,
                       token_mask: Optional[np.ndarray] = None,
                       top_k: int = 5,
                       not_found_threshold: float = 0.0,
                       nms_iou: float = 0.6,
                       clause_masks: Optional[np.ndarray] = None,
                       ) -> List[GroundingResponse]:
        """Decode a ranked answer list per sample (the scenario protocol).

        Every in-bounds anchor is decoded, greedily NMS-suppressed at
        ``nms_iou``, and the ``top_k`` survivors are returned best-first
        with their target probabilities.  ``not_found`` is declared when
        no survivor clears ``not_found_threshold`` — the calibrated
        decision crowded-scene no-target queries require (a top-1 argmax
        box cannot say "absent").  The per-sample work stays vectorised:
        one decode over all anchors, one NMS over the score-sorted list.
        """
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        probs, offsets, _ = self._predict_arrays(
            images, token_ids, token_mask, clause_masks)
        anchors = self.anchor_grid.all_anchors()
        responses: List[GroundingResponse] = []
        for b in range(probs.shape[0]):
            valid = probs[b] >= 0.0  # cross-boundary anchors carry -1
            if not valid.any():
                valid = np.ones_like(probs[b], dtype=bool)
            candidate_boxes = clip_boxes(
                decode_offsets(anchors[valid], offsets[b, valid]),
                self.config.image_height, self.config.image_width,
            )
            candidate_scores = probs[b, valid]
            keep = nms(candidate_boxes, candidate_scores,
                       iou_threshold=nms_iou, max_keep=top_k)
            scores = candidate_scores[keep]
            responses.append(GroundingResponse(
                boxes=candidate_boxes[keep],
                scores=scores,
                not_found=bool(len(scores) == 0
                               or scores[0] < not_found_threshold),
                threshold=not_found_threshold,
            ))
        return responses
