"""The full YOLLO model: encoder -> Rel2Att stack -> detection head."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.autograd import Tensor, no_grad, softmax
from repro.core.config import YolloConfig
from repro.core.detector import TargetDetectionNetwork
from repro.core.encoder import FeatureEncoder
from repro.core.rel2att import Rel2AttStack
from repro.detection import clip_boxes, decode_offsets
from repro.nn import Module
from repro.obs import trace_span


@dataclass
class YolloOutput:
    """Raw network outputs for a batch."""

    cls_logits: Tensor  # (B, A, 2)
    reg_offsets: Tensor  # (B, A, 4)
    attention_masks: List[Tensor]  # per-module (B, m) raw masks


@dataclass
class GroundingPrediction:
    """Decoded top-1 prediction for one image/query pair."""

    box: np.ndarray  # (4,) x1, y1, x2, y2
    score: float  # target probability of the winning anchor
    anchor_index: int
    attention_map: np.ndarray  # (grid_h, grid_w) softmax of the last mask


class YolloModel(Module):
    """One-stage visual grounding (Figure 2a).

    ``forward`` returns raw outputs for training; ``predict`` decodes the
    top-1 scored anchor into an image-space box (Section 3.3: no NMS, no
    ranking over proposals — the single best anchor is the answer).
    """

    def __init__(self, config: YolloConfig, vocab_size: int,
                 pretrained_embeddings: Optional[np.ndarray] = None,
                 backbone=None):
        super().__init__()
        self.config = config
        self.encoder = FeatureEncoder(config, vocab_size, pretrained_embeddings, backbone)
        self.rel2att = Rel2AttStack(config)
        self.detector = TargetDetectionNetwork(
            config,
            grid_h=self.encoder.grid_h,
            grid_w=self.encoder.grid_w,
            stride=self.encoder.backbone.stride,
        )

    @property
    def anchor_grid(self):
        return self.detector.anchor_grid

    def forward(self, images: Tensor, token_ids: np.ndarray,
                token_mask: Optional[np.ndarray] = None) -> YolloOutput:
        with trace_span("yollo.forward"):
            with trace_span("yollo.encoder"):
                image_seq, query_seq = self.encoder(images, token_ids)
            with trace_span("yollo.rel2att"):
                attended, attention_masks = self.rel2att(image_seq, query_seq, token_mask)
            # Reconstruct the attended feature map M~ (B, d, gh, gw).
            batch = attended.shape[0]
            feature_map = attended.transpose(0, 2, 1).reshape(
                batch, self.config.d_model, self.encoder.grid_h, self.encoder.grid_w
            )
            with trace_span("yollo.detector"):
                cls_logits, reg_offsets = self.detector(feature_map)
        return YolloOutput(cls_logits, reg_offsets, attention_masks)

    def predict(self, images: np.ndarray, token_ids: np.ndarray,
                token_mask: Optional[np.ndarray] = None) -> List[GroundingPrediction]:
        """Run inference and decode the top-1 box per sample.

        Cross-boundary anchors are excluded from the top-1 choice
        (standard RPN practice): an anchor hanging off the image decodes
        to a clipped sliver, and its classification score is weakly
        supervised, so letting it win produces degenerate boxes.
        """
        was_training = self.training
        self.eval()
        with no_grad():
            output = self.forward(Tensor(images), token_ids, token_mask)
            with trace_span("yollo.decode"):
                probs = softmax(output.cls_logits, axis=-1).data[..., 1]  # (B, A)
                offsets = output.reg_offsets.data
                last_mask = softmax(output.attention_masks[-1], axis=-1).data
        if was_training:
            self.train()

        anchors = self.anchor_grid.all_anchors()
        margin = 0.25 * self.anchor_grid.stride
        inside = (
            (anchors[:, 0] >= -margin)
            & (anchors[:, 1] >= -margin)
            & (anchors[:, 2] <= self.config.image_width + margin)
            & (anchors[:, 3] <= self.config.image_height + margin)
        )
        if inside.any():
            probs = np.where(inside[None, :], probs, -1.0)
        grid_h, grid_w = self.encoder.grid_h, self.encoder.grid_w
        predictions: List[GroundingPrediction] = []
        for b in range(probs.shape[0]):
            best = int(probs[b].argmax())
            box = decode_offsets(anchors[best], offsets[b, best])
            box = clip_boxes(box, self.config.image_height, self.config.image_width)
            predictions.append(
                GroundingPrediction(
                    box=box,
                    score=float(probs[b, best]),
                    anchor_index=best,
                    attention_map=last_mask[b].reshape(grid_h, grid_w),
                )
            )
        return predictions
