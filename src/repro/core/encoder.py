"""Feature encoder: dense image regions + position-aware word features.

Implements Section 3.1: a CNN feature map is flattened into a sequence of
region vectors (one per grid cell), and each query word embedding is
summed with a positional embedding.  Both modalities are projected to the
shared ``d_model`` width so the Rel2Att stack can fuse them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.backbone import build_backbone
from repro.core.config import YolloConfig
from repro.nn import (
    Conv2d,
    DilatedConv2d,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
)
from repro.text.position import learned_position_table, sinusoidal_position_table


class DilatedBottleneck(Module):
    """One residual dilated bottleneck: 1x1 reduce, 3x3 dilated, 1x1 expand.

    The YOLOF dilated-encoder building block, scaled down: channel count
    is preserved end to end so a stack of these drops into the encoder
    between the backbone and the flatten/projection step without
    touching any downstream shape.
    """

    def __init__(self, channels: int, dilation: int):
        super().__init__()
        mid = max(channels // 2, 4)
        self.reduce = Conv2d(channels, mid, kernel_size=1)
        self.dilated = DilatedConv2d(mid, mid, kernel_size=3,
                                     dilation=dilation)
        self.expand = Conv2d(mid, channels, kernel_size=1)

    def forward(self, x: Tensor) -> Tensor:
        out = self.reduce(x).relu()
        out = self.dilated(out).relu()
        out = self.expand(out).relu()
        return x + out


class DilatedContextEncoder(Module):
    """Stacked dilated residual blocks widening the backbone's context.

    Applied to the raw backbone feature map (``config.context_encoder ==
    "dilated"``): successive dilation rates grow the receptive field
    multiplicatively without another downsampling stage, so distant
    relational cues ("left of", "behind") reach a cell's feature before
    the relation stack ever runs — the YOLOF dilated-encoder idea at
    grounding-grid scale.  Spatial size and channel count are unchanged.
    """

    def __init__(self, channels: int, dilations):
        super().__init__()
        dilations = tuple(int(d) for d in dilations)
        if not dilations:
            raise ValueError("dilated context encoder needs >= 1 dilation")
        self.dilations = dilations
        self.blocks = [DilatedBottleneck(channels, d) for d in dilations]
        for index, block in enumerate(self.blocks):
            setattr(self, f"block{index}", block)

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return x


def build_context_encoder(config: YolloConfig,
                          channels: int) -> Optional[Module]:
    """Context encoder selected by ``config.context_encoder`` (or None)."""
    if config.context_encoder == "none":
        return None
    if config.context_encoder == "dilated":
        return DilatedContextEncoder(channels, config.encoder_dilations)
    raise ValueError(
        f"unknown context_encoder {config.context_encoder!r}; "
        f"valid encoders: none, dilated")


class FeatureEncoder(Module):
    """Encode ``(images, token_ids)`` into sequences ``V (B,m,d)`` / ``T (B,n,d)``."""

    def __init__(self, config: YolloConfig, vocab_size: int,
                 pretrained_embeddings: Optional[np.ndarray] = None,
                 backbone: Optional[Module] = None):
        super().__init__()
        self.config = config
        self.backbone = backbone if backbone is not None else build_backbone(config.backbone)
        self.grid_h = config.image_height // self.backbone.stride
        self.grid_w = config.image_width // self.backbone.stride
        self.num_regions = self.grid_h * self.grid_w

        self.context = build_context_encoder(config, self.backbone.out_channels)
        self.image_proj = Linear(self.backbone.out_channels, config.d_model)
        # Region features are normalised to O(1) so the relation map and
        # detection head see a scale that is independent of the trunk's
        # activation statistics (the norm-free trunk can emit O(10)).
        self.image_norm = LayerNorm(config.d_model)
        self.word_embedding = Embedding(vocab_size, config.d_model, padding_idx=0)
        if pretrained_embeddings is not None:
            self.load_pretrained_embeddings(pretrained_embeddings)

        if config.learned_positions:
            self.position_table = Parameter(
                learned_position_table(config.max_query_length, config.d_model)
            )
        else:
            self._fixed_positions = sinusoidal_position_table(
                config.max_query_length, config.d_model
            )
            self.position_table = None

        # Learned 2-D position embeddings for image regions.  The query
        # side gets positional embeddings in the paper; regions need the
        # analogous treatment because convolutional features are
        # translation-invariant and location words ("left", "top") are
        # otherwise ungroundable.
        self.region_position_table = Parameter(
            learned_position_table(self.num_regions, config.d_model)
        )

    def load_pretrained_embeddings(self, matrix: np.ndarray) -> None:
        """Initialise the word embedding from a pre-trained Word2Vec matrix.

        The matrix may be narrower than ``d_model`` (the pre-training dim
        is independent); extra columns keep their random initialisation,
        mirroring partial-initialisation practice.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] != self.word_embedding.num_embeddings:
            raise ValueError(
                f"embedding rows {matrix.shape[0]} != vocab size "
                f"{self.word_embedding.num_embeddings}"
            )
        width = min(matrix.shape[1], self.config.d_model)
        self.word_embedding.weight.data[:, :width] = matrix[:, :width]

    # ------------------------------------------------------------------
    def encode_image(self, images: Tensor) -> Tensor:
        """Images ``(B,3,H,W)`` -> region sequence ``(B, m, d_model)``."""
        feature_map = self.backbone(images)  # (B, C, gh, gw)
        if self.context is not None:
            feature_map = self.context(feature_map)
        batch = feature_map.shape[0]
        flat = feature_map.reshape(batch, self.backbone.out_channels, self.num_regions)
        sequence = flat.transpose(0, 2, 1)  # (B, m, C)
        return self.image_norm(self.image_proj(sequence)) + self.region_position_table

    def encode_query(self, token_ids: np.ndarray) -> Tensor:
        """Token ids ``(B, n)`` -> word sequence ``(B, n, d_model)``.

        Implements t_i = e_i + p_i (word embedding plus position).
        """
        n = token_ids.shape[1]
        if n > self.config.max_query_length:
            raise ValueError(
                f"query length {n} exceeds max_query_length {self.config.max_query_length}"
            )
        embedded = self.word_embedding(token_ids)
        if self.position_table is not None:
            positions = self.position_table[:n]
        else:
            positions = Tensor(self._fixed_positions[:n])
        return embedded + positions

    def forward(self, images: Tensor, token_ids: np.ndarray) -> Tuple[Tensor, Tensor]:
        return self.encode_image(images), self.encode_query(token_ids)

    def grid_shape(self) -> Tuple[int, int]:
        return (self.grid_h, self.grid_w)
