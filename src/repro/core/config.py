"""Configuration for the YOLLO model and its training loop."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Tuple


class UnknownConfigFieldError(KeyError):
    """An override named a field :class:`YolloConfig` does not have.

    Mirrors the :class:`repro.scenarios.UnknownScenarioError` convention:
    the message lists every valid name so a typo'd preset dict or
    ``with_overrides`` call is self-diagnosing.
    """

    def __init__(self, name: str, available):
        self.name = name
        self.available = tuple(available)
        super().__init__(
            f"unknown YolloConfig field {name!r}; valid fields: "
            f"{', '.join(self.available)}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


@dataclass(frozen=True)
class YolloConfig:
    """Hyper-parameters of the YOLLO architecture (Sections 3-4).

    The paper's absolute sizes (400x600 input, 512-D features, ResNet-50)
    are scaled to laptop proportions; every structural choice — C4-style
    backbone truncation, 3 stacked Rel2Att modules, K anchors per cell,
    rho_high/rho_low = 0.5/0.25, N = 256 sampled anchors, lambda = 1 —
    follows the paper.
    """

    # Input geometry (2:3 aspect like the paper's 400x600).
    image_height: int = 48
    image_width: int = 72

    # Feature encoder.
    backbone: str = "resnet50"
    d_model: int = 32  #: shared width of image/word feature vectors
    max_query_length: int = 20
    learned_positions: bool = True
    #: Context encoder applied to the backbone feature map before the
    #: flatten/projection step: ``"none"`` (the paper's C4 output goes
    #: straight to the projection) or ``"dilated"`` (a YOLOF-style stack
    #: of residual dilated bottleneck blocks that widens the receptive
    #: field without shrinking the grid).
    context_encoder: str = "none"
    #: Per-block dilation rates of the dilated context encoder.  The
    #: paper-scale grid is small (6x9 at stride 8), so the rates stay
    #: modest compared to YOLOF's (2, 4, 6, 8) over a 100x100 map.
    encoder_dilations: Tuple[int, ...] = (1, 2, 3)

    # Cross-modal fusion stack: ``"rel2att"`` is the paper's relation
    # map; ``"word2pix"`` is the Word2Pix-style one-way word-to-pixel
    # cross-attention alternative (same interface, same attention-mask
    # supervision).
    fusion: str = "rel2att"

    # Rel2Att stack.
    d_rel: int = 48  #: relation-space width (paper: 512)
    num_rel2att: int = 3
    ffn_hidden: int = 48
    use_self_attention: bool = True  #: ablation switch (Table 4)
    use_co_attention: bool = True  #: ablation switch (Table 4)
    att_loss_on_all_modules: bool = True  #: deep supervision of L_att
    att_gain_init: float = 8.0  #: initial learnable gain on attention logits
    #: Average each relation-map block separately before summing (keeps
    #: the small co-attention blocks from being diluted by the larger
    #: self-attention blocks).  False reproduces the strict whole-map
    #: average of Eq. (3)-(4).
    block_balanced_attention: bool = True

    # Target detection network.
    head_hidden: int = 48
    anchor_scales: Tuple[float, ...] = (12.0, 18.0, 26.0)
    anchor_ratios: Tuple[float, ...] = (0.5, 1.0, 2.0)

    # Anchor supervision (Section 3.3).  ``matcher`` selects the
    # assignment rule: ``"iou"`` is the paper's rho_high/rho_low IoU
    # thresholding; ``"topk"`` is YOLOF-style uniform matching (the k
    # closest anchors are positives regardless of IoU, with an IoU
    # ignore band above ``topk_ignore_iou``).
    matcher: str = "iou"
    rho_high: float = 0.5
    rho_low: float = 0.25
    topk_candidates: int = 4  #: positives per target under "topk"
    #: Non-selected anchors with IoU above this are ignored (not pushed
    #: negative) under the "topk" matcher.
    topk_ignore_iou: float = 0.7
    anchor_batch: int = 256  #: N — sampled anchors per image
    #: Also regress ignore-band anchors (rho_low <= IoU < rho_high) toward
    #: the target.  Because inference takes the raw top-1 anchor with no
    #: NMS or second stage, a near-target anchor can win while carrying
    #: untrained offsets; supervising its regression fixes that without
    #: touching the classification labels of Section 3.3.
    regress_ignore_band: bool = True

    # Classification loss over sampled anchors: ``"softmax_ce"`` is the
    # paper's 2-way softmax cross-entropy; ``"focal"`` replaces it with
    # sigmoid focal loss on the target-vs-background logit margin.
    cls_loss: str = "softmax_ce"
    focal_alpha: float = 0.25
    focal_gamma: float = 2.0

    # Loss (Eq. 9).  lambda_att = 2 departs from the paper's implicit 1:
    # at our scale the attention loss is the long pole and benefits from
    # the extra weight (see DESIGN.md).
    lambda_reg: float = 1.0
    lambda_att: float = 2.0

    # Optimisation (Section 4.2; lr rescaled for the smaller model).
    learning_rate: float = 2e-3
    batch_size: int = 16
    epochs: int = 8
    grad_clip: float = 5.0

    @property
    def num_anchors_per_cell(self) -> int:
        return len(self.anchor_scales) * len(self.anchor_ratios)

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    def with_overrides(self, **kwargs) -> "YolloConfig":
        """Functional update helper used by ablation experiments.

        Unknown keys raise :class:`UnknownConfigFieldError` listing the
        valid field names, so a typo in a preset dict or an experiment
        sweep fails loudly instead of being silently dropped by
        ``dataclasses.replace``'s own terse ``TypeError``.
        """
        valid = self.field_names()
        for key in kwargs:
            if key not in valid:
                raise UnknownConfigFieldError(key, valid)
        return replace(self, **kwargs)
