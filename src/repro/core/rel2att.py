"""Relation-to-Attention (Rel2Att) modules — the paper's key component.

Each module (Section 3.2, Figure 2b) projects the image sequence ``V``
and query sequence ``T`` through four two-layer FFNs, concatenates the
projections into fused matrices ``X1``/``X2``, forms the dense relation
map ``R = X1 X2^T / sqrt(d_rel)`` whose four blocks are the image/query
self-attentions (R_vv, R_tt) and co-attentions (R_vt, R_tv), averages
``R`` over each axis into two k-vectors, sums them into a joint
attention vector, and re-weights both input sequences element-wise.

Padding-aware masking excludes PAD query positions from the relation
averages.  The ablation switches of Table 4 wipe the self- or
co-attention blocks of ``R`` before the averages are taken.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor, concatenate
from repro.core.config import YolloConfig
from repro.nn import FeedForward, Module, Parameter, Sequential
from repro.obs import trace_span


def _relation_weight_mask(
    batch: int,
    num_regions: int,
    num_tokens: int,
    token_mask: Optional[np.ndarray],
    use_self_attention: bool,
    use_co_attention: bool,
) -> np.ndarray:
    """Build the ``(B, k, k)`` 0/1 weights applied to the relation map.

    Combines the Table-4 ablation wiping with PAD masking: a relation
    entry survives only if both of its endpoints are valid positions and
    its block is enabled.
    """
    k = num_regions + num_tokens
    valid = np.ones((batch, k))
    if token_mask is not None:
        valid[:, num_regions:] = token_mask
    weights = valid[:, :, None] * valid[:, None, :]

    block = np.ones((k, k))
    if not use_self_attention:
        block[:num_regions, :num_regions] = 0.0
        block[num_regions:, num_regions:] = 0.0
    if not use_co_attention:
        block[:num_regions, num_regions:] = 0.0
        block[num_regions:, :num_regions] = 0.0
    return weights * block[None]


def _attention_normalizers(
    weights: np.ndarray, num_regions: int, balanced: bool
) -> Tuple[np.ndarray, ...]:
    """Divisor arrays for the relation-map averages.

    ``balanced`` returns the four per-block divisors (image/query columns
    then rows); otherwise the two whole-axis divisors.  Kept as one plain
    numpy function (rather than inline expressions) so the graph tracer
    can capture the token-mask-dependent normalisers as a single node.
    """
    m = num_regions
    if balanced:
        return (
            np.maximum(weights[:, :m, :].sum(axis=1), 1.0),
            np.maximum(weights[:, m:, :].sum(axis=1), 1.0),
            np.maximum(weights[:, :, :m].sum(axis=2), 1.0),
            np.maximum(weights[:, :, m:].sum(axis=2), 1.0),
        )
    return (
        np.maximum(weights.sum(axis=1), 1.0),
        np.maximum(weights.sum(axis=2), 1.0),
    )


class Rel2AttModule(Module):
    """One Rel2Att block: relation map -> attention masks -> re-weighting."""

    def __init__(self, config: YolloConfig):
        super().__init__()
        self.config = config
        d, d_rel, hidden = config.d_model, config.d_rel, config.ffn_hidden
        # The four FFNs of Eq. (1)-(2): theta_1..theta_4.
        self.ffn_v1 = FeedForward(d, hidden, d_rel)
        self.ffn_v2 = FeedForward(d, hidden, d_rel)
        self.ffn_t1 = FeedForward(d, hidden, d_rel)
        self.ffn_t2 = FeedForward(d, hidden, d_rel)
        # Learnable gain on the attention vector.  The relation-map
        # averages are O(1/k) in magnitude, so without a gain the
        # softmax of Eq. (6) starts pathologically flat; the gain is a
        # pure reparameterisation (the FFN output scale could learn the
        # same factor, far more slowly).
        self.att_gain = Parameter(np.array(config.att_gain_init))

    def relation_map(self, image_seq: Tensor, query_seq: Tensor) -> Tensor:
        """Compute the raw dense relation map ``R`` (Eq. 3)."""
        x1 = concatenate([self.ffn_v1(image_seq), self.ffn_t1(query_seq)], axis=1)
        x2 = concatenate([self.ffn_v2(image_seq), self.ffn_t2(query_seq)], axis=1)
        return x1.matmul(x2.swapaxes(1, 2)) / np.sqrt(self.config.d_rel)

    def _attention_scores(self, relation: Tensor,
                          weights: np.ndarray, m: int) -> Tensor:
        """Joint attention vector ``(B, k)`` from the relation map."""
        masked = relation * Tensor(weights)
        normalizers = _attention_normalizers(
            weights, m, self.config.block_balanced_attention
        )
        if self.config.block_balanced_attention:
            # Average each block of R separately before summing, so the
            # co-attention blocks (n entries) carry the same weight as
            # the much larger self-attention blocks (m entries).  With a
            # plain mean over all k entries the query's contribution to
            # att_v is diluted by m/n ~ 15x and grounding barely
            # conditions on the language.
            att_cols = (
                masked[:, :m, :].sum(axis=1) / Tensor(normalizers[0])
                + masked[:, m:, :].sum(axis=1) / Tensor(normalizers[1])
            )
            att_rows = (
                masked[:, :, :m].sum(axis=2) / Tensor(normalizers[2])
                + masked[:, :, m:].sum(axis=2) / Tensor(normalizers[3])
            )
        else:
            # Strict Eq. (3)-(4) reading: plain masked means over each axis.
            att_cols = masked.sum(axis=1) / Tensor(normalizers[0])
            att_rows = masked.sum(axis=2) / Tensor(normalizers[1])
        return (att_cols + att_rows) * self.att_gain  # (B, k)

    def forward(
        self,
        image_seq: Tensor,
        query_seq: Tensor,
        token_mask: Optional[np.ndarray] = None,
        clause_masks: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor, Tensor, Tensor]:
        """Return ``(V_attended, T_attended, att_v, att_t)``.

        ``att_v``/``att_t`` are the raw (pre-softmax) attention scores;
        the attended sequences are the element-wise products of Eq. (4)-(5).

        ``clause_masks`` — ``(B, C, n)`` 0/1 rows from
        :func:`repro.lang.clause_token_masks` — switches the block into
        clause-conditioned mode: the relation map is computed once, the
        attention averages are re-taken per clause over that clause's
        token subset, and the per-clause vectors are pooled (mean over
        active clauses on the image side; per-token normalised sum on
        the text side).  Samples whose rows are all zero take the flat
        average, bit-exact with ``clause_masks=None``.  No parameters
        are added, so the state-dict layout is unchanged.
        """
        batch, m = image_seq.shape[0], image_seq.shape[1]
        n = query_seq.shape[1]
        relation = self.relation_map(image_seq, query_seq)

        weights = _relation_weight_mask(
            batch, m, n, token_mask,
            self.config.use_self_attention, self.config.use_co_attention,
        )
        att = self._attention_scores(relation, weights, m)
        if clause_masks is not None:
            att = self._clause_conditioned(
                relation, att, token_mask, clause_masks, m, n)

        att_v = att[:, :m]
        att_t = att[:, m:]
        if token_mask is not None:
            att_t = att_t * Tensor(token_mask)

        # Re-weight with tanh-bounded attention: the raw logits are kept
        # for the mask loss, but unbounded multiplicative re-weighting
        # compounds exponentially through the stacked modules (features
        # scale by (1 + att) per module) and overflows float32.
        attended_v = image_seq * att_v.tanh().expand_dims(-1)
        attended_t = query_seq * att_t.tanh().expand_dims(-1)
        return attended_v, attended_t, att_v, att_t

    def _clause_conditioned(
        self,
        relation: Tensor,
        att_flat: Tensor,
        token_mask: Optional[np.ndarray],
        clause_masks: np.ndarray,
        m: int,
        n: int,
    ) -> Tensor:
        """Pool per-clause attention averages over the shared relation map.

        For each clause the flat averages are re-taken with the token
        axis restricted to that clause's tokens; the image-side vectors
        are averaged over a sample's active clauses and the text-side
        vectors summed with per-token normalisation (a token attended by
        two clauses is not double-counted).  Samples with fewer than two
        active clauses keep their flat attention unchanged.
        """
        batch = clause_masks.shape[0]
        base_mask = token_mask if token_mask is not None \
            else np.ones((batch, n))
        att_v_sum: Optional[Tensor] = None
        att_t_sum: Optional[Tensor] = None
        coverage = np.zeros((batch, n))
        active = np.zeros(batch)
        for index in range(clause_masks.shape[1]):
            row = clause_masks[:, index] * base_mask  # (B, n)
            act = (row.sum(axis=1) > 0).astype(np.float64)
            if not act.any():
                continue
            weights = _relation_weight_mask(
                batch, m, n, row,
                self.config.use_self_attention,
                self.config.use_co_attention,
            )
            att_c = self._attention_scores(relation, weights, m)
            term_v = att_c[:, :m] * Tensor(act[:, None])
            term_t = att_c[:, m:] * Tensor(row)
            att_v_sum = term_v if att_v_sum is None else att_v_sum + term_v
            att_t_sum = term_t if att_t_sum is None else att_t_sum + term_t
            coverage += row
            active += act
        conditioned = (active >= 2.0).astype(np.float64)[:, None]  # (B, 1)
        if att_v_sum is None or not conditioned.any():
            return att_flat
        att_v = att_v_sum / Tensor(np.maximum(active, 1.0)[:, None])
        att_t = att_t_sum / Tensor(np.maximum(coverage, 1.0))
        att_clause = concatenate([att_v, att_t], axis=1)
        return (att_flat * Tensor(1.0 - conditioned)
                + att_clause * Tensor(conditioned))


class Rel2AttStack(Module):
    """Stack of Rel2Att modules with shortcut connections.

    Each module's attended outputs are added back to its inputs
    (residual propagation, Section 3.2) before feeding the next module.
    Returns the final image sequence plus the per-module raw attention
    masks used by the attention loss and visualisations.
    """

    def __init__(self, config: YolloConfig):
        super().__init__()
        self.config = config
        self.blocks = Sequential(*[Rel2AttModule(config) for _ in range(config.num_rel2att)])
        # Precomputed so the profiling-off path does no string formatting.
        self._span_names = [f"rel2att.block{i}" for i in range(config.num_rel2att)]

    def forward(
        self,
        image_seq: Tensor,
        query_seq: Tensor,
        token_mask: Optional[np.ndarray] = None,
        clause_masks: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, List[Tensor]]:
        attention_masks: List[Tensor] = []
        v, t = image_seq, query_seq
        for block, span_name in zip(self.blocks, self._span_names):
            with trace_span(span_name):
                attended_v, attended_t, att_v, _ = block(
                    v, t, token_mask, clause_masks)
                v = v + attended_v
                t = t + attended_t
            attention_masks.append(att_v)
        return v, attention_masks
