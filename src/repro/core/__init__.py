"""YOLLO: the paper's one-stage visual-grounding model.

Pipeline (Section 3): a :class:`FeatureEncoder` extracts dense-region
image features and position-aware word features; a stack of
:class:`Rel2AttModule` blocks turns the joint relation map into attention
masks that re-weight both modalities; a :class:`TargetDetectionNetwork`
predicts per-anchor confidence and box offsets from the attended feature
map, and the top-1 scored anchor (after offset decoding) is the answer.
"""

from repro.core.config import UnknownConfigFieldError, YolloConfig
from repro.core.encoder import DilatedContextEncoder, FeatureEncoder
from repro.core.rel2att import Rel2AttModule, Rel2AttStack
from repro.core.word2pix import Word2PixModule, Word2PixStack, build_fusion_stack
from repro.core.detector import TargetDetectionNetwork
from repro.core.response import (
    GroundingResponse,
    freeze_response,
    is_response,
    responses_equal,
    thaw_response,
)
from repro.core.yollo import GroundingPrediction, YolloModel, YolloOutput
from repro.core.losses import LossBreakdown, attention_mask_loss, detection_loss, yollo_loss
from repro.core.trainer import TrainingHistory, YolloTrainer
from repro.core.predictor import Grounder, RankedGrounder

__all__ = [
    "YolloConfig",
    "UnknownConfigFieldError",
    "FeatureEncoder",
    "DilatedContextEncoder",
    "Rel2AttModule",
    "Rel2AttStack",
    "Word2PixModule",
    "Word2PixStack",
    "build_fusion_stack",
    "TargetDetectionNetwork",
    "YolloModel",
    "YolloOutput",
    "GroundingPrediction",
    "GroundingResponse",
    "freeze_response",
    "thaw_response",
    "responses_equal",
    "is_response",
    "attention_mask_loss",
    "detection_loss",
    "yollo_loss",
    "LossBreakdown",
    "YolloTrainer",
    "TrainingHistory",
    "Grounder",
    "RankedGrounder",
]
