"""RPN-like target detection network (Section 3.3).

Two 3x3 convolutions map the attended feature map to a hidden
representation; sibling 1x1 convolutions predict, for each of the ``K``
anchors of every cell, a binary (background/target) score pair and a
4-tuple of bounding-box offsets.
"""

from __future__ import annotations

from typing import Tuple

from repro.autograd import Tensor
from repro.core.config import YolloConfig
from repro.detection import AnchorGrid
from repro.nn import Conv2d, Module


class TargetDetectionNetwork(Module):
    """Predict per-anchor target scores and box offsets."""

    def __init__(self, config: YolloConfig, grid_h: int, grid_w: int, stride: int):
        super().__init__()
        self.config = config
        self.anchor_grid = AnchorGrid(
            grid_h=grid_h,
            grid_w=grid_w,
            stride=stride,
            scales=config.anchor_scales,
            aspect_ratios=config.anchor_ratios,
        )
        k = self.anchor_grid.num_anchors_per_cell
        hidden = config.head_hidden
        self.conv1 = Conv2d(config.d_model, hidden, 3, padding=1)
        self.conv2 = Conv2d(hidden, hidden, 3, padding=1)
        self.cls_head = Conv2d(hidden, 2 * k, 1)
        self.reg_head = Conv2d(hidden, 4 * k, 1)

    def forward(self, feature_map: Tensor) -> Tuple[Tensor, Tensor]:
        """Feature map ``(B, d, gh, gw)`` -> ``(cls (B,A,2), offsets (B,A,4))``.

        Anchor ordering matches :meth:`AnchorGrid.all_anchors`: row-major
        cells with the K per-cell anchors contiguous.
        """
        batch = feature_map.shape[0]
        grid = self.anchor_grid
        k = grid.num_anchors_per_cell
        hidden = self.conv2(self.conv1(feature_map).relu()).relu()

        cls = self.cls_head(hidden)  # (B, 2K, gh, gw)
        cls = cls.reshape(batch, k, 2, grid.grid_h, grid.grid_w)
        cls = cls.transpose(0, 3, 4, 1, 2).reshape(batch, grid.num_anchors, 2)

        reg = self.reg_head(hidden)  # (B, 4K, gh, gw)
        reg = reg.reshape(batch, k, 4, grid.grid_h, grid.grid_w)
        reg = reg.transpose(0, 3, 4, 1, 2).reshape(batch, grid.num_anchors, 4)
        return cls, reg
