"""Structured grounding responses: ranked boxes + an explicit not-found.

The single ``(4,)`` argmax box that every serving layer shipped until
now is the wrong answer shape for two of the scenario workloads
(:mod:`repro.scenarios`): *crowded* scenes ask queries that several
objects satisfy (the answer is a ranked list) or that **no** object
satisfies (the answer is "not found", which an argmax box cannot say).

:class:`GroundingResponse` is the wire/cache format for those answers:
ranked boxes with per-box confidences, plus an explicit ``not_found``
decision taken against a calibrated ``threshold`` (see
:func:`repro.eval.metrics.calibrate_not_found_threshold`).  A
``version`` fingerprint of the serving weights rides along so reload
harnesses can verify a response's provenance end to end (0.0 when the
grounder does not track one).

Every serving tier stores and returns responses by value.  The
copy-in/copy-out helpers here generalise the previous
``np.array(box, copy=True)`` idiom so both shapes flow through the
same cache code paths:

* :func:`freeze_response` — deep, read-only copy for cache insertion
  (mutating a served response must never corrupt later hits);
* :func:`thaw_response` — deep, writable copy handed to callers (the
  caller owns its response outright);
* :func:`responses_equal` — byte-identical comparison used by tests to
  assert cached responses replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np


@dataclass(eq=False)
class GroundingResponse:
    """Ranked answer to one grounding query.

    Attributes
    ----------
    boxes:
        ``(k, 4)`` float64 boxes, best first.  ``k == 0`` when nothing
        cleared the detector (a confident "not found").
    scores:
        ``(k,)`` confidences aligned with ``boxes``, non-increasing.
    not_found:
        The explicit decision that the described object is absent.  A
        response may still carry low-confidence candidate boxes for
        diagnostics; ``not_found`` is the answer.
    threshold:
        The calibrated score cut-off the decision was taken against.
    version:
        Fingerprint of the serving weights that produced the response
        (0.0 when the grounder does not track one).  Soak harnesses use
        it to verify no response outlives a weight reload.
    """

    boxes: np.ndarray = field(default_factory=lambda: np.empty((0, 4)))
    scores: np.ndarray = field(default_factory=lambda: np.empty((0,)))
    not_found: bool = False
    threshold: float = 0.0
    version: float = 0.0

    def __post_init__(self):
        self.boxes = np.asarray(self.boxes, dtype=np.float64).reshape(-1, 4)
        self.scores = np.asarray(self.scores, dtype=np.float64).reshape(-1)
        if len(self.boxes) != len(self.scores):
            raise ValueError(
                f"boxes ({len(self.boxes)}) and scores ({len(self.scores)}) "
                f"must align")
        self.not_found = bool(self.not_found)
        self.threshold = float(self.threshold)
        self.version = float(self.version)

    def __len__(self) -> int:
        return len(self.boxes)

    @property
    def top_box(self) -> np.ndarray:
        """Best box, or a zero box when the response carries none.

        Lets single-box consumers (the legacy protocol) read a ranked
        response without special-casing emptiness.
        """
        if len(self.boxes):
            return self.boxes[0]
        return np.zeros(4)

    @property
    def top_score(self) -> float:
        return float(self.scores[0]) if len(self.scores) else 0.0

    def copy(self, readonly: bool = False) -> "GroundingResponse":
        """Deep copy; ``readonly=True`` freezes the array buffers."""
        boxes = np.array(self.boxes, copy=True)
        scores = np.array(self.scores, copy=True)
        if readonly:
            boxes.setflags(write=False)
            scores.setflags(write=False)
        clone = GroundingResponse.__new__(GroundingResponse)
        clone.boxes = boxes
        clone.scores = scores
        clone.not_found = self.not_found
        clone.threshold = self.threshold
        clone.version = self.version
        return clone

    def __repr__(self) -> str:
        return (f"GroundingResponse(k={len(self)}, "
                f"top_score={self.top_score:.3f}, "
                f"not_found={self.not_found}, "
                f"threshold={self.threshold:.3f}, "
                f"version={self.version})")


#: What serving layers shuttle around: the legacy (4,) box or a
#: structured ranked response.
ResponseLike = Union[np.ndarray, GroundingResponse]


def is_response(value) -> bool:
    """Is ``value`` a structured response (vs a legacy box array)?"""
    return isinstance(value, GroundingResponse)


def freeze_response(value: ResponseLike) -> ResponseLike:
    """Deep read-only copy for cache insertion (either answer shape)."""
    if isinstance(value, GroundingResponse):
        return value.copy(readonly=True)
    frozen = np.array(value, copy=True)
    frozen.setflags(write=False)
    return frozen


def thaw_response(value: ResponseLike) -> ResponseLike:
    """Deep writable copy handed to a caller (either answer shape)."""
    if isinstance(value, GroundingResponse):
        return value.copy(readonly=False)
    return np.array(value, copy=True)


def responses_equal(a: ResponseLike, b: ResponseLike) -> bool:
    """Byte-identical equality across both answer shapes.

    Arrays compare by dtype + shape + raw bytes (so NaNs and signed
    zeros are compared exactly, not numerically); structured responses
    additionally compare the decision fields.
    """
    if isinstance(a, GroundingResponse) != isinstance(b, GroundingResponse):
        return False
    if isinstance(a, GroundingResponse):
        return (
            _arrays_identical(a.boxes, b.boxes)
            and _arrays_identical(a.scores, b.scores)
            and a.not_found == b.not_found
            and a.threshold == b.threshold
            and a.version == b.version
        )
    return _arrays_identical(np.asarray(a), np.asarray(b))


def _arrays_identical(a: np.ndarray, b: np.ndarray) -> bool:
    return (a.dtype == b.dtype and a.shape == b.shape
            and a.tobytes() == b.tobytes())
