"""Word2Pix-style word-to-pixel cross-attention fusion.

Alternative to the Rel2Att stack (selected with ``config.fusion ==
"word2pix"``): instead of a dense joint relation map over the
concatenated image+query sequence, each block runs one-directional
cross-attention with the query *words* as attention queries and the
image regions as keys — every word independently scores every pixel
(word-to-pixel attention, after Word2Pix), the per-word score rows are
softmax-normalised over words to gather a language context vector per
region, and the region sequence is re-weighted by the word-averaged
scores.

The stack keeps the Rel2Att contract exactly: ``forward(image_seq,
query_seq, token_mask)`` returns ``(v, attention_masks)`` where each
mask is the raw per-region score ``(B, m)`` consumed by the attention
loss, so the rest of the model (detector head, loss, tracer) is
agnostic to which fusion is installed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor, softmax
from repro.core.config import YolloConfig
from repro.nn import FeedForward, Linear, Module, Parameter, Sequential
from repro.obs import trace_span


def _word_mask_arrays(
    batch: int,
    num_tokens: int,
    token_mask: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """PAD-handling arrays for one Word2Pix block.

    Returns ``(mask3, bias, norm)``: a ``(B, n, 1)`` 0/1 valid-word
    mask, a ``(B, n, 1)`` additive bias that sends PAD rows to -1e4 so
    their softmax weight underflows to zero, and a ``(B, 1)`` divisor
    holding each sample's valid-word count (floored at one).  Kept as a
    single plain numpy function so the graph tracer captures the
    mask-dependent arrays as one external node.
    """
    if token_mask is None:
        valid = np.ones((batch, num_tokens))
    else:
        valid = np.asarray(token_mask, dtype=np.float64)
    mask3 = valid[:, :, None]
    bias = (mask3 - 1.0) * 1e4
    norm = np.maximum(valid.sum(axis=1, keepdims=True), 1.0)
    return mask3, bias, norm


class Word2PixModule(Module):
    """One word-to-pixel cross-attention block."""

    def __init__(self, config: YolloConfig):
        super().__init__()
        self.config = config
        d = config.d_model
        self.query_proj = Linear(d, d)
        self.key_proj = Linear(d, d)
        self.value_proj = Linear(d, d)
        self.out_ffn = FeedForward(d, config.ffn_hidden, d)
        # Same role as Rel2Att's gain: word-averaged scores are small,
        # and the mask softmax of Eq. (6) needs O(1) logits to sharpen.
        self.att_gain = Parameter(np.array(config.att_gain_init))

    def forward(
        self,
        image_seq: Tensor,
        query_seq: Tensor,
        token_mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Return ``(V_attended, att_v)`` for one block.

        ``att_v`` is the raw ``(B, m)`` per-region score (valid-word
        average of the word-to-pixel score matrix), used both for the
        attention loss and to gate the attended output.
        """
        batch, n = query_seq.shape[0], query_seq.shape[1]
        mask3, bias, norm = _word_mask_arrays(batch, n, token_mask)

        q = self.query_proj(query_seq)  # (B, n, d) — words attend...
        k = self.key_proj(image_seq)    # (B, m, d) — ...over regions
        v_words = self.value_proj(query_seq)
        scores = q.matmul(k.swapaxes(1, 2)) / np.sqrt(self.config.d_model)

        # Raw per-region mask: mean score over the valid words.
        att_v = (scores * Tensor(mask3)).sum(axis=1) / Tensor(norm)
        att_v = att_v * self.att_gain

        # Language context per region: softmax over words (PAD rows
        # biased out), transposed to (B, m, n), gathering word values.
        attn = softmax(scores + Tensor(bias), axis=1)
        context = attn.swapaxes(1, 2).matmul(v_words)  # (B, m, d)

        attended_v = self.out_ffn(context) * att_v.tanh().expand_dims(-1)
        return attended_v, att_v


class Word2PixStack(Module):
    """Stack of Word2Pix blocks with residual visual propagation.

    Mirrors :class:`repro.core.rel2att.Rel2AttStack`: each block's
    attended output is added back onto the region sequence; the query
    sequence stays fixed (words are pure conditioning, the Word2Pix
    one-way design).  Returns the final region sequence and the
    per-block raw attention masks.
    """

    def __init__(self, config: YolloConfig):
        super().__init__()
        self.config = config
        self.blocks = Sequential(*[Word2PixModule(config)
                                   for _ in range(config.num_rel2att)])
        self._span_names = [f"word2pix.block{i}"
                            for i in range(config.num_rel2att)]

    def forward(
        self,
        image_seq: Tensor,
        query_seq: Tensor,
        token_mask: Optional[np.ndarray] = None,
        clause_masks: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, List[Tensor]]:
        # ``clause_masks`` is accepted for interface parity with
        # Rel2AttStack but ignored: Word2Pix attention is already
        # per-word, so clause grouping adds nothing to its averages.
        attention_masks: List[Tensor] = []
        v = image_seq
        for block, span_name in zip(self.blocks, self._span_names):
            with trace_span(span_name):
                attended_v, att_v = block(v, query_seq, token_mask)
                v = v + attended_v
            attention_masks.append(att_v)
        return v, attention_masks


def build_fusion_stack(config: YolloConfig) -> Module:
    """Fusion stack selected by ``config.fusion``."""
    if config.fusion == "rel2att":
        from repro.core.rel2att import Rel2AttStack

        return Rel2AttStack(config)
    if config.fusion == "word2pix":
        return Word2PixStack(config)
    raise ValueError(
        f"unknown fusion {config.fusion!r}; valid fusions: "
        f"rel2att, word2pix")
