"""End-to-end YOLLO training loop (Section 4.2).

Adam over the total loss of Eq. (9); the backbone and word embeddings
are fine-tuned jointly with everything else, as in the paper.  The
trainer records per-step losses and a validation ACC@0.5 curve — the
data behind Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autograd import Tensor
from repro.core.config import YolloConfig
from repro.core.losses import yollo_loss
from repro.core.predictor import Grounder
from repro.core.yollo import YolloModel
from repro.data.loader import BatchIterator
from repro.data.refcoco import GroundingDataset
from repro.eval.curves import TrainingCurve
from repro.eval.metrics import evaluate_grounder
from repro.optim import Adam, clip_grad_norm
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


@dataclass
class TrainingHistory:
    """Everything recorded during one training run."""

    losses: List[float] = field(default_factory=list)
    loss_components: List[Dict[str, float]] = field(default_factory=list)
    curve: TrainingCurve = field(default_factory=lambda: TrainingCurve(label="val ACC@0.5"))
    iterations: int = 0


class YolloTrainer:
    """Train a :class:`YolloModel` on a :class:`GroundingDataset`."""

    def __init__(
        self,
        model: YolloModel,
        dataset: GroundingDataset,
        config: Optional[YolloConfig] = None,
        logger: Optional[ProgressLogger] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.model = model
        self.dataset = dataset
        self.config = config or model.config
        self.logger = logger or ProgressLogger("yollo-train", enabled=False)
        self._rng = rng if rng is not None else spawn_rng("yollo-trainer")
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self.grounder = Grounder(model, dataset.vocab)

    def train(
        self,
        epochs: Optional[int] = None,
        eval_every: int = 0,
        eval_split: str = "val",
        eval_samples: int = 32,
    ) -> TrainingHistory:
        """Run the optimisation loop.

        ``eval_every > 0`` evaluates validation ACC@0.5 on a fixed subset
        every that many iterations (recorded into the Figure-4 curve).
        """
        epochs = epochs if epochs is not None else self.config.epochs
        history = TrainingHistory()
        iterator = BatchIterator(
            self.dataset["train"],
            self.dataset.vocab,
            max_query_length=self.config.max_query_length,
            batch_size=self.config.batch_size,
            shuffle=True,
            rng=self._rng,
        )
        eval_subset = list(self.dataset[eval_split][:eval_samples]) if eval_every else []

        iteration = 0
        for epoch in range(epochs):
            for batch in iterator:
                iteration += 1
                loss_value = self._step(batch, history)
                self.logger.periodic(
                    f"epoch {epoch + 1}/{epochs} iter {iteration} loss={loss_value:.3f}"
                )
                if eval_every and iteration % eval_every == 0:
                    self._record_eval(history, eval_subset, iteration)
        if eval_every and (not history.curve.iterations
                           or history.curve.iterations[-1] != iteration):
            self._record_eval(history, eval_subset, iteration)
        history.iterations = iteration
        return history

    def _step(self, batch: Dict[str, np.ndarray], history: TrainingHistory) -> float:
        output = self.model(
            Tensor(batch["images"]), batch["token_ids"], batch["token_mask"]
        )
        breakdown = yollo_loss(
            output.attention_masks,
            output.cls_logits,
            output.reg_offsets,
            batch["target_boxes"],
            self.model.anchor_grid,
            self.config,
            rng=self._rng,
        )
        self.optimizer.zero_grad()
        breakdown.total.backward()
        if self.config.grad_clip:
            clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
        self.optimizer.step()

        loss_value = float(breakdown.total.data)
        history.losses.append(loss_value)
        history.loss_components.append(
            {"att": breakdown.att, "cls": breakdown.cls, "reg": breakdown.reg}
        )
        return loss_value

    def _record_eval(self, history: TrainingHistory, subset, iteration: int) -> None:
        if not subset:
            return
        report = evaluate_grounder(self.grounder, subset)
        history.curve.record(iteration, report.acc_at_50)
        self.logger.log(f"iter {iteration}: val ACC@0.5 = {report.acc_at_50:.3f}")
