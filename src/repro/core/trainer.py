"""End-to-end YOLLO training loop (Section 4.2).

Adam over the total loss of Eq. (9); the backbone and word embeddings
are fine-tuned jointly with everything else, as in the paper.  The
trainer records per-step losses and a validation ACC@0.5 curve — the
data behind Figure 4.

The loop is structured as a :class:`repro.runtime.SupervisedTask`:
``forward_backward`` computes the loss and gradients for the next
minibatch and ``apply_step`` performs the optimiser update, so a
:class:`repro.runtime.TrainingSupervisor` can interpose anomaly guards
and checkpointing between the two.  All mutable training state — model
parameters, Adam moments, the RNG stream, the current epoch's shuffle
order and cursor, and the recorded history — round-trips through
``state_dict``/``load_state_dict``, which makes kill/resume bit-exact:
training N iterations, checkpointing, and resuming for N more yields
parameters and losses identical to an uninterrupted 2N-iteration run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.autograd import Tensor
from repro.core.config import YolloConfig
from repro.core.losses import yollo_loss
from repro.core.predictor import Grounder
from repro.core.yollo import YolloModel
from repro.data.loader import encode_batch
from repro.data.refcoco import GroundingDataset
from repro.eval.curves import TrainingCurve
from repro.eval.metrics import evaluate_grounder
from repro.obs import MetricsRegistry, get_registry, trace_span
from repro.optim import Adam, clip_grad_norm
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


@dataclass
class TrainingHistory:
    """Everything recorded during one training run."""

    losses: List[float] = field(default_factory=list)
    loss_components: List[Dict[str, float]] = field(default_factory=list)
    curve: TrainingCurve = field(default_factory=lambda: TrainingCurve(label="val ACC@0.5"))
    iterations: int = 0

    def to_state(self) -> Dict[str, Any]:
        """Serialise to plain containers for checkpointing."""
        return {
            "losses": list(self.losses),
            "loss_components": [dict(c) for c in self.loss_components],
            "curve": {
                "label": self.curve.label,
                "iterations": list(self.curve.iterations),
                "values": list(self.curve.values),
            },
            "iterations": self.iterations,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "TrainingHistory":
        curve = TrainingCurve(
            label=state["curve"]["label"],
            iterations=list(state["curve"]["iterations"]),
            values=list(state["curve"]["values"]),
        )
        return cls(
            losses=list(state["losses"]),
            loss_components=[dict(c) for c in state["loss_components"]],
            curve=curve,
            iterations=int(state["iterations"]),
        )


class YolloTrainer:
    """Train a :class:`YolloModel` on a :class:`GroundingDataset`.

    Also implements the :class:`repro.runtime.SupervisedTask` protocol,
    so it can be driven by a :class:`repro.runtime.TrainingSupervisor`
    for checkpoint/resume and anomaly recovery::

        trainer.begin_run(epochs=8, eval_every=50)
        TrainingSupervisor(trainer, checkpoint_dir="ckpts",
                           checkpoint_every=100, resume=True).run()
        history = trainer.history
    """

    def __init__(
        self,
        model: YolloModel,
        dataset: GroundingDataset,
        config: Optional[YolloConfig] = None,
        logger: Optional[ProgressLogger] = None,
        rng: Optional[np.random.Generator] = None,
        scheduler: Optional[Callable] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.model = model
        self.dataset = dataset
        self.config = config or model.config
        self.logger = logger or ProgressLogger("yollo-train", enabled=False)
        #: Registry receiving ``train.*`` metrics (process-wide by default).
        self.metrics = metrics if metrics is not None else get_registry()
        self._rng = rng if rng is not None else spawn_rng("yollo-trainer")
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        #: Optional LR schedule, built from a factory ``optimizer -> scheduler``
        #: (e.g. ``lambda opt: StepLR(opt, step_size=100)``) and stepped after
        #: every optimiser update.  Its position persists through
        #: ``state_dict``/``load_state_dict`` so resume continues the decay.
        self.scheduler = scheduler(self.optimizer) if scheduler is not None else None
        self.grounder = Grounder(model, dataset.vocab)
        self._train_samples = list(dataset["train"])

        # Run state (reset by begin_run, restored by load_state_dict).
        self.history = TrainingHistory()
        self.iteration = 0
        self.total_iterations = 0
        self.eval_every = 0
        self._eval_subset: List = []
        self._epochs_announced = 1
        self._epoch_order: Optional[np.ndarray] = None
        self._epoch_cursor = 0
        self._epoch = 0
        self._pending = None
        #: When the distributed trainer installs reduced gradients, every
        #: ``param.grad`` is a view into this flat buffer and clipping
        #: happens on the buffer itself (one shared norm computation).
        self._flat_grads: Optional[np.ndarray] = None
        # Best-eval weight tracking (see begin_run(keep_best=...)).
        self._keep_best = False
        self._best_score: Optional[float] = None
        self._best_weights: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------
    # Run setup
    # ------------------------------------------------------------------
    def iterations_per_epoch(self) -> int:
        full, remainder = divmod(len(self._train_samples), self.config.batch_size)
        return full + (1 if remainder else 0)

    def begin_run(
        self,
        epochs: Optional[int] = None,
        iterations: Optional[int] = None,
        eval_every: int = 0,
        eval_split: str = "val",
        eval_samples: int = 32,
        keep_best: bool = False,
    ) -> "YolloTrainer":
        """Reset per-run state and fix the step/eval plan.

        Either ``epochs`` (the default, ``config.epochs``) or an explicit
        ``iterations`` budget determines ``total_iterations``.

        ``keep_best`` snapshots the model weights whenever a periodic
        evaluation improves on the best validation ACC@0.5 so far, and
        restores that snapshot in :meth:`finalize` — the run ends with
        its best-evaluated weights even if training later destabilises.
        The snapshot is not part of ``state_dict``; a resumed run starts
        tracking again from its first post-resume evaluation.
        """
        per_epoch = self.iterations_per_epoch()
        if iterations is not None:
            self.total_iterations = iterations
            self._epochs_announced = max(1, -(-iterations // per_epoch))
        else:
            epochs = epochs if epochs is not None else self.config.epochs
            self.total_iterations = epochs * per_epoch
            self._epochs_announced = epochs
        self.history = TrainingHistory()
        self.iteration = 0
        self.eval_every = eval_every
        self._eval_subset = (
            list(self.dataset[eval_split][:eval_samples]) if eval_every else []
        )
        self._epoch_order = None
        self._epoch_cursor = 0
        self._epoch = 0
        self._pending = None
        self._keep_best = keep_best
        self._best_score = None
        self._best_weights = None
        return self

    # ------------------------------------------------------------------
    # Classic entry point
    # ------------------------------------------------------------------
    def train(
        self,
        epochs: Optional[int] = None,
        eval_every: int = 0,
        eval_split: str = "val",
        eval_samples: int = 32,
        keep_best: bool = False,
    ) -> TrainingHistory:
        """Run the optimisation loop.

        ``eval_every > 0`` evaluates validation ACC@0.5 on a fixed subset
        every that many iterations (recorded into the Figure-4 curve).
        ``keep_best`` restores the best-evaluated weights at the end of
        the run (see :meth:`begin_run`).
        """
        self.begin_run(epochs=epochs, eval_every=eval_every,
                       eval_split=eval_split, eval_samples=eval_samples,
                       keep_best=keep_best)
        while self.iteration < self.total_iterations:
            loss_value = self.forward_backward()
            self.apply_step(loss_value)
            if self.eval_every and self.iteration % self.eval_every == 0:
                self.periodic_eval()
        self.finalize()
        return self.history

    # ------------------------------------------------------------------
    # SupervisedTask protocol
    # ------------------------------------------------------------------
    def parameters(self) -> List:
        return self.optimizer.parameters

    def _next_batch(self) -> Dict[str, np.ndarray]:
        n = len(self._train_samples)
        if self._epoch_order is None or self._epoch_cursor >= n:
            order = np.arange(n)
            self._rng.shuffle(order)
            self._epoch_order = order
            self._epoch_cursor = 0
            self._epoch += 1
        chunk = self._epoch_order[
            self._epoch_cursor : self._epoch_cursor + self.config.batch_size
        ]
        self._epoch_cursor += self.config.batch_size
        samples = [self._train_samples[i] for i in chunk]
        return encode_batch(samples, self.dataset.vocab, self.config.max_query_length)

    def forward_backward(self) -> float:
        """Loss and gradients for the next minibatch; no parameter update."""
        return self._forward_backward_batch(self._next_batch())

    def _forward_backward_batch(self, batch: Dict[str, np.ndarray]) -> float:
        with self.metrics.timer("train.forward_backward_seconds"):
            with trace_span("train.forward"):
                output = self.model(
                    Tensor(batch["images"]), batch["token_ids"], batch["token_mask"]
                )
                breakdown = yollo_loss(
                    output.attention_masks,
                    output.cls_logits,
                    output.reg_offsets,
                    batch["target_boxes"],
                    self.model.anchor_grid,
                    self.config,
                    rng=self._rng,
                )
            self.optimizer.zero_grad()
            with trace_span("train.backward"):
                breakdown.total.backward()
        self._pending = breakdown
        return float(breakdown.total.data)

    def apply_step(self, loss_value: float) -> None:
        """Clip, update parameters, and record the step into history."""
        breakdown = self._pending
        self._pending = None
        with self.metrics.timer("train.apply_seconds"), trace_span("train.apply_step"):
            if self.config.grad_clip:
                clip_grad_norm(self.optimizer.parameters, self.config.grad_clip,
                               flat=self._flat_grads)
            self._flat_grads = None
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
        self.iteration += 1
        self.metrics.counter("train.steps").inc()
        self.metrics.gauge("train.loss").set(loss_value)
        self.history.losses.append(float(loss_value))
        self.history.loss_components.append(
            {"att": breakdown.att, "cls": breakdown.cls, "reg": breakdown.reg}
        )
        self.history.iterations = self.iteration
        per_epoch = self.iterations_per_epoch()
        epoch = (self.iteration - 1) // per_epoch
        self.logger.periodic(
            f"epoch {epoch + 1}/{self._epochs_announced} "
            f"iter {self.iteration} loss={loss_value:.3f}"
        )

    def _step(self, batch: Dict[str, np.ndarray], history: TrainingHistory) -> float:
        """One optimisation step on an explicit batch (fixed-batch loops).

        Bypasses the epoch machinery and records into the given history
        instead of ``self.history``.
        """
        loss_value = self._forward_backward_batch(batch)
        breakdown = self._pending
        self._pending = None
        if self.config.grad_clip:
            clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
        self.optimizer.step()
        if self.scheduler is not None:
            self.scheduler.step()
        history.losses.append(float(loss_value))
        history.loss_components.append(
            {"att": breakdown.att, "cls": breakdown.cls, "reg": breakdown.reg}
        )
        return loss_value

    def skip_step(self) -> None:
        """Advance past an anomalous step without touching the weights."""
        self._pending = None
        self._flat_grads = None
        self.optimizer.zero_grad()
        self.iteration += 1
        self.history.iterations = self.iteration

    def periodic_eval(self) -> None:
        self._record_eval(self.history, self._eval_subset, self.iteration)

    def finalize(self) -> None:
        """Trailing evaluation so the curve always ends at the last step."""
        if self.eval_every and (not self.history.curve.iterations
                                or self.history.curve.iterations[-1] != self.iteration):
            self.periodic_eval()
        if self._keep_best and self._best_weights is not None:
            for param, weights in zip(self.optimizer.parameters,
                                      self._best_weights):
                np.copyto(param.data, weights)
            self.logger.log(
                f"restored best-eval weights (val ACC@0.5 = {self._best_score:.3f})")

    def result(self) -> TrainingHistory:
        return self.history

    def fingerprint_data(self) -> Dict[str, Any]:
        return {
            "config": asdict(self.config),
            "vocab_size": len(self.dataset.vocab),
            "train_size": len(self._train_samples),
            "num_parameters": self.model.num_parameters(),
        }

    # ------------------------------------------------------------------
    # State persistence (checkpoint payload)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": (
                None if self.scheduler is None else self.scheduler.state_dict()
            ),
            "rng": self._rng.bit_generator.state,
            "iteration": self.iteration,
            "epoch": self._epoch,
            "epoch_cursor": self._epoch_cursor,
            "epoch_order": (
                None if self._epoch_order is None else self._epoch_order.copy()
            ),
            "history": self.history.to_state(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        scheduler_state = state.get("scheduler")
        if (scheduler_state is None) != (self.scheduler is None):
            raise ValueError(
                "scheduler mismatch: checkpoint "
                f"{'has' if scheduler_state is not None else 'lacks'} scheduler "
                f"state but this trainer {'lacks' if self.scheduler is None else 'has'} one"
            )
        if self.scheduler is not None:
            self.scheduler.load_state_dict(scheduler_state)
        self._rng.bit_generator.state = state["rng"]
        self.iteration = int(state["iteration"])
        self._epoch = int(state["epoch"])
        self._epoch_cursor = int(state["epoch_cursor"])
        order = state["epoch_order"]
        self._epoch_order = None if order is None else np.asarray(order).copy()
        self.history = TrainingHistory.from_state(state["history"])
        self._pending = None

    # ------------------------------------------------------------------
    def _record_eval(self, history: TrainingHistory, subset, iteration: int) -> None:
        if not subset:
            return
        report = evaluate_grounder(self.grounder, subset)
        history.curve.record(iteration, report.acc_at_50)
        self.logger.log(f"iter {iteration}: val ACC@0.5 = {report.acc_at_50:.3f}")
        if self._keep_best and (self._best_score is None
                                or report.acc_at_50 > self._best_score):
            self._best_score = report.acc_at_50
            self._best_weights = [
                param.data.copy() for param in self.optimizer.parameters
            ]
