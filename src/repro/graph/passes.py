"""Optimisation passes over the traced graph IR.

All passes preserve bit-exactness: constant folding *reuses the arrays
already computed during the trace* (the eager values), and the fused
node kernels in the executor replicate the eager arithmetic
operation-for-operation.  Passes therefore never re-derive numerics —
they only restructure which kernels run at execution time.

Pass order matters and :func:`optimize_graph` applies the canonical
sequence:

1. :func:`fold_constants` — ops whose inputs are all constants become
   constants (collapses BN running-stat arithmetic, weight reshapes,
   position-table slices, and mask externals traced with a baked-in
   ``token_mask``).
2. :func:`fold_batchnorm` — the eval-mode BatchNorm pattern
   ``sub → div → mul → add`` (each right operand a per-channel constant)
   collapses into one ``bn_affine`` node, turning four full-tensor
   traversals into one in-place epilogue.
3. :func:`fuse_epilogues` — ``conv2d``/``add`` followed by single-use
   ``bn_affine``/``relu`` chains fuse into one node executed as an
   in-place epilogue on the producer's output buffer.
4. :func:`eliminate_dead_nodes` — drops nodes unreachable from the
   outputs (e.g. the final Rel2Att block's unused query-side update).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.graph.ir import Graph, Node, Slot

#: Ops never folded even when their inputs are constant: inputs bind at
#: run time, constants already are folded.
_NON_FOLDABLE = frozenset({"input", "constant"})


def fold_constants(graph: Graph) -> int:
    """Turn ops with all-constant inputs into constants; returns count.

    The folded value is the array captured during the trace, so folding
    is bit-exact by construction — no arithmetic is re-run.
    """
    folded = 0
    for node in graph.nodes:
        if node.op in _NON_FOLDABLE or node.value is None:
            continue
        if node.inputs and all(src.is_constant for src in node.inputs):
            node.op = "constant"
            node.inputs = []
            node.attrs = {}
            folded += 1
        elif not node.inputs and node.op != "constant":
            # Externals traced with no tracked operands (e.g. the
            # relation weight mask when token_mask is baked in).
            node.op = "constant"
            node.attrs = {}
            folded += 1
    return folded


def eliminate_dead_nodes(graph: Graph) -> int:
    """Drop nodes not reachable from the outputs; returns removed count.

    Input nodes are always kept — execution binds arguments to them even
    when a pass (or the model itself) leaves one unused.
    """
    live = {node.id for node in graph.outputs}
    for node in reversed(graph.nodes):
        if node.id in live:
            for src in node.inputs:
                live.add(src.id)
    dead = [
        node for node in graph.nodes
        if node.id not in live and not node.is_input
    ]
    graph.remove(dead)
    return len(dead)


def _is_channel_constant(node: Node, like: Node) -> bool:
    """A (1, C, 1, 1) constant broadcasting over ``like``'s channels."""
    if not node.is_constant or node.shape is None or like.shape is None:
        return False
    if len(node.shape) != 4 or len(like.shape) != 4:
        return False
    return (
        node.shape[0] == node.shape[2] == node.shape[3] == 1
        and node.shape[1] == like.shape[1]
    )


def fold_batchnorm(graph: Graph) -> int:
    """Collapse eval-mode BatchNorm chains into ``bn_affine`` nodes.

    Matches ``add(mul(div(sub(x, mean), denom), scale), shift)`` where
    every right operand is a per-channel ``(1, C, 1, 1)`` constant (the
    running stats fold to constants in :func:`fold_constants`) and every
    intermediate value has exactly one consumer.  Returns the number of
    chains folded.
    """
    consumers = graph.consumers()
    folded = 0
    for sub_node in list(graph.nodes):
        if sub_node.op != "sub" or len(sub_node.inputs) != 2:
            continue
        x, mean = sub_node.inputs
        if not _is_channel_constant(mean, sub_node):
            continue
        chain = [sub_node]
        ok = True
        for expected_op in ("div", "mul", "add"):
            users = consumers.get(chain[-1].id, [])
            if len(users) != 1:
                ok = False
                break
            nxt = users[0]
            if nxt.op != expected_op or len(nxt.inputs) != 2 or nxt.inputs[0] is not chain[-1]:
                ok = False
                break
            if not _is_channel_constant(nxt.inputs[1], nxt):
                ok = False
                break
            chain.append(nxt)
        if not ok:
            continue
        div_node, mul_node, add_node = chain[1], chain[2], chain[3]
        fused = graph.make_node(
            "bn_affine",
            [x, mean, div_node.inputs[1], mul_node.inputs[1], add_node.inputs[1]],
            {"kind": "bn_affine"},
            value=add_node.value,
            name="bn_affine",
        )
        graph.insert_before(sub_node, fused)
        graph.replace_uses(add_node, fused)
        graph.remove(chain)
        consumers = graph.consumers()
        folded += 1
    return folded


#: Producer ops that accept a fused epilogue, and the epilogue ops that
#: may chain onto them.  Epilogues run in place on the producer's output
#: buffer, eliminating one full-tensor traversal and allocation each.
_EPILOGUE_PRODUCERS = frozenset({"conv2d", "add"})
_EPILOGUE_OPS = frozenset({"bn_affine", "relu"})


def fuse_epilogues(graph: Graph) -> int:
    """Fuse single-consumer ``bn_affine``/``relu`` chains onto producers.

    ``conv2d → bn_affine → relu`` becomes one ``conv2d`` node named
    ``conv2d+bn+relu`` whose kernel applies the epilogue in place before
    the output copy; residual ``add → relu`` likewise becomes
    ``add+relu``.  Returns the number of epilogue ops fused away.
    """
    fused_total = 0
    changed = True
    while changed:
        changed = False
        consumers = graph.consumers()
        for node in list(graph.nodes):
            if node.op not in _EPILOGUE_PRODUCERS:
                continue
            users = consumers.get(node.id, [])
            if len(users) != 1:
                continue
            epilogue = users[0]
            if epilogue.op not in _EPILOGUE_OPS:
                continue
            if epilogue.inputs[0] is not node:
                continue
            steps: List[dict] = list(node.attrs.get("epilogue", []))
            if epilogue.op == "bn_affine":
                base = len(node.inputs)
                node.inputs = node.inputs + list(epilogue.inputs[1:])
                steps.append({"op": "bn_affine", "slots": [base + i for i in range(4)]})
                suffix = "bn"
            else:
                steps.append({"op": "relu"})
                suffix = "relu"
            node.attrs["epilogue"] = steps
            node.name = f"{node.name}+{suffix}"
            node.set_value(epilogue.value)
            graph.replace_uses(epilogue, node)
            graph.remove([epilogue])
            fused_total += 1
            changed = True
            break
    return fused_total


def optimize_graph(graph: Graph) -> Dict[str, int]:
    """Run the canonical pass pipeline; returns per-pass counts."""
    counts = {
        "folded_constants": fold_constants(graph),
        "folded_batchnorm": fold_batchnorm(graph),
        "fused_epilogues": fuse_epilogues(graph),
    }
    counts["eliminated_dead"] = eliminate_dead_nodes(graph)
    return counts
