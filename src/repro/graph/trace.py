"""Trace one eager forward pass into a static :class:`~repro.graph.ir.Graph`.

The tracer layers on the same interposition points the obs profiler
uses (:data:`repro.obs.profiler._TENSOR_METHODS` and
:data:`repro.obs.profiler._FUNCTION_OPS`): while a trace is running,
every primitive tensor method and autograd free function is wrapped to
record a node after computing its eager result, so the captured values
are — by construction — the eager values.  Three extra capture points
cover what the op tables cannot see:

- ``Tensor.__init__`` is hooked so arrays produced by traced ops (or by
  registered external helpers) that get re-wrapped via ``Tensor(arr)``
  stay connected to their producing node ("alias" when the array is
  adopted as-is, a ``cast`` node when ``__init__`` copies to the default
  dtype).
- A registry of *external* numpy helpers (``rel2att._relation_weight_mask``
  and friends) records data-dependent pure-numpy computations as single
  opaque nodes; tuple returns get per-element ``tuple_get`` nodes.
- Untracked tensors and arrays reaching a traced op (parameters, BN
  running-stat reshapes, python scalars) are lifted to ``constant``
  nodes on first use.

Composite tensor methods (``sub``, ``mean``, ``var``, ``stack``,
``softmax``) are recorded as one node each; the re-entrancy guard
suppresses their interior primitives, exactly like the profiler's
attribution rule.  The executor replicates each composite's eager
arithmetic operation-for-operation, which is what keeps compiled
outputs bit-exact.

Tracing temporarily *suspends* an active op-level profiler: both
facilities patch the same bindings, and stacking wrappers would either
trace the profiler's wrappers or leave stale originals behind.  The
profiler's patches are reinstalled as soon as the trace finishes, so
``profile --target serve --compiled`` can compile plans mid-profile.
"""

from __future__ import annotations

import dataclasses
import importlib
import sys
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor, no_grad
from repro.graph.ir import Graph, Node, Slot

#: External pure-numpy helpers recorded as single opaque nodes:
#: (module, attribute, node label).  These run data-dependent numpy code
#: outside the tensor op tables; capturing them whole keeps the graph
#: faithful without teaching the tracer their internals.
_EXTERNAL_FUNCTIONS: Tuple[Tuple[str, str, str], ...] = (
    ("repro.core.rel2att", "_relation_weight_mask", "rel2att.weight_mask"),
    ("repro.core.rel2att", "_attention_normalizers", "rel2att.att_normalizers"),
    ("repro.core.word2pix", "_word_mask_arrays", "word2pix.mask_arrays"),
)

#: Methods whose second operand must be coerced with ``as_tensor`` before
#: dispatch so the tracer sees the exact tensor the op consumes.
_BINARY_METHODS = frozenset(
    {"__add__", "__sub__", "__mul__", "__truediv__", "matmul", "maximum"}
)

# Re-entrancy guard, separate from the profiler's: interior primitives of
# a composite op are suppressed so each composite is one node.
_tls = threading.local()

_active_tracer: Optional["Tracer"] = None
_trace_lock = threading.Lock()


class TraceError(RuntimeError):
    """Raised when a forward pass cannot be captured faithfully."""


# ----------------------------------------------------------------------
# Pytree flatten/unflatten (covers YolloOutput and nested containers)
# ----------------------------------------------------------------------
def _flatten_into(obj: Any, leaves: List[Any]) -> Tuple:
    if isinstance(obj, Tensor):
        leaves.append(obj)
        return ("tensor",)
    if isinstance(obj, np.ndarray):
        leaves.append(obj)
        return ("array",)
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return (kind, [_flatten_into(item, leaves) for item in obj])
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        names = [f.name for f in dataclasses.fields(obj)]
        specs = [_flatten_into(getattr(obj, n), leaves) for n in names]
        return ("dataclass", type(obj), names, specs)
    if isinstance(obj, dict):
        keys = list(obj.keys())
        return ("dict", keys, [_flatten_into(obj[k], leaves) for k in keys])
    return ("literal", obj)


def tree_flatten(obj: Any) -> Tuple[List[Any], Tuple]:
    """Flatten nested containers into (tensor/array leaves, spec)."""
    leaves: List[Any] = []
    spec = _flatten_into(obj, leaves)
    return leaves, spec


def tree_unflatten(spec: Tuple, leaves: Iterator[Any]) -> Any:
    """Rebuild the traced structure from a leaf iterator.

    ``tensor`` leaves are wrapped back into (untracked) :class:`Tensor`
    objects; ``array`` leaves stay plain arrays.
    """
    kind = spec[0]
    if kind == "tensor":
        leaf = next(leaves)
        return leaf if isinstance(leaf, Tensor) else Tensor(leaf)
    if kind == "array":
        return next(leaves)
    if kind == "literal":
        return spec[1]
    if kind in ("list", "tuple"):
        items = [tree_unflatten(s, leaves) for s in spec[1]]
        return items if kind == "list" else tuple(items)
    if kind == "dataclass":
        _, cls, names, specs = spec
        return cls(**{n: tree_unflatten(s, leaves) for n, s in zip(names, specs)})
    if kind == "dict":
        _, keys, specs = spec
        return {k: tree_unflatten(s, leaves) for k, s in zip(keys, specs)}
    raise TraceError(f"unknown pytree spec kind: {kind!r}")


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------
class Tracer:
    """Records one forward pass; install/uninstall around the call."""

    def __init__(self, name: str):
        self.graph = Graph(name)
        # id() keyed: strong keepalive refs below prevent id reuse while
        # the trace is alive.
        self._tensor_nodes: Dict[int, Node] = {}
        self._array_nodes: Dict[int, Node] = {}
        self._keepalive: List[Any] = []
        self._thread = threading.get_ident()
        self._patched_methods: List[Tuple[str, object]] = []
        self._patched_modules: List[Tuple[object, str, object]] = []
        self._patched_init: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Node registration / resolution
    # ------------------------------------------------------------------
    def register_tensor(self, tensor: Tensor, node: Node) -> None:
        self._tensor_nodes[id(tensor)] = node
        self._keepalive.append(tensor)
        # The payload array resolves to the same node, so a later
        # ``Tensor(t.data)`` or external call consuming it stays wired.
        self._array_nodes[id(tensor.data)] = node
        self._keepalive.append(tensor.data)

    def register_array(self, array: np.ndarray, node: Node) -> None:
        self._array_nodes[id(array)] = node
        self._keepalive.append(array)

    def node_for(self, value: Any) -> Optional[Node]:
        """Node producing ``value``; untracked tensors/arrays become constants."""
        if isinstance(value, Tensor):
            node = self._tensor_nodes.get(id(value))
            if node is None:
                node = self.graph.add_constant(value.data, name=value.name or "const")
                self.register_tensor(value, node)
            return node
        if isinstance(value, np.ndarray):
            node = self._array_nodes.get(id(value))
            if node is None:
                node = self.graph.add_constant(value, name="const")
                self.register_array(value, node)
            return node
        return None

    def _template(self, value: Any, inputs: List[Node]) -> Any:
        """Replace tensors/arrays with :class:`Slot` markers, recursively."""
        if isinstance(value, (Tensor, np.ndarray)):
            node = self.node_for(value)
            inputs.append(node)
            return Slot(len(inputs) - 1)
        if isinstance(value, (list, tuple)):
            items = [self._template(item, inputs) for item in value]
            return items if isinstance(value, list) else tuple(items)
        return value

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record_call(self, kind: str, attr: str, label: str,
                     args: Sequence[Any], kwargs: Dict[str, Any], out: Any) -> None:
        inputs: List[Node] = []
        arg_template = tuple(self._template(a, inputs) for a in args)
        kw_template = {k: self._template(v, inputs) for k, v in kwargs.items()}
        attrs = {"kind": kind, "attr": attr, "args": arg_template, "kwargs": kw_template}
        if isinstance(out, Tensor):
            node = self.graph.add_node(label, inputs, attrs, value=out.data, name=label)
            self.register_tensor(out, node)
        else:
            raise TraceError(f"traced op {label!r} returned non-Tensor {type(out)!r}")

    def _record_external(self, label: str, fn: Callable,
                         args: Sequence[Any], kwargs: Dict[str, Any], out: Any) -> None:
        inputs: List[Node] = []
        arg_template = tuple(self._template(a, inputs) for a in args)
        kw_template = {k: self._template(v, inputs) for k, v in kwargs.items()}
        attrs = {
            "kind": "external", "fn": fn,
            "args": arg_template, "kwargs": kw_template,
        }
        node = self.graph.add_node("external", inputs, attrs, value=out, name=label)
        if isinstance(out, np.ndarray):
            node.set_value(out)
            self.register_array(out, node)
        elif isinstance(out, tuple):
            for index, element in enumerate(out):
                if not isinstance(element, np.ndarray):
                    continue
                getter = self.graph.add_node(
                    "tuple_get", [node], {"kind": "tuple_get", "index": index},
                    value=element, name=f"{label}[{index}]",
                )
                self.register_array(element, getter)
        else:
            raise TraceError(f"external {label!r} returned unsupported {type(out)!r}")

    # ------------------------------------------------------------------
    # Wrappers
    # ------------------------------------------------------------------
    def _wrap_method(self, attr: str, label: str, original: Callable) -> Callable:
        tracer = self
        coerce_other = attr in _BINARY_METHODS

        def wrapped(self_t, *args, **kwargs):
            if getattr(_tls, "busy", False) or threading.get_ident() != tracer._thread:
                return original(self_t, *args, **kwargs)
            if coerce_other and args:
                args = (as_tensor(args[0]),) + args[1:]
            _tls.busy = True
            try:
                out = original(self_t, *args, **kwargs)
            finally:
                _tls.busy = False
            tracer._record_call("method", attr, label, (self_t,) + args, kwargs, out)
            return out

        wrapped.__name__ = getattr(original, "__name__", attr)
        wrapped._graph_original = original
        return wrapped

    def _wrap_function(self, label: str, original: Callable) -> Callable:
        tracer = self

        def wrapped(*args, **kwargs):
            if getattr(_tls, "busy", False) or threading.get_ident() != tracer._thread:
                return original(*args, **kwargs)
            _tls.busy = True
            try:
                out = original(*args, **kwargs)
            finally:
                _tls.busy = False
            tracer._record_call("function", label, label, args, kwargs, out)
            return out

        wrapped.__name__ = getattr(original, "__name__", label)
        wrapped._graph_original = original
        return wrapped

    def _wrap_external(self, label: str, original: Callable) -> Callable:
        tracer = self

        def wrapped(*args, **kwargs):
            if getattr(_tls, "busy", False) or threading.get_ident() != tracer._thread:
                return original(*args, **kwargs)
            _tls.busy = True
            try:
                out = original(*args, **kwargs)
            finally:
                _tls.busy = False
            tracer._record_external(label, original, args, kwargs, out)
            return out

        wrapped.__name__ = getattr(original, "__name__", label)
        wrapped._graph_original = original
        return wrapped

    def _make_init_hook(self, original_init: Callable) -> Callable:
        tracer = self

        def traced_init(tensor_self, data, requires_grad=False, name=""):
            original_init(tensor_self, data, requires_grad, name)
            if getattr(_tls, "busy", False) or threading.get_ident() != tracer._thread:
                return
            source = data.data if isinstance(data, Tensor) else data
            if not isinstance(source, np.ndarray):
                return
            node = tracer._array_nodes.get(id(source))
            if node is None:
                return
            if tensor_self.data is source:
                # Adopted as-is: the new tensor aliases the node's value.
                tracer._tensor_nodes[id(tensor_self)] = node
                tracer._keepalive.append(tensor_self)
            else:
                # __init__ copied (dtype cast): record it so the compiled
                # plan reproduces the cast under the dtype active at run
                # time, exactly as eager construction would.
                cast = tracer.graph.add_node(
                    "cast", [node], {"kind": "cast"},
                    value=tensor_self.data, name="cast",
                )
                tracer.register_tensor(tensor_self, cast)

        return traced_init

    # ------------------------------------------------------------------
    # Patch installation (mirrors repro.obs.profiler)
    # ------------------------------------------------------------------
    def _install(self) -> None:
        from repro.obs.profiler import _FUNCTION_OPS, _TENSOR_METHODS

        for attr, label in _TENSOR_METHODS.items():
            original = getattr(Tensor, attr)
            setattr(Tensor, attr, self._wrap_method(attr, label, original))
            self._patched_methods.append((attr, original))

        # Free functions: patch the defining module and every module that
        # froze a direct binding via ``from repro.autograd import conv2d``.
        originals = {
            label: getattr(module, label) for label, module in _FUNCTION_OPS.items()
        }
        wrappers = {
            label: self._wrap_function(label, fn) for label, fn in originals.items()
        }
        for module in list(sys.modules.values()):
            if module is None or not getattr(module, "__name__", "").startswith("repro"):
                continue
            for label, fn in originals.items():
                if getattr(module, label, None) is fn:
                    setattr(module, label, wrappers[label])
                    self._patched_modules.append((module, label, fn))

        for module_name, attr, label in _EXTERNAL_FUNCTIONS:
            module = importlib.import_module(module_name)
            original = getattr(module, attr)
            setattr(module, attr, self._wrap_external(label, original))
            self._patched_modules.append((module, attr, original))

        self._patched_init = Tensor.__init__
        Tensor.__init__ = self._make_init_hook(self._patched_init)

    def _uninstall(self) -> None:
        if self._patched_init is not None:
            Tensor.__init__ = self._patched_init
            self._patched_init = None
        for module, attr, original in self._patched_modules:
            setattr(module, attr, original)
        self._patched_modules = []
        for attr, original in self._patched_methods:
            setattr(Tensor, attr, original)
        self._patched_methods = []


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
class TracedGraph:
    """A captured forward pass: graph + argument binding + output pytree."""

    def __init__(self, graph: Graph, out_spec: Tuple,
                 input_binding: List[Tuple[str, Any]], fn_name: str):
        self.graph = graph
        self.out_spec = out_spec
        #: Per positional argument: ("array", input_index) when the
        #: argument was lifted to a graph input, ("literal", value)
        #: when it was baked into the trace (ints, None masks, flags).
        self.input_binding = input_binding
        self.fn_name = fn_name

    def bind(self, args: Sequence[Any]) -> List[np.ndarray]:
        """Map call arguments onto the graph's input nodes, in order."""
        if len(args) != len(self.input_binding):
            raise TraceError(
                f"{self.fn_name} traced with {len(self.input_binding)} args, "
                f"called with {len(args)}"
            )
        arrays: List[np.ndarray] = [None] * len(self.graph.inputs)  # type: ignore
        for value, (kind, ref) in zip(args, self.input_binding):
            if kind != "array":
                continue
            data = value.data if isinstance(value, Tensor) else np.asarray(value)
            arrays[ref] = data
        return arrays

    def unflatten(self, leaves: Sequence[Any]) -> Any:
        return tree_unflatten(self.out_spec, iter(leaves))

    def __repr__(self) -> str:
        return f"TracedGraph({self.fn_name}: {self.graph.summary()})"


def trace(fn: Callable, *args: Any, name: str = "") -> TracedGraph:
    """Run ``fn(*args)`` once under the tracer and return its graph.

    Runs under ``no_grad`` (plans are inference-only) and suspends an
    active op-level profiler for the duration of the call.  Tensor and
    ndarray positional arguments become graph inputs; every other
    argument is baked into the trace as a literal.
    """
    from repro.obs.profiler import get_active_profiler

    global _active_tracer
    fn_name = name or getattr(fn, "__qualname__", getattr(fn, "__name__", "fn"))
    with _trace_lock:
        if _active_tracer is not None:
            raise TraceError("a trace is already in progress")
        tracer = Tracer(fn_name)
        _active_tracer = tracer
        profiler = get_active_profiler()
        try:
            with no_grad():
                input_binding: List[Tuple[str, Any]] = []
                for position, arg in enumerate(args):
                    if isinstance(arg, Tensor):
                        node = tracer.graph.add_input(f"arg{position}", arg.data)
                        tracer.register_tensor(arg, node)
                        input_binding.append(("array", len(tracer.graph.inputs) - 1))
                    elif isinstance(arg, np.ndarray):
                        node = tracer.graph.add_input(f"arg{position}", arg)
                        tracer.register_array(arg, node)
                        input_binding.append(("array", len(tracer.graph.inputs) - 1))
                    else:
                        input_binding.append(("literal", arg))
                if profiler is not None:
                    profiler._uninstall_patches()
                try:
                    tracer._install()
                    try:
                        out = fn(*args)
                    finally:
                        tracer._uninstall()
                finally:
                    if profiler is not None:
                        profiler._install_patches()
        finally:
            _active_tracer = None

    leaves, spec = tree_flatten(out)
    if not leaves:
        raise TraceError(f"{fn_name} returned no tensor outputs")
    tracer.graph.outputs = [tracer.node_for(leaf) for leaf in leaves]
    return TracedGraph(tracer.graph, spec, input_binding, fn_name)
