"""Traced inference graphs: IR, optimisation passes, planned execution.

This subsystem turns one eager forward pass of a model built on
:mod:`repro.autograd` into a static plan that replays the same numpy
arithmetic without rebuilding the dynamic tape:

- :mod:`repro.graph.ir` — the graph IR: :class:`Node` (input / constant
  / op) and :class:`Graph` (nodes in execution order, explicit tensor
  edges).
- :mod:`repro.graph.trace` — :func:`trace` runs a function once under a
  tracing context layered on the autograd op tables and records every
  primitive op, external numpy helper, and constant it touches.
- :mod:`repro.graph.passes` — dead-node elimination, constant folding of
  weight subgraphs, BatchNorm folding (running-stats buffers collapse
  into one ``bn_affine`` node), and conv/bias/BN/ReLU epilogue fusion.
- :mod:`repro.graph.executor` — :class:`ExecutionPlan` (topologically
  scheduled kernels, buffer-liveness analysis, a persistent arena
  allocator that reuses output buffers, build-time kernel validation
  against the traced values) and :class:`PlanCache` (plans keyed on
  input shapes, so dynamic serving batches compile once per shape).

Bit-exactness is the contract: every kernel replicates the eager numpy
arithmetic operation for operation, and plan construction verifies each
kernel's output bitwise against the traced value, falling back to eager
replay for any node that disagrees.

Quickstart::

    model.eval().compile()                    # YolloModel
    predictions = model.predict(images, ids)  # plans build lazily per shape

    from repro.graph import trace, optimize_graph, ExecutionPlan
    traced = trace(fn, x)                     # any Tensor function
    optimize_graph(traced.graph)
    plan = ExecutionPlan(traced)
    y = plan.run(x.data)
"""

from repro.graph.ir import Graph, Node
from repro.graph.trace import TracedGraph, TraceError, trace
from repro.graph.passes import (
    eliminate_dead_nodes,
    fold_batchnorm,
    fold_constants,
    fuse_epilogues,
    optimize_graph,
)
from repro.graph.executor import ExecutionPlan, PlanCache

__all__ = [
    "Graph",
    "Node",
    "TracedGraph",
    "TraceError",
    "trace",
    "eliminate_dead_nodes",
    "fold_batchnorm",
    "fold_constants",
    "fuse_epilogues",
    "optimize_graph",
    "ExecutionPlan",
    "PlanCache",
]
