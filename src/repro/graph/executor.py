"""Planned execution of traced graphs: kernels, arena, plan cache.

An :class:`ExecutionPlan` compiles a :class:`~repro.graph.trace.TracedGraph`
into a flat list of kernel closures over a slot table.  Three properties
drive the design:

**Bit-exactness.**  Every kernel replicates the eager numpy arithmetic
operation-for-operation (``sub`` is IEEE-identical to ``add(neg)``,
``mean`` divides by the same ``float(count)`` scalar tensor, ``softmax``
repeats the shift/exp/sum sequence).  Plan construction *proves* this:
each kernel is executed once on the traced input values and its output
compared bitwise (shape, dtype, bytes) against the value the eager pass
produced.  Any kernel that disagrees — or raises — is replaced by a
generic eager-replay fallback reconstructed from the node's recorded
call template, so a plan can never silently drift from eager semantics.

**Allocation reuse.**  Buffer liveness analysis (aliases such as
``reshape``/``transpose`` extend their base buffer's lifetime) feeds a
persistent arena: output buffers are allocated once at build time,
pooled by ``(dtype, element count)``, and handed to later nodes as
earlier values die.  A node's inputs are released only *after* its own
output buffer is acquired, so a kernel never reads and writes the same
storage.  Convolutions additionally carry private pad/column scratch
buffers and are autotuned at build time between the memoised im2col
path and a ``sliding_window_view`` contraction (bitwise-identical,
shape-dependent winners).

**Observability.**  When an op-level profiler is active, each kernel
execution is recorded via :meth:`Profiler.record_op` under the node's
(possibly fused) name — ``conv2d+bn+relu`` shows up as one op — and the
whole replay runs inside a ``graph.execute`` trace span.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.autograd.functional import _im2col, _pair
from repro.autograd.tensor import Tensor, no_grad
from repro.graph.ir import Graph, Node, Slot
from repro.graph.trace import TracedGraph
from repro.obs import trace_span

#: Ops whose kernels write into pooled arena buffers via ``out=``.
_POOLED_OPS = frozenset({
    "add", "sub", "neg", "mul", "div", "pow", "maximum", "where",
    "exp", "log", "tanh", "sigmoid", "relu", "abs", "clip",
    "matmul", "concatenate", "softmax", "log_softmax",
    "bn_affine", "conv2d", "max_pool2d",
})

#: Ops whose output is a view of their (base) input buffer.
_VIEW_OPS = frozenset({"reshape", "transpose", "tuple_get"})


def _is_basic_index(index: Any) -> bool:
    """Whether ``x[index]`` is guaranteed to return a numpy view."""
    if isinstance(index, tuple):
        return all(_is_basic_index(item) for item in index)
    return index is None or index is Ellipsis or isinstance(index, (int, slice))


def _template_has_slot(template: Any) -> bool:
    if isinstance(template, Slot):
        return True
    if isinstance(template, (list, tuple)):
        return any(_template_has_slot(item) for item in template)
    return False


def _substitute(template: Any, values: Sequence[Any]) -> Any:
    """Fill :class:`Slot` markers in a call template with runtime values."""
    if isinstance(template, Slot):
        return values[template.index]
    if isinstance(template, (list, tuple)):
        items = [_substitute(item, values) for item in template]
        return items if isinstance(template, list) else tuple(items)
    return template


def _literal(args: Tuple, kwargs: Dict, position: int, name: str, default: Any) -> Any:
    """Extract a non-tensor call parameter from a recorded template."""
    if len(args) > position and not isinstance(args[position], Slot):
        return args[position]
    return kwargs.get(name, default)


def _bitwise_equal(a: Any, b: Any) -> bool:
    if not isinstance(a, np.ndarray) or not isinstance(b, np.ndarray):
        return False
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    return np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()


class CompileError(RuntimeError):
    """Raised when a traced graph cannot be planned."""


class _Arena:
    """Build-time buffer pool: flat arrays keyed by (dtype, element count)."""

    def __init__(self):
        self._free: Dict[Tuple[str, int], List[np.ndarray]] = {}
        self.allocated_bytes = 0
        self.buffer_count = 0
        self.reuse_count = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> Tuple[np.ndarray, Tuple[str, int], np.ndarray]:
        size = int(np.prod(shape)) if shape else 1
        key = (str(dtype), size)
        free = self._free.get(key)
        if free:
            flat = free.pop()
            self.reuse_count += 1
        else:
            flat = np.empty(size, dtype=dtype)
            self.allocated_bytes += int(flat.nbytes)
            self.buffer_count += 1
        return flat.reshape(shape), key, flat

    def release(self, key: Tuple[str, int], flat: np.ndarray) -> None:
        self._free.setdefault(key, []).append(flat)


class ExecutionPlan:
    """A compiled, replayable forward pass for one input signature."""

    def __init__(self, traced: TracedGraph):
        self.traced = traced
        self.graph: Graph = traced.graph
        self.fallbacks = 0
        self.autotune: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._build()

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        self._slot_of: Dict[int, int] = {node.id: i for i, node in enumerate(graph.nodes)}
        self._slots: List[Any] = [None] * len(graph.nodes)
        self._input_slots = [self._slot_of[node.id] for node in graph.inputs]
        self._input_examples = [
            (tuple(node.shape or ()), node.dtype) for node in graph.inputs
        ]
        self._output_slots = [self._slot_of[node.id] for node in graph.outputs]

        for node in graph.nodes:
            if node.is_constant:
                self._slots[self._slot_of[node.id]] = node.value

        schedule = [n for n in graph.nodes if not (n.is_input or n.is_constant)]
        base = self._alias_bases(graph)
        last_use = self._liveness(graph, schedule, base)

        arena = _Arena()
        owned: Dict[int, Tuple[Tuple[str, int], np.ndarray]] = {}
        steps: List[Tuple[int, Callable[[], np.ndarray], Node]] = []
        for position, node in enumerate(schedule):
            out_buf = None
            if node.op in _POOLED_OPS and node.shape is not None:
                out_buf, key, flat = arena.acquire(node.shape, node.dtype)
                owned[node.id] = (key, flat)
            # Free inputs only after this node's buffer exists: a kernel
            # must never be handed its own operand's storage as output.
            for src_base in {base[src.id] for src in node.inputs}:
                if last_use.get(src_base) == position and src_base in owned:
                    key, flat = owned.pop(src_base)
                    arena.release(key, flat)
            kernel = self._build_kernel(node, out_buf)
            steps.append((self._slot_of[node.id], node, kernel))
        self.arena_bytes = arena.allocated_bytes
        self.arena_buffers = arena.buffer_count
        self.arena_reuses = arena.reuse_count

        self._validate(steps)
        self._steps = [
            (slot, kernel, node.name, node.shape, node.nbytes if node.value is not None else 0)
            for slot, node, kernel in steps
        ]
        # Traced activation values are no longer needed; keep constants.
        for node in schedule:
            node.value = None
        self.num_kernels = len(self._steps)

    def _alias_bases(self, graph: Graph) -> Dict[int, int]:
        base: Dict[int, int] = {}
        for node in graph.nodes:
            if node.inputs and self._is_alias(node):
                base[node.id] = base.get(node.inputs[0].id, node.inputs[0].id)
            else:
                base[node.id] = node.id
        return base

    @staticmethod
    def _is_alias(node: Node) -> bool:
        if node.op in _VIEW_OPS:
            return True
        if node.op == "index":
            args = node.attrs.get("args", ())
            index = args[1] if len(args) > 1 else None
            return _is_basic_index(index)
        if node.op == "cast":
            src = node.inputs[0]
            return node.dtype is not None and node.dtype == src.dtype
        return False

    def _liveness(self, graph: Graph, schedule: List[Node],
                  base: Dict[int, int]) -> Dict[int, float]:
        last_use: Dict[int, float] = {}
        for position, node in enumerate(schedule):
            for src in node.inputs:
                last_use[base[src.id]] = position
        for node in graph.outputs:
            last_use[base[node.id]] = float("inf")
        return last_use

    def _validate(self, steps: List[Tuple[int, Node, Callable]]) -> None:
        """Run every kernel on the traced values; fall back on mismatch.

        After each comparison the slot is reset to the traced value, so
        downstream kernels always validate against pristine eager inputs.
        """
        slots = self._slots
        for input_node in self.graph.inputs:
            slots[self._slot_of[input_node.id]] = input_node.value
        for index, (slot, node, kernel) in enumerate(steps):
            try:
                produced = kernel()
                ok = (
                    _bitwise_equal(produced, node.value)
                    if isinstance(node.value, np.ndarray)
                    else True  # tuple-valued externals checked via tuple_get
                )
            except Exception:
                ok = False
            if not ok:
                fallback = self._build_generic_kernel(node)
                steps[index] = (slot, node, fallback)
                self.fallbacks += 1
            slots[slot] = node.value

    # ------------------------------------------------------------------
    # Kernel construction
    # ------------------------------------------------------------------
    def _build_kernel(self, node: Node, out: Optional[np.ndarray]) -> Callable[[], Any]:
        slots = self._slots
        in_slots = [self._slot_of[src.id] for src in node.inputs]
        args = node.attrs.get("args", ())
        kwargs = node.attrs.get("kwargs", {})
        op = node.op

        if op == "conv2d":
            return self._build_conv_kernel(node, out)

        if op in ("add", "sub", "mul", "div", "maximum"):
            ufunc = {
                "add": np.add, "sub": np.subtract, "mul": np.multiply,
                "div": np.true_divide, "maximum": np.maximum,
            }[op]
            ia, ib = in_slots[0], in_slots[1]
            epilogue = node.attrs.get("epilogue")
            if epilogue:  # fused add+relu (residual shortcut)
                def kernel_fused():
                    ufunc(slots[ia], slots[ib], out=out)
                    np.multiply(out, out > 0, out=out)
                    return out
                return kernel_fused

            def kernel_binary():
                return ufunc(slots[ia], slots[ib], out=out)
            return kernel_binary

        if op in ("neg", "exp", "log", "tanh", "abs"):
            ufunc = {
                "neg": np.negative, "exp": np.exp, "log": np.log,
                "tanh": np.tanh, "abs": np.abs,
            }[op]
            ia = in_slots[0]

            def kernel_unary():
                return ufunc(slots[ia], out=out)
            return kernel_unary

        if op == "relu":
            ia = in_slots[0]

            def kernel_relu():
                a = slots[ia]
                return np.multiply(a, a > 0, out=out)
            return kernel_relu

        if op == "sigmoid":
            ia = in_slots[0]

            def kernel_sigmoid():
                np.negative(slots[ia], out=out)
                np.exp(out, out=out)
                np.add(out, 1.0, out=out)
                np.true_divide(1.0, out, out=out)
                return out
            return kernel_sigmoid

        if op == "leaky_relu":
            ia = in_slots[0]
            slope = _literal(args, kwargs, 1, "negative_slope", 0.01)

            def kernel_leaky():
                a = slots[ia]
                return a * np.where(a > 0, 1.0, slope)
            return kernel_leaky

        if op == "pow":
            ia = in_slots[0]
            exponent = _literal(args, kwargs, 1, "exponent", None)

            def kernel_pow():
                return np.power(slots[ia], exponent, out=out)
            return kernel_pow

        if op == "clip":
            ia = in_slots[0]
            low = _literal(args, kwargs, 1, "low", None)
            high = _literal(args, kwargs, 2, "high", None)

            def kernel_clip():
                return np.clip(slots[ia], low, high, out=out)
            return kernel_clip

        if op == "where":
            ic, ia, ib = in_slots[0], in_slots[1], in_slots[2]

            def kernel_where():
                condition = np.asarray(slots[ic], dtype=bool)
                result = np.where(condition, slots[ia], slots[ib])
                np.copyto(out, result)
                return out
            return kernel_where

        if op == "matmul":
            ia, ib = in_slots[0], in_slots[1]

            def kernel_matmul():
                return np.matmul(slots[ia], slots[ib], out=out)
            return kernel_matmul

        if op == "concatenate":
            axis = _literal(args, kwargs, 1, "axis", 0)

            def kernel_concat():
                return np.concatenate([slots[i] for i in in_slots], axis=axis, out=out)
            return kernel_concat

        if op == "stack":
            axis = _literal(args, kwargs, 1, "axis", 0)

            def kernel_stack():
                return np.stack([slots[i] for i in in_slots], axis=axis)
            return kernel_stack

        if op in ("softmax", "log_softmax"):
            ia = in_slots[0]
            axis = _literal(args, kwargs, 1, "axis", -1)
            if op == "softmax":
                def kernel_softmax():
                    x = slots[ia]
                    np.subtract(x, x.max(axis=axis, keepdims=True), out=out)
                    np.exp(out, out=out)
                    np.true_divide(out, out.sum(axis=axis, keepdims=True), out=out)
                    return out
                return kernel_softmax

            def kernel_log_softmax():
                x = slots[ia]
                np.subtract(x, x.max(axis=axis, keepdims=True), out=out)
                log_sum = np.log(np.exp(out).sum(axis=axis, keepdims=True))
                np.subtract(out, log_sum, out=out)
                return out
            return kernel_log_softmax

        if op in ("sum", "max"):
            ia = in_slots[0]
            axis = _literal(args, kwargs, 1, "axis", None)
            keepdims = _literal(args, kwargs, 2, "keepdims", False)
            reducer = "sum" if op == "sum" else "max"

            def kernel_reduce():
                return getattr(slots[ia], reducer)(axis=axis, keepdims=keepdims)
            return kernel_reduce

        if op in ("mean", "var"):
            return self._build_mean_var_kernel(node, in_slots, args, kwargs)

        if op == "bn_affine":
            ix = in_slots[0]
            mean, denom, scale, shift = (node.inputs[i].value for i in range(1, 5))

            def kernel_bn():
                np.subtract(slots[ix], mean, out=out)
                np.true_divide(out, denom, out=out)
                np.multiply(out, scale, out=out)
                np.add(out, shift, out=out)
                return out
            return kernel_bn

        if op == "reshape":
            ia = in_slots[0]
            shape = args[1:] if len(args) > 1 else (kwargs.get("shape"),)
            if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
                shape = tuple(shape[0])

            def kernel_reshape():
                return slots[ia].reshape(shape)
            return kernel_reshape

        if op == "transpose":
            ia = in_slots[0]
            axes = args[1:]
            ndim = len(node.inputs[0].shape or ())
            if not axes:
                axes = tuple(reversed(range(ndim)))
            elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
                axes = tuple(axes[0])

            def kernel_transpose():
                return slots[ia].transpose(axes)
            return kernel_transpose

        if op == "index":
            ia = in_slots[0]
            index = args[1] if len(args) > 1 else None
            if _template_has_slot(index):
                return self._build_generic_kernel(node)

            def kernel_index():
                return slots[ia][index]
            return kernel_index

        if op == "tuple_get":
            ia = in_slots[0]
            position = node.attrs["index"]

            def kernel_tuple_get():
                return slots[ia][position]
            return kernel_tuple_get

        if op == "cast":
            ia = in_slots[0]

            def kernel_cast():
                from repro.autograd.tensor import DEFAULT_DTYPE
                array = np.asarray(slots[ia])
                if array.dtype.kind == "f" and array.dtype != DEFAULT_DTYPE:
                    array = array.astype(DEFAULT_DTYPE)
                return array
            return kernel_cast

        if op == "embedding_lookup":
            iw, ii = in_slots[0], in_slots[1]

            def kernel_embedding():
                return slots[iw][np.asarray(slots[ii], dtype=np.int64)]
            return kernel_embedding

        if op == "pad2d":
            return self._build_pad_kernel(node, in_slots, args, kwargs)

        if op in ("max_pool2d", "avg_pool2d"):
            return self._build_pool_kernel(node, in_slots, args, kwargs, out)

        if op == "external":
            fn = node.attrs["fn"]
            arg_t, kw_t = node.attrs.get("args", ()), node.attrs.get("kwargs", {})

            def kernel_external():
                values = [slots[i] for i in in_slots]
                call_args = _substitute(arg_t, values)
                call_kwargs = {k: _substitute(v, values) for k, v in kw_t.items()}
                return fn(*call_args, **call_kwargs)
            return kernel_external

        return self._build_generic_kernel(node)

    def _build_mean_var_kernel(self, node: Node, in_slots: List[int],
                               args: Tuple, kwargs: Dict) -> Callable[[], np.ndarray]:
        slots = self._slots
        ia = in_slots[0]
        axis = _literal(args, kwargs, 1, "axis", None)
        keepdims = _literal(args, kwargs, 2, "keepdims", False)
        in_shape = node.inputs[0].shape or ()
        if axis is None:
            count = int(np.prod(in_shape)) if in_shape else 1
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([in_shape[ax] for ax in axes]))
        # Eager mean divides by ``Tensor(float(count))``; replicate its
        # payload (0-d array in the active dtype) for bit-exact division.
        divisor = np.asarray(float(count))
        if node.dtype is not None and divisor.dtype != node.dtype:
            divisor = divisor.astype(node.dtype)

        if node.op == "mean":
            def kernel_mean():
                return slots[ia].sum(axis=axis, keepdims=keepdims) / divisor
            return kernel_mean

        def kernel_var():
            x = slots[ia]
            mean = x.sum(axis=axis, keepdims=True) / divisor
            centered = x + np.negative(mean)
            squared = centered * centered
            return squared.sum(axis=axis, keepdims=keepdims) / divisor
        return kernel_var

    def _build_pad_kernel(self, node: Node, in_slots: List[int],
                          args: Tuple, kwargs: Dict) -> Callable[[], np.ndarray]:
        slots = self._slots
        ia = in_slots[0]
        ph, pw = _pair(_literal(args, kwargs, 1, "padding", 0))
        in_shape = node.inputs[0].shape
        buffer = np.zeros(node.shape, dtype=node.dtype)
        h, w = in_shape[2], in_shape[3]

        def kernel_pad():
            buffer[:, :, ph:ph + h, pw:pw + w] = slots[ia]
            return buffer
        return kernel_pad

    def _build_pool_kernel(self, node: Node, in_slots: List[int],
                           args: Tuple, kwargs: Dict,
                           out: Optional[np.ndarray]) -> Callable[[], np.ndarray]:
        slots = self._slots
        ia = in_slots[0]
        kernel_size = _pair(_literal(args, kwargs, 1, "kernel", None))
        stride_arg = _literal(args, kwargs, 2, "stride", None)
        stride = kernel_size if stride_arg is None else _pair(stride_arg)
        n, c, h, w = node.inputs[0].shape
        kh, kw = kernel_size
        sh, sw = stride
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1

        if node.op == "max_pool2d":
            # Inference needs the max values only, not argmax indices.  A
            # running first-max-wins comparison over the kernel offsets
            # (flat row-major order) replicates eager's
            # ``take_along_axis(argmax)`` exactly: strict ``>`` keeps the
            # earliest window on ties, which is argmax's tie rule.  (The
            # one divergence is NaN activations, where argmax treats NaN
            # as the maximum; build-time validation covers the traced
            # batch and NaN activations mean the model is already broken.)
            offsets = [(i, j) for i in range(kh) for j in range(kw)]
            mask_buf = np.empty((n, c, oh, ow), dtype=bool)
            # Producers may hand us a transposed view (the conv kernels'
            # "view" variants); one contiguising copy beats kh*kw strided
            # traversals and changes no values.
            contig_buf = np.empty((n, c, h, w), dtype=node.inputs[0].dtype)

            def kernel_max_pool():
                x = slots[ia]
                if not x.flags.c_contiguous:
                    np.copyto(contig_buf, x)
                    x = contig_buf
                i0, j0 = offsets[0]
                np.copyto(out, x[:, :, i0:i0 + sh * oh:sh, j0:j0 + sw * ow:sw])
                for i, j in offsets[1:]:
                    window = x[:, :, i:i + sh * oh:sh, j:j + sw * ow:sw]
                    np.greater(window, out, out=mask_buf)
                    np.copyto(out, window, where=mask_buf)
                return out
            return kernel_max_pool

        cols_buf = np.empty((n, c, kh, kw, oh, ow), dtype=node.inputs[0].dtype)

        def kernel_avg_pool():
            cols = _im2col(slots[ia], kernel_size, stride, out=cols_buf)
            return cols.mean(axis=(2, 3))
        return kernel_avg_pool

    # -- convolution ----------------------------------------------------
    def _build_conv_kernel(self, node: Node, out: np.ndarray) -> Callable[[], np.ndarray]:
        slots = self._slots
        args = node.attrs.get("args", ())
        kwargs = node.attrs.get("kwargs", {})
        x_node, w_node = node.inputs[0], node.inputs[1]
        if not w_node.is_constant:
            return self._build_generic_kernel(node)
        ix = self._slot_of[x_node.id]
        weight = w_node.value
        stride = _pair(_literal(args, kwargs, 3, "stride", 1))
        ph, pw = _pair(_literal(args, kwargs, 4, "padding", 0))
        bias_slot = args[2] if len(args) > 2 else kwargs.get("bias")
        bias = None
        if isinstance(bias_slot, Slot):
            bias_node = node.inputs[bias_slot.index]
            if not bias_node.is_constant:
                return self._build_generic_kernel(node)
            bias = bias_node.value

        epilogue = self._build_nhwc_epilogue(node, bias)
        n, c, h, w = x_node.shape
        kh, kw = weight.shape[2], weight.shape[3]
        hp, wp = h + 2 * ph, w + 2 * pw
        sh, sw = stride
        oh = (hp - kh) // sh + 1
        ow = (wp - kw) // sw + 1

        pad_buf = np.zeros((n, c, hp, wp), dtype=x_node.dtype) if (ph or pw) else None
        cols_buf = np.empty((n, c, kh, kw, oh, ow), dtype=x_node.dtype)
        # Unpadded convs (1x1 heads) may receive transposed views from a
        # "view"-variant producer; gather paths want contiguous input.
        contig_buf = None if pad_buf is not None else np.empty(
            (n, c, h, w), dtype=x_node.dtype
        )

        def padded() -> np.ndarray:
            x = slots[ix]
            if pad_buf is None:
                if x.flags.c_contiguous:
                    return x
                np.copyto(contig_buf, x)
                return contig_buf
            pad_buf[:, :, ph:ph + h, pw:pw + w] = x
            return pad_buf

        def conv_im2col() -> np.ndarray:
            cols = _im2col(padded(), (kh, kw), stride, out=cols_buf)
            tmp = np.tensordot(cols, weight, axes=([1, 2, 3], [1, 2, 3]))
            epilogue(tmp)
            np.copyto(out, tmp.transpose(0, 3, 1, 2))
            return out

        def conv_swv() -> np.ndarray:
            view = sliding_window_view(padded(), (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
            tmp = np.tensordot(view, weight, axes=([1, 4, 5], [1, 2, 3]))
            epilogue(tmp)
            np.copyto(out, tmp.transpose(0, 3, 1, 2))
            return out

        # "view" variants skip the NCHW materialisation: the contraction
        # output is fresh memory each call, so handing consumers a
        # transposed view is safe, and every downstream kernel is either
        # elementwise, a copying pad/gather, or a BLAS call that
        # contiguises its operands — all layout-independent bitwise.
        def conv_im2col_view() -> np.ndarray:
            cols = _im2col(padded(), (kh, kw), stride, out=cols_buf)
            tmp = np.tensordot(cols, weight, axes=([1, 2, 3], [1, 2, 3]))
            epilogue(tmp)
            return tmp.transpose(0, 3, 1, 2)

        def conv_swv_view() -> np.ndarray:
            view = sliding_window_view(padded(), (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
            tmp = np.tensordot(view, weight, axes=([1, 4, 5], [1, 2, 3]))
            epilogue(tmp)
            return tmp.transpose(0, 3, 1, 2)

        # "gemm" gathers straight into the (N*OH*OW, C*KH*KW) layout the
        # contraction wants, so np.dot runs with zero internal copies —
        # tensordot would first transpose-copy the (N,C,KH,KW,OH,OW)
        # columns.  The 2-D operands are bitwise identical to
        # tensordot's, hence so is the product.
        f = weight.shape[0]
        contraction = c * kh * kw
        c_off = (np.arange(c) * hp * wp)[None, None, :, None, None]
        row_off = (
            (sh * np.arange(oh))[:, None, None, None, None]
            + np.arange(kh)[None, None, None, :, None]
        ) * wp
        col_off = (
            (sw * np.arange(ow))[None, :, None, None, None]
            + np.arange(kw)[None, None, None, None, :]
        )
        gemm_index = (c_off + row_off + col_off).reshape(-1)
        weight_t = np.ascontiguousarray(
            weight.reshape(f, contraction).T
        )
        gemm_cols = np.empty((n, gemm_index.size), dtype=x_node.dtype)
        gemm_out = np.empty((n * oh * ow, f), dtype=node.dtype)

        def conv_gemm() -> np.ndarray:
            flat = padded().reshape(n, c * hp * wp)
            np.take(flat, gemm_index, axis=1, out=gemm_cols)
            a = gemm_cols.reshape(n * oh * ow, contraction)
            np.dot(a, weight_t, out=gemm_out)
            tmp = gemm_out.reshape(n, oh, ow, f)
            epilogue(tmp)
            return tmp.transpose(0, 3, 1, 2)

        kernel = self._autotune_conv(
            node,
            ("im2col", conv_im2col),
            ("swv", conv_swv),
            ("im2col-view", conv_im2col_view),
            ("swv-view", conv_swv_view),
            ("gemm", conv_gemm),
        )
        return kernel

    def _build_nhwc_epilogue(self, node: Node, bias: Optional[np.ndarray]) -> Callable:
        """In-place epilogue on the (N, OH, OW, F) contraction output.

        Bias, folded BN, and ReLU are elementwise along the channel axis,
        so applying them channels-last before the single NCHW copy gives
        bitwise-identical values to the eager NCHW sequence while saving
        one full-tensor allocation per fused op.
        """
        steps: List[Callable[[np.ndarray], None]] = []
        if bias is not None:
            bias_last = bias.reshape(-1)
            steps.append(lambda t: np.add(t, bias_last, out=t))
        for step in node.attrs.get("epilogue", ()):
            if step["op"] == "bn_affine":
                mean, denom, scale, shift = (
                    node.inputs[i].value.reshape(-1) for i in step["slots"]
                )

                def bn_step(t, m=mean, d=denom, s=scale, b=shift):
                    np.subtract(t, m, out=t)
                    np.true_divide(t, d, out=t)
                    np.multiply(t, s, out=t)
                    np.add(t, b, out=t)
                steps.append(bn_step)
            elif step["op"] == "relu":
                steps.append(lambda t: np.multiply(t, t > 0, out=t))

        def apply(tmp: np.ndarray) -> None:
            for fn in steps:
                fn(tmp)
        return apply

    def _autotune_conv(self, node: Node,
                       *variants) -> Callable[[], np.ndarray]:
        """Pick the fastest of several bitwise-identical conv strategies.

        Measured on the traced input values at build time; the losers
        are discarded.  Any candidate that fails bitwise validation is
        rejected here rather than waiting for the generic validator.
        """
        ix = self._slot_of[node.inputs[0].id]
        saved = self._slots[ix]
        self._slots[ix] = node.inputs[0].value
        try:
            candidates = []
            for name, fn in variants:
                try:
                    result = fn()
                    if not _bitwise_equal(result, node.value):
                        continue
                    best = float("inf")
                    for _ in range(2):
                        start = time.perf_counter()
                        fn()
                        best = min(best, time.perf_counter() - start)
                    candidates.append((best, name, fn))
                except Exception:
                    continue
        finally:
            self._slots[ix] = saved
        if not candidates:
            return self._build_generic_kernel(node)
        candidates.sort(key=lambda item: item[0])
        _, name, fn = candidates[0]
        self.autotune[f"%{node.id}:{node.name}"] = name
        return fn

    # -- generic eager replay -------------------------------------------
    def _build_generic_kernel(self, node: Node) -> Callable[[], Any]:
        """Replay the recorded eager call — the always-correct fallback."""
        slots = self._slots
        in_slots = [self._slot_of[src.id] for src in node.inputs]
        kind = node.attrs.get("kind", "method")
        attr = node.attrs.get("attr", node.op)
        arg_t = node.attrs.get("args", ())
        kw_t = node.attrs.get("kwargs", {})
        epilogue = node.attrs.get("epilogue", ())
        wrap = kind in ("method", "function") and attr not in ("__getitem__",)

        def resolve_callable():
            if kind == "method":
                fn = getattr(Tensor, attr)
            elif kind == "function":
                from repro.obs.profiler import _FUNCTION_OPS
                fn = getattr(_FUNCTION_OPS[attr], attr)
            else:
                fn = node.attrs["fn"]
            return getattr(fn, "_obs_original", fn)

        def substitute(template, values):
            if isinstance(template, Slot):
                value = values[template.index]
                if wrap and isinstance(value, np.ndarray):
                    return Tensor(value)
                return value
            if isinstance(template, (list, tuple)):
                items = [substitute(item, values) for item in template]
                return items if isinstance(template, list) else tuple(items)
            return template

        def kernel_generic():
            values = [slots[i] for i in in_slots]
            fn = resolve_callable()
            call_args = substitute(arg_t, values)
            if kind == "method" and attr == "__getitem__":
                call_args = (Tensor(values[0]),) + tuple(call_args[1:])
            call_kwargs = {k: substitute(v, values) for k, v in kw_t.items()}
            with no_grad():
                result = fn(*call_args, **call_kwargs)
            value = result.data if isinstance(result, Tensor) else result
            for step in epilogue:
                if step["op"] == "bn_affine":
                    mean, denom, scale, shift = (values[i] for i in step["slots"])
                    value = ((value - mean) / denom) * scale + shift
                elif step["op"] == "relu":
                    value = value * (value > 0)
            return value
        return kernel_generic

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, *args: Any) -> Any:
        """Replay the plan on new inputs; returns the traced structure.

        Output arrays are fresh copies — arena buffers are recycled on
        the next call, so results must not alias plan-owned storage.
        """
        from repro.obs.profiler import get_active_profiler

        arrays = self.traced.bind(args)
        with self._lock:
            slots = self._slots
            for slot, array, (shape, dtype) in zip(
                self._input_slots, arrays, self._input_examples
            ):
                if array is None or tuple(array.shape) != shape or array.dtype != dtype:
                    raise CompileError(
                        f"plan for {self.traced.fn_name} expects input "
                        f"{shape}/{dtype}, got "
                        f"{None if array is None else (array.shape, array.dtype)}"
                    )
                slots[slot] = array
            profiler = get_active_profiler()
            with trace_span("graph.execute"):
                if profiler is None:
                    for slot, kernel, _, _, _ in self._steps:
                        slots[slot] = kernel()
                else:
                    for slot, kernel, name, shape, nbytes in self._steps:
                        start = time.perf_counter()
                        slots[slot] = kernel()
                        profiler.record_op(
                            name, start, time.perf_counter() - start,
                            shape=shape, nbytes=nbytes,
                        )
            leaves = [np.array(slots[slot], copy=True) for slot in self._output_slots]
        return self.traced.unflatten(leaves)

    __call__ = run

    def describe(self) -> str:
        lines = [
            f"plan {self.traced.fn_name}: {self.num_kernels} kernels, "
            f"{self.fallbacks} eager fallbacks",
            f"arena: {self.arena_buffers} buffers, "
            f"{self.arena_bytes / 1024:.1f} KiB, {self.arena_reuses} reuses",
        ]
        if self.autotune:
            chosen = ", ".join(f"{k}->{v}" for k, v in sorted(self.autotune.items()))
            lines.append(f"conv autotune: {chosen}")
        return "\n".join(lines)


class PlanCache:
    """LRU cache of :class:`ExecutionPlan` objects keyed by input signature.

    Tracks lookup/hit/compile counters and queues compile events (key,
    milliseconds) for the serving layer to drain into its stats.
    """

    def __init__(self, max_plans: int = 32):
        self.max_plans = max_plans
        self._plans: "OrderedDict[Any, ExecutionPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.lookups = 0
        self.hits = 0
        self.compiles = 0
        self.evictions = 0
        self._compile_events: List[Tuple[Any, float]] = []

    def get(self, key: Any) -> Optional[ExecutionPlan]:
        with self._lock:
            self.lookups += 1
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
            return plan

    def store(self, key: Any, plan: ExecutionPlan, compile_ms: float) -> None:
        with self._lock:
            self.compiles += 1
            self._compile_events.append((key, compile_ms))
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1

    def drain_compile_events(self) -> List[Tuple[Any, float]]:
        """Return and clear compile events recorded since the last drain."""
        with self._lock:
            events, self._compile_events = self._compile_events, []
            return events

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._compile_events = []

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> Dict[str, int]:
        return {
            "plans": len(self._plans),
            "lookups": self.lookups,
            "hits": self.hits,
            "compiles": self.compiles,
            "evictions": self.evictions,
        }
