"""Graph IR: nodes with explicit tensor edges, in execution order.

A :class:`Graph` is a flat list of :class:`Node` objects appended in the
order the traced program executed them, which is by construction a
topological order; passes that rewrite the graph preserve it.  Three
node kinds exist:

- ``input`` — a placeholder bound at execution time (one per traced
  array argument).
- ``constant`` — a value captured at trace time (weights, masks, folded
  subgraphs).  ``node.value`` holds the array by reference, so plans see
  in-place weight mutation only after re-tracing — the model layer
  invalidates plans on ``load_state_dict``/``train`` for exactly this
  reason.
- everything else — an op labelled with the autograd table's name
  (``add``, ``conv2d``, ``rel2att.weight_mask``, …).  ``attrs`` carries
  the call template: the original args/kwargs with tensor operands
  replaced by :class:`Slot` markers that index into ``node.inputs``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


class Slot:
    """Marker inside a call template: ``inputs[index]`` goes here."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"Slot({self.index})"


class Node:
    """One vertex of the IR.

    ``value`` is the array produced for this node during the trace (or a
    tuple of arrays for multi-output external nodes).  Ops keep it until
    plan construction finishes — constant folding and kernel validation
    both consume it — after which the executor drops op values to free
    activation memory; constants keep theirs for the plan's lifetime.
    """

    __slots__ = ("id", "op", "inputs", "attrs", "value", "shape", "dtype", "name")

    def __init__(self, node_id: int, op: str, inputs: Iterable["Node"] = (),
                 attrs: Optional[dict] = None, value=None, name: str = ""):
        self.id = node_id
        self.op = op
        self.inputs: List[Node] = list(inputs)
        self.attrs: dict = attrs if attrs is not None else {}
        self.name = name or op
        self.set_value(value)

    def set_value(self, value) -> None:
        self.value = value
        if isinstance(value, np.ndarray):
            self.shape: Optional[Tuple[int, ...]] = tuple(value.shape)
            self.dtype = value.dtype
        else:
            self.shape = None
            self.dtype = None

    @property
    def is_input(self) -> bool:
        return self.op == "input"

    @property
    def is_constant(self) -> bool:
        return self.op == "constant"

    @property
    def nbytes(self) -> int:
        return int(self.value.nbytes) if isinstance(self.value, np.ndarray) else 0

    def __repr__(self) -> str:
        ins = ",".join(str(i.id) for i in self.inputs)
        shape = "" if self.shape is None else f" {tuple(self.shape)}"
        return f"%{self.id}={self.name}({ins}){shape}"


class Graph:
    """An inference program: nodes in execution order plus the I/O lists."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: List[Node] = []
        self.inputs: List[Node] = []
        self.outputs: List[Node] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, op: str, inputs: Iterable[Node] = (),
                 attrs: Optional[dict] = None, value=None, name: str = "") -> Node:
        node = Node(self._next_id, op, inputs, attrs, value, name)
        self._next_id += 1
        self.nodes.append(node)
        return node

    def add_input(self, name: str, value: np.ndarray) -> Node:
        node = self.add_node("input", value=value, name=name)
        self.inputs.append(node)
        return node

    def add_constant(self, value, name: str = "constant") -> Node:
        return self.add_node("constant", value=value, name=name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def consumers(self) -> Dict[int, List[Node]]:
        """Map ``node.id`` to the nodes that read it."""
        table: Dict[int, List[Node]] = {node.id: [] for node in self.nodes}
        for node in self.nodes:
            for src in node.inputs:
                table[src.id].append(node)
        return table

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def find(self, op: str) -> List[Node]:
        return [node for node in self.nodes if node.op == op]

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def replace_uses(self, old: Node, new: Node) -> None:
        """Redirect every edge (and output slot) from ``old`` to ``new``."""
        for node in self.nodes:
            node.inputs = [new if src is old else src for src in node.inputs]
        self.outputs = [new if node is old else node for node in self.outputs]

    def insert_before(self, anchor: Node, node: Node) -> None:
        self.nodes.insert(self.nodes.index(anchor), node)

    def remove(self, dead: Iterable[Node]) -> None:
        dead_ids = {node.id for node in dead}
        self.nodes = [node for node in self.nodes if node.id not in dead_ids]

    def make_node(self, op: str, inputs: Iterable[Node] = (),
                  attrs: Optional[dict] = None, value=None, name: str = "") -> Node:
        """Build a node without appending it (for pass-local insertion)."""
        node = Node(self._next_id, op, inputs, attrs, value, name)
        self._next_id += 1
        return node

    # ------------------------------------------------------------------
    # Debugging
    # ------------------------------------------------------------------
    def summary(self, top: int = 12) -> str:
        counts = sorted(self.op_counts().items(), key=lambda kv: -kv[1])
        ops = ", ".join(f"{op}x{n}" for op, n in counts[:top])
        return (
            f"graph '{self.name}': {len(self.nodes)} nodes "
            f"({len(self.inputs)} inputs, {len(self.outputs)} outputs): {ops}"
        )

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return self.summary()
