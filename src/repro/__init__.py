"""repro — a full reproduction of "You Only Look & Listen Once" (YOLLO).

One-stage visual grounding with Relation-to-Attention modules, built on
a from-scratch numpy deep-learning substrate, with synthetic
RefCOCO-style datasets, two-stage baselines, and an experiment harness
that regenerates every table and figure of the paper.

Quickstart::

    from repro import quick_grounder
    grounder, dataset = quick_grounder()        # trains a small model
    sample = dataset["val"][0]
    prediction = grounder.ground(sample.image, sample.query)
    print(prediction.box, prediction.score)
"""

from repro.core import (
    Grounder,
    GroundingPrediction,
    YolloConfig,
    YolloModel,
    YolloTrainer,
)
from repro.data import (
    DatasetSpec,
    GroundingDataset,
    GroundingSample,
    REFCOCO,
    REFCOCO_PLUS,
    REFCOCOG,
    build_dataset,
)
from repro.eval import evaluate_grounder
from repro.serve import ServeEngine, ServerStats

__version__ = "1.0.0"

__all__ = [
    "YolloConfig",
    "YolloModel",
    "YolloTrainer",
    "Grounder",
    "GroundingPrediction",
    "DatasetSpec",
    "GroundingDataset",
    "GroundingSample",
    "REFCOCO",
    "REFCOCO_PLUS",
    "REFCOCOG",
    "build_dataset",
    "evaluate_grounder",
    "ServeEngine",
    "ServerStats",
    "quick_grounder",
    "__version__",
]


def quick_grounder(dataset_scale: float = 0.5, epochs: int = 10):
    """Train a small YOLLO model end-to-end and return ``(grounder, dataset)``.

    A convenience entry point for the README quickstart; takes a couple
    of minutes on one CPU core.  Accuracy keeps improving well past this
    budget — see ``examples/train_full_model.py`` for the full recipe.
    """
    from repro.backbone import load_pretrained_backbone

    dataset = build_dataset(REFCOCO.scaled(dataset_scale))
    config = YolloConfig(max_query_length=max(8, dataset.max_query_length))
    backbone = load_pretrained_backbone(config.backbone, steps=300)
    model = YolloModel(config, vocab_size=len(dataset.vocab), backbone=backbone)
    trainer = YolloTrainer(model, dataset, config)
    trainer.train(epochs=epochs)
    return trainer.grounder, dataset
