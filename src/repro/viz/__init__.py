"""Visualisation without external imaging libraries: ASCII + PPM."""

from repro.viz.ascii import (
    ascii_bar,
    render_attention_ascii,
    render_bars_ascii,
    render_scene_ascii,
)
from repro.viz.ppm import save_ppm, overlay_attention, draw_box

__all__ = [
    "ascii_bar",
    "render_attention_ascii",
    "render_bars_ascii",
    "render_scene_ascii",
    "save_ppm",
    "overlay_attention",
    "draw_box",
]
