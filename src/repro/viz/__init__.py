"""Visualisation without external imaging libraries: ASCII + PPM."""

from repro.viz.ascii import render_attention_ascii, render_scene_ascii
from repro.viz.ppm import save_ppm, overlay_attention, draw_box

__all__ = [
    "render_attention_ascii",
    "render_scene_ascii",
    "save_ppm",
    "overlay_attention",
    "draw_box",
]
