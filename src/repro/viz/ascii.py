"""ASCII renderings of scenes, attention maps and predictions.

Used by the Figure-5 harness to print qualitative results in terminals
and log files.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Light-to-dark ramp for heat maps.
_RAMP = " .:-=+*#%@"


def render_attention_ascii(attention: np.ndarray, box: Optional[np.ndarray] = None,
                           stride: float = 1.0, width: int = 2) -> str:
    """Render a ``(gh, gw)`` attention map as an ASCII heat map.

    ``box`` (image coordinates, divided by ``stride``) is drawn as a
    rectangle of ``[]`` markers on top of the heat characters.
    """
    attention = np.asarray(attention, dtype=np.float64)
    lo, hi = attention.min(), attention.max()
    normalised = (attention - lo) / (hi - lo + 1e-12)
    grid_h, grid_w = attention.shape
    chars = [
        [_RAMP[int(round(v * (len(_RAMP) - 1)))] * width for v in row]
        for row in normalised
    ]
    if box is not None:
        col1 = int(np.clip(np.floor(box[0] / stride), 0, grid_w - 1))
        row1 = int(np.clip(np.floor(box[1] / stride), 0, grid_h - 1))
        col2 = int(np.clip(np.ceil(box[2] / stride) - 1, col1, grid_w - 1))
        row2 = int(np.clip(np.ceil(box[3] / stride) - 1, row1, grid_h - 1))
        for col in range(col1, col2 + 1):
            chars[row1][col] = "[" + chars[row1][col][1:]
            chars[row2][col] = chars[row2][col][:-1] + "]"
        for row in range(row1, row2 + 1):
            chars[row][col1] = "[" + chars[row][col1][1:]
            chars[row][col2] = chars[row][col2][:-1] + "]"
    return "\n".join("".join(row) for row in chars)


def ascii_bar(fraction: float, width: int = 20, fill: str = "#") -> str:
    """Render ``fraction`` (clamped to [0, 1]) as a fixed-width bar.

    A non-zero fraction always shows at least one fill character so tiny
    contributions stay visible in hot-op tables.
    """
    fraction = float(np.clip(fraction, 0.0, 1.0))
    cells = int(round(fraction * width))
    if fraction > 0.0 and cells == 0:
        cells = 1
    return fill * cells + " " * (width - cells)


def render_bars_ascii(labels, values, width: int = 30) -> str:
    """Horizontal bar chart: one line per (label, value), scaled to max."""
    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    top = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    return "\n".join(
        f"{label:<{label_width}} |{ascii_bar(value / top, width=width)}| {value:.4g}"
        for label, value in zip(labels, values)
    )


def render_scene_ascii(image: np.ndarray, target_box: Optional[np.ndarray] = None,
                       predicted_box: Optional[np.ndarray] = None,
                       cell: int = 4) -> str:
    """Down-sample an RGB image to ASCII brightness blocks.

    The target box corners are marked ``T`` and the predicted box
    corners ``P`` (overlaid after brightness rendering).
    """
    _, height, width = image.shape
    grid_h, grid_w = height // cell, width // cell
    blocks = image[:, : grid_h * cell, : grid_w * cell]
    brightness = blocks.mean(axis=0).reshape(grid_h, cell, grid_w, cell).mean(axis=(1, 3))
    normalised = (brightness - brightness.min()) / (np.ptp(brightness) + 1e-12)
    chars = [[_RAMP[int(round(v * (len(_RAMP) - 1)))] for v in row] for row in normalised]

    def mark(box: np.ndarray, symbol: str) -> None:
        for x, y in ((box[0], box[1]), (box[2] - 1, box[3] - 1)):
            row = int(np.clip(y // cell, 0, grid_h - 1))
            col = int(np.clip(x // cell, 0, grid_w - 1))
            chars[row][col] = symbol

    if target_box is not None:
        mark(np.asarray(target_box), "T")
    if predicted_box is not None:
        mark(np.asarray(predicted_box), "P")
    return "\n".join("".join(row) for row in chars)
