"""Binary PPM (P6) image output — dependency-free qualitative figures."""

from __future__ import annotations

import numpy as np


def save_ppm(path: str, image: np.ndarray) -> None:
    """Write a ``(3, H, W)`` float image in [0, 1] as a binary PPM file."""
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W) image, got {image.shape}")
    _, height, width = image.shape
    pixels = (image.transpose(1, 2, 0) * 255).astype(np.uint8)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(pixels.tobytes())


def overlay_attention(image: np.ndarray, attention: np.ndarray,
                      alpha: float = 0.55) -> np.ndarray:
    """Blend a low-resolution attention map over an RGB image (red heat).

    ``attention`` of shape ``(gh, gw)`` is nearest-neighbour upsampled
    to the image size, normalised, and mixed into the red channel —
    reproducing the highlighted areas of Figure 5.
    """
    image = np.asarray(image, dtype=np.float64)
    attention = np.asarray(attention, dtype=np.float64)
    _, height, width = image.shape
    rows = np.clip(
        (np.arange(height) * attention.shape[0] // height), 0, attention.shape[0] - 1
    )
    cols = np.clip(
        (np.arange(width) * attention.shape[1] // width), 0, attention.shape[1] - 1
    )
    upsampled = attention[rows[:, None], cols[None, :]]
    lo, hi = upsampled.min(), upsampled.max()
    heat = (upsampled - lo) / (hi - lo + 1e-12)
    out = image * (1.0 - alpha * heat[None])
    out[0] += alpha * heat
    return np.clip(out, 0.0, 1.0)


def draw_box(image: np.ndarray, box: np.ndarray,
             color=(1.0, 0.0, 0.0), thickness: int = 1) -> np.ndarray:
    """Return a copy of the image with a rectangle drawn on it."""
    out = np.asarray(image, dtype=np.float64).copy()
    _, height, width = out.shape
    x1 = int(np.clip(box[0], 0, width - 1))
    y1 = int(np.clip(box[1], 0, height - 1))
    x2 = int(np.clip(box[2] - 1, x1, width - 1))
    y2 = int(np.clip(box[3] - 1, y1, height - 1))
    color_arr = np.asarray(color)[:, None]
    for t in range(thickness):
        top, bottom = min(y1 + t, height - 1), max(y2 - t, 0)
        left, right = min(x1 + t, width - 1), max(x2 - t, 0)
        out[:, top, x1 : x2 + 1] = color_arr
        out[:, bottom, x1 : x2 + 1] = color_arr
        out[:, y1 : y2 + 1, left] = color_arr
        out[:, y1 : y2 + 1, right] = color_arr
    return out
