"""Serving telemetry: latency percentiles, throughput, cache/batch stats.

The engine feeds a thread-safe :class:`StatsRecorder` as requests flow
through it; :meth:`StatsRecorder.snapshot` condenses the raw samples
into an immutable :class:`ServerStats` report.  All distributions live
in :mod:`repro.obs` metrics (``serve.*`` names in a
:class:`~repro.obs.MetricsRegistry`), so quantile semantics are shared
with the profiler and the Table-5 timing path, and external observers
can read the same registry the engine publishes into.  Latency
summarisation reuses :class:`repro.eval.timing.TimingReport`, so serving
numbers are directly comparable with Table 5.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.eval.timing import TimingReport, summarize_latencies
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class ServerStats:
    """One snapshot of a serving engine's counters and distributions."""

    requests: int
    completed: int
    cache_hits: int
    cache_misses: int
    batches: int
    wall_seconds: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    queue_depth_max: int
    queue_depth_mean: float
    batch_histogram: Dict[int, int] = field(default_factory=dict)
    timing: TimingReport = field(
        default_factory=lambda: TimingReport(mean=0.0, std=0.0, num_queries=0)
    )
    #: Plan compilations observed (compiled grounders only; 0 for eager).
    compile_count: int = 0
    #: Total milliseconds spent compiling plans, attributed separately
    #: from request latency so warm-up cost is visible, not averaged in.
    compile_ms_total: float = 0.0
    #: LRU evictions, read straight off the engine's cache.
    cache_evictions: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Hit fraction over the cache-sourced hit/miss tallies.

        ``cache_hits``/``cache_misses`` are read from the
        :class:`~repro.serve.cache.LRUCache` itself (the single counting
        authority), so this rate cannot drift from the cache's own view.
        """
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * count for size, count in self.batch_histogram.items())
        return total / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "throughput_qps": self.throughput_qps,
            "latency_mean": self.timing.mean,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_evictions": self.cache_evictions,
            "mean_batch_size": self.mean_batch_size,
            "queue_depth_max": self.queue_depth_max,
            "queue_depth_mean": self.queue_depth_mean,
            "compile_count": self.compile_count,
            "compile_ms_total": self.compile_ms_total,
        }

    def render(self) -> str:
        """Multi-line human-readable report."""
        histogram = " ".join(
            f"{size}x{count}" for size, count in sorted(self.batch_histogram.items())
        )
        lines = [
            f"served   {self.completed}/{self.requests} requests in "
            f"{self.wall_seconds:.3f}s  ({self.throughput_qps:.1f} qps)",
            f"latency  mean={self.timing.mean * 1e3:.2f}ms  "
            f"p50={self.latency_p50 * 1e3:.2f}ms  "
            f"p95={self.latency_p95 * 1e3:.2f}ms  "
            f"p99={self.latency_p99 * 1e3:.2f}ms",
            f"cache    hits={self.cache_hits} misses={self.cache_misses} "
            f"hit-rate={self.cache_hit_rate * 100:.1f}%",
            f"batches  {self.batches} run, mean size {self.mean_batch_size:.1f}"
            + (f", sizes {histogram}" if histogram else ""),
            f"queue    depth max={self.queue_depth_max} "
            f"mean={self.queue_depth_mean:.1f}",
        ]
        if self.compile_count:
            lines.append(
                f"compile  {self.compile_count} plans, "
                f"{self.compile_ms_total:.1f}ms total"
            )
        return "\n".join(lines)


class StatsRecorder:
    """Thread-safe accumulator behind :class:`ServerStats`.

    All counts and distributions are stored as ``serve.*`` metrics in a
    :class:`~repro.obs.MetricsRegistry` — the recorder owns a private
    registry unless one is injected, in which case the engine's numbers
    appear alongside whatever else that registry tracks.

    When a ``cache`` (:class:`~repro.serve.cache.LRUCache`) is attached,
    the cache is the counting authority for hits and misses:
    :meth:`record_completion` credits the cache's tallies (keeping the
    ``serve.cache_hits``/``serve.cache_misses`` registry counters in
    lockstep for external observers) and :meth:`snapshot` reads the
    cache's numbers back, so the engine's hit-rate can never drift from
    the cache's own view.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 cache=None):
        self._lock = threading.Lock()
        self._cache = cache
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter("serve.requests")
        self._completed = self.registry.counter("serve.completed")
        self._hits = self.registry.counter("serve.cache_hits")
        self._misses = self.registry.counter("serve.cache_misses")
        self._latencies = self.registry.histogram("serve.latency_seconds")
        self._batch_sizes = self.registry.histogram("serve.batch_size")
        self._queue_depths = self.registry.histogram("serve.queue_depth")
        self._compile_ms = self.registry.histogram("serve.compile_ms")
        self._first_request: float = 0.0
        self._last_completion: float = 0.0

    def reset(self) -> None:
        """Reset the engine's own metrics (other registry entries stay)."""
        with self._lock:
            for metric in (self._requests, self._completed, self._hits,
                           self._misses, self._latencies, self._batch_sizes,
                           self._queue_depths, self._compile_ms):
                metric.reset()
            self._first_request = 0.0
            self._last_completion = 0.0
            if self._cache is not None:
                self._cache.reset_stats()

    def record_request(self) -> None:
        now = time.perf_counter()
        with self._lock:
            if self._requests.value == 0:
                self._first_request = now
            self._requests.inc()

    def record_completion(self, latency: float, hit: bool) -> None:
        now = time.perf_counter()
        with self._lock:
            self._completed.inc()
            (self._hits if hit else self._misses).inc()
            if self._cache is not None:
                # The cache is the counting authority; the registry
                # counters above mirror it for external observers.
                self._cache.count_hit() if hit else self._cache.count_miss()
            self._latencies.observe(latency)
            self._last_completion = now

    def record_batch(self, size: int, queue_depth: int) -> None:
        with self._lock:
            self._batch_sizes.observe(size)
            self._queue_depths.observe(queue_depth)

    def record_compile(self, milliseconds: float) -> None:
        """Record one plan compilation (compiled grounders only)."""
        with self._lock:
            self._compile_ms.observe(milliseconds)

    def snapshot(self) -> ServerStats:
        with self._lock:
            latencies = self._latencies.values()
            batch_sizes = self._batch_sizes.values()
            depths = self._queue_depths.values()
            requests, completed = self._requests.value, self._completed.value
            if self._cache is not None:
                hits, misses = self._cache.hits, self._cache.misses
                evictions = self._cache.evictions
            else:
                hits, misses = self._hits.value, self._misses.value
                evictions = 0
            compile_ms = self._compile_ms.values()
            wall = max(0.0, self._last_completion - self._first_request)
        timing = summarize_latencies(latencies)
        histogram: Dict[int, int] = {}
        for size in batch_sizes:
            size = int(size)
            histogram[size] = histogram.get(size, 0) + 1
        return ServerStats(
            requests=requests,
            completed=completed,
            cache_hits=hits,
            cache_misses=misses,
            batches=len(batch_sizes),
            wall_seconds=wall,
            latency_p50=timing.p50,
            latency_p95=timing.p95,
            latency_p99=timing.p99,
            queue_depth_max=int(max(depths)) if depths else 0,
            queue_depth_mean=float(np.mean(depths)) if depths else 0.0,
            batch_histogram=histogram,
            timing=timing,
            compile_count=len(compile_ms),
            compile_ms_total=float(sum(compile_ms)),
            cache_evictions=evictions,
        )
