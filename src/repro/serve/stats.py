"""Serving telemetry: latency percentiles, throughput, cache/batch stats.

The engine feeds a thread-safe :class:`StatsRecorder` as requests flow
through it; :meth:`StatsRecorder.snapshot` condenses the raw samples
into an immutable :class:`ServerStats` report.  Latency summarisation
reuses :class:`repro.eval.timing.TimingReport`, so serving numbers are
directly comparable with the Table-5 timing path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.eval.timing import TimingReport, summarize_latencies


@dataclass(frozen=True)
class ServerStats:
    """One snapshot of a serving engine's counters and distributions."""

    requests: int
    completed: int
    cache_hits: int
    cache_misses: int
    batches: int
    wall_seconds: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    queue_depth_max: int
    queue_depth_mean: float
    batch_histogram: Dict[int, int] = field(default_factory=dict)
    timing: TimingReport = field(
        default_factory=lambda: TimingReport(mean=0.0, std=0.0, num_queries=0)
    )

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def throughput_qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * count for size, count in self.batch_histogram.items())
        return total / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "throughput_qps": self.throughput_qps,
            "latency_mean": self.timing.mean,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "cache_hit_rate": self.cache_hit_rate,
            "mean_batch_size": self.mean_batch_size,
            "queue_depth_max": self.queue_depth_max,
            "queue_depth_mean": self.queue_depth_mean,
        }

    def render(self) -> str:
        """Multi-line human-readable report."""
        histogram = " ".join(
            f"{size}x{count}" for size, count in sorted(self.batch_histogram.items())
        )
        lines = [
            f"served   {self.completed}/{self.requests} requests in "
            f"{self.wall_seconds:.3f}s  ({self.throughput_qps:.1f} qps)",
            f"latency  mean={self.timing.mean * 1e3:.2f}ms  "
            f"p50={self.latency_p50 * 1e3:.2f}ms  "
            f"p95={self.latency_p95 * 1e3:.2f}ms  "
            f"p99={self.latency_p99 * 1e3:.2f}ms",
            f"cache    hits={self.cache_hits} misses={self.cache_misses} "
            f"hit-rate={self.cache_hit_rate * 100:.1f}%",
            f"batches  {self.batches} run, mean size {self.mean_batch_size:.1f}"
            + (f", sizes {histogram}" if histogram else ""),
            f"queue    depth max={self.queue_depth_max} "
            f"mean={self.queue_depth_mean:.1f}",
        ]
        return "\n".join(lines)


class StatsRecorder:
    """Thread-safe accumulator behind :class:`ServerStats`."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self._requests = 0
            self._completed = 0
            self._hits = 0
            self._misses = 0
            self._latencies: List[float] = []
            self._batch_sizes: List[int] = []
            self._queue_depths: List[int] = []
            self._first_request: float = 0.0
            self._last_completion: float = 0.0

    def record_request(self) -> None:
        now = time.perf_counter()
        with self._lock:
            if self._requests == 0:
                self._first_request = now
            self._requests += 1

    def record_completion(self, latency: float, hit: bool) -> None:
        now = time.perf_counter()
        with self._lock:
            self._completed += 1
            if hit:
                self._hits += 1
            else:
                self._misses += 1
            self._latencies.append(float(latency))
            self._last_completion = now

    def record_batch(self, size: int, queue_depth: int) -> None:
        with self._lock:
            self._batch_sizes.append(int(size))
            self._queue_depths.append(int(queue_depth))

    def snapshot(self) -> ServerStats:
        with self._lock:
            latencies = list(self._latencies)
            batch_sizes = list(self._batch_sizes)
            depths = list(self._queue_depths)
            requests, completed = self._requests, self._completed
            hits, misses = self._hits, self._misses
            wall = max(0.0, self._last_completion - self._first_request)
        if latencies:
            p50, p95, p99 = (
                float(v) for v in np.percentile(latencies, [50.0, 95.0, 99.0])
            )
        else:
            p50 = p95 = p99 = 0.0
        histogram: Dict[int, int] = {}
        for size in batch_sizes:
            histogram[size] = histogram.get(size, 0) + 1
        return ServerStats(
            requests=requests,
            completed=completed,
            cache_hits=hits,
            cache_misses=misses,
            batches=len(batch_sizes),
            wall_seconds=wall,
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            queue_depth_max=max(depths) if depths else 0,
            queue_depth_mean=float(np.mean(depths)) if depths else 0.0,
            batch_histogram=histogram,
            timing=summarize_latencies(latencies),
        )
