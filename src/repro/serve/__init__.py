"""Serving layer: micro-batched, cached, fault-tolerant grounding inference.

``ServeEngine`` queues incoming (image, query) requests, batches them
dynamically (up to ``max_batch`` requests or ``max_wait`` seconds), runs
one ``no_grad`` forward per batch through any grounder implementing the
batch protocol, and answers repeats from an LRU cache.  ``ServerStats``
reports p50/p95/p99 latency, throughput, queue depth, cache hit rate,
and the batch-size histogram.

``FleetRouter`` scales that engine out: N replica subprocesses behind a
least-loaded router with bounded-queue backpressure (typed
``Overloaded`` shedding), per-request deadlines with one cross-replica
retry, crash detection + respawn, and rolling hot weight reloads
verified by a checksum handshake.  A router-tier
``SharedResponseCache`` answers repeats before admission, tagged with a
weights epoch that a completed reload bumps — stale boxes are
unreachable the instant new weights are live, and hits survive replica
respawns.  ``run_soak`` replays a timed trace against the fleet — with
deterministic fault injection — and asserts the no-lost-requests /
no-stale-responses / p99 SLO invariants.

Both tiers speak two answer protocols: the legacy ``(4,)`` top-1 box
and the ranked :class:`~repro.core.GroundingResponse` (top-k boxes,
calibrated ``not_found`` decision) — see :mod:`repro.core.response`.
Scenario-tagged traces (:mod:`repro.scenarios`) additionally let the
soak harness report per-scenario p99 and assert that no-target queries
are never answered "found".
"""

from repro.serve.cache import LRUCache, image_digest
from repro.serve.engine import (
    EngineDrainTimeout,
    EngineStopped,
    ServeEngine,
)
from repro.serve.fleet import (
    DeadlineExceeded,
    FleetConfig,
    FleetError,
    FleetRouter,
    FleetStats,
    FleetStopped,
    Overloaded,
    ReloadError,
    ReloadReport,
    ReplicaLost,
    UnknownModel,
)
from repro.serve.replica import (
    LatencyGrounder,
    ReplicaSpec,
    build_latency_grounder,
    build_yollo_grounder,
    load_checkpoint_payload,
    state_checksum,
)
from repro.serve.shared_cache import SharedCacheStats, SharedResponseCache
from repro.serve.soak import SoakReport, run_soak
from repro.serve.stats import ServerStats, StatsRecorder
from repro.serve.trace import (
    TimedRequest,
    TraceRequest,
    synthetic_trace,
    timed_trace,
)

__all__ = [
    "LRUCache",
    "SharedResponseCache",
    "SharedCacheStats",
    "image_digest",
    "ServeEngine",
    "EngineStopped",
    "EngineDrainTimeout",
    "ServerStats",
    "StatsRecorder",
    "TraceRequest",
    "TimedRequest",
    "synthetic_trace",
    "timed_trace",
    "FleetRouter",
    "FleetConfig",
    "FleetStats",
    "FleetError",
    "Overloaded",
    "DeadlineExceeded",
    "ReplicaLost",
    "FleetStopped",
    "ReloadError",
    "ReloadReport",
    "UnknownModel",
    "ReplicaSpec",
    "LatencyGrounder",
    "build_latency_grounder",
    "build_yollo_grounder",
    "state_checksum",
    "load_checkpoint_payload",
    "SoakReport",
    "run_soak",
]
