"""Serving layer: micro-batched, cached, instrumented grounding inference.

``ServeEngine`` queues incoming (image, query) requests, batches them
dynamically (up to ``max_batch`` requests or ``max_wait`` seconds), runs
one ``no_grad`` forward per batch through any grounder implementing the
batch protocol, and answers repeats from an LRU cache.  ``ServerStats``
reports p50/p95/p99 latency, throughput, queue depth, cache hit rate,
and the batch-size histogram.
"""

from repro.serve.cache import LRUCache, image_digest
from repro.serve.engine import ServeEngine
from repro.serve.stats import ServerStats, StatsRecorder
from repro.serve.trace import TraceRequest, synthetic_trace

__all__ = [
    "LRUCache",
    "image_digest",
    "ServeEngine",
    "ServerStats",
    "StatsRecorder",
    "TraceRequest",
    "synthetic_trace",
]
