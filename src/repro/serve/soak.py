"""Trace-driven soak harness for the serving fleet.

Replays a :func:`~repro.serve.trace.timed_trace` against a
:class:`~repro.serve.fleet.FleetRouter` at the trace's own arrival
times (open-loop load), optionally firing a rolling weight reload
mid-run, and then classifies **every** submitted future:

``ok`` / ``shed`` (:class:`Overloaded`) / ``deadline``
(:class:`DeadlineExceeded`) / ``failed`` (other typed errors) /
``lost`` (a future that never resolved — the invariant violation the
whole fleet design exists to prevent).

Because traces carry a repeat fraction, the soak also exercises the
cache tier end to end: the router-tier hit counters land in the
report's :class:`~repro.serve.fleet.FleetStats`, and an optional
``post_reload_check`` verifies the *content* of every successful
response submitted after a mid-run rolling reload completed — a result
computed by pre-reload weights (served from an unflushed replica LRU or
a stale cache entry) is counted in ``stale_served``.

Scenario-mix traces (:mod:`repro.scenarios`) add two more dimensions:

* every request tagged with a ``scenario`` contributes to that
  scenario's own latency percentile (``scenario_p99``), so one slow
  workload cannot hide inside the aggregate p99;
* requests marked ``expect_not_found`` (the described object is absent)
  must be answered with a ranked
  :class:`~repro.core.GroundingResponse` whose ``not_found`` is True —
  anything else is a ``false_found`` correctness violation.

:meth:`SoakReport.check` turns the classification into a pass/fail
verdict: zero lost requests, zero stale responses, zero false-found
answers, a p99 latency SLO (aggregate and optionally per scenario),
the full replica count restored after any injected crash, and
(optionally) a minimum router-tier cache hit rate.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.response import GroundingResponse
from repro.serve.fleet import (
    DeadlineExceeded,
    FleetError,
    FleetRouter,
    FleetStats,
    Overloaded,
)
from repro.serve.trace import TimedRequest


def _describe(result) -> str:
    """Short human-readable rendering of either answer shape."""
    if isinstance(result, GroundingResponse):
        return repr(result)
    return str(np.asarray(result).tolist())


@dataclass(frozen=True)
class SoakReport:
    """Outcome of one soak run: per-request classification plus stats."""

    submitted: int
    ok: int
    shed: int
    deadline: int
    failed: int
    #: Futures that never resolved — must be zero, always.
    lost: int
    wall_seconds: float
    stats: FleetStats
    reload_report: Optional[Any] = None
    reload_error: Optional[str] = None
    failures: Tuple[str, ...] = ()
    #: Successful responses (submitted after a mid-run reload completed)
    #: whose content failed ``post_reload_check`` — boxes computed from
    #: pre-reload weights.  Must be zero: the epoch-invalidation
    #: protocol exists to make these impossible.
    stale_served: int = 0
    #: Requests whose described object was absent (``expect_not_found``).
    no_target_requests: int = 0
    #: Successful answers to no-target requests that claimed "found" —
    #: a correctness violation, must be zero.
    false_found: int = 0
    #: p99 latency per scenario tag (seconds); only tagged requests that
    #: completed successfully contribute.
    scenario_p99: Dict[str, float] = field(default_factory=dict)
    #: Successful responses that failed the per-request ``content_check``
    #: (e.g. a heterogeneous-fleet answer that does not match the
    #: request's own model reference) — must be zero.
    content_mismatches: int = 0

    @property
    def resolved(self) -> int:
        return self.ok + self.shed + self.deadline + self.failed

    def check(self, slo_p99: Optional[float] = None,
              expected_replicas: Optional[int] = None,
              max_shed_fraction: Optional[float] = None,
              min_cache_hit_rate: Optional[float] = None,
              scenario_slo_p99: Optional[float] = None) -> List[str]:
        """Return the list of violated invariants (empty == pass)."""
        violations: List[str] = []
        if self.lost:
            violations.append(
                f"{self.lost} request(s) lost (unresolved futures)")
        if self.stale_served:
            violations.append(
                f"{self.stale_served} response(s) served from pre-reload "
                f"weights after the reload completed")
        if self.false_found:
            violations.append(
                f"{self.false_found} no-target request(s) answered "
                f"\"found\" (of {self.no_target_requests})")
        if self.content_mismatches:
            violations.append(
                f"{self.content_mismatches} response(s) failed the "
                f"per-request content check")
        if self.resolved != self.submitted:
            violations.append(
                f"classification mismatch: {self.resolved} resolved vs "
                f"{self.submitted} submitted")
        if slo_p99 is not None and self.stats.latency_p99 > slo_p99:
            violations.append(
                f"p99 latency {self.stats.latency_p99 * 1e3:.2f}ms exceeds "
                f"SLO {slo_p99 * 1e3:.2f}ms")
        if scenario_slo_p99 is not None:
            for name, p99 in sorted(self.scenario_p99.items()):
                if p99 > scenario_slo_p99:
                    violations.append(
                        f"scenario '{name}' p99 {p99 * 1e3:.2f}ms exceeds "
                        f"SLO {scenario_slo_p99 * 1e3:.2f}ms")
        if expected_replicas is not None \
                and self.stats.alive != expected_replicas:
            violations.append(
                f"{self.stats.alive} replicas alive, expected "
                f"{expected_replicas}")
        if max_shed_fraction is not None and self.submitted:
            fraction = self.shed / self.submitted
            if fraction > max_shed_fraction:
                violations.append(
                    f"shed fraction {fraction:.2%} exceeds "
                    f"{max_shed_fraction:.2%}")
        if min_cache_hit_rate is not None \
                and self.stats.cache_hit_rate < min_cache_hit_rate:
            violations.append(
                f"router-tier cache hit rate "
                f"{self.stats.cache_hit_rate:.2%} below "
                f"{min_cache_hit_rate:.2%} "
                f"({self.stats.cache_hits} hits / "
                f"{self.stats.cache_misses} misses)")
        if self.reload_error is not None:
            violations.append(f"rolling reload failed: {self.reload_error}")
        return violations

    def render(self) -> str:
        lines = [
            f"soak     {self.ok}/{self.submitted} ok, {self.shed} shed, "
            f"{self.deadline} deadline, {self.failed} failed, "
            f"{self.lost} LOST in {self.wall_seconds:.2f}s",
        ]
        if self.no_target_requests:
            lines.append(
                f"absent   {self.no_target_requests} no-target request(s), "
                f"{self.false_found} false-found")
        for name, p99 in sorted(self.scenario_p99.items()):
            lines.append(f"scenario {name:<10} p99={p99 * 1e3:.2f}ms")
        if self.reload_report is not None:
            lines.append(
                f"reload   rolled {len(self.reload_report.replicas)} "
                f"replica(s) in {self.reload_report.wall_seconds:.2f}s "
                f"mid-soak")
        if self.reload_error is not None:
            lines.append(f"reload   FAILED: {self.reload_error}")
        if self.stale_served:
            lines.append(f"stale    {self.stale_served} response(s) from "
                         f"pre-reload weights — STALE")
        if self.content_mismatches:
            lines.append(f"content  {self.content_mismatches} response(s) "
                         f"failed the content check — WRONG MODEL?")
        lines.append(self.stats.render())
        return "\n".join(lines)


@dataclass
class _ReloadTask:
    """Background rolling-reload fired when the trace reaches an index."""

    router: FleetRouter
    checkpoint: str
    report: Optional[Any] = None
    error: Optional[str] = None
    thread: Optional[threading.Thread] = None

    def fire(self) -> None:
        def run() -> None:
            try:
                self.report = self.router.reload_weights(self.checkpoint)
            except Exception as exc:
                self.error = repr(exc)

        self.thread = threading.Thread(target=run, name="soak-reload",
                                       daemon=True)
        self.thread.start()

    def join(self, timeout: float) -> None:
        if self.thread is not None:
            self.thread.join(timeout)
            if self.thread.is_alive() and self.error is None:
                self.error = f"reload still running after {timeout}s"


def run_soak(
    router: FleetRouter,
    trace: Sequence[TimedRequest],
    deadline: Optional[float] = None,
    reload_at: Optional[int] = None,
    reload_checkpoint: Optional[str] = None,
    settle_timeout: float = 60.0,
    post_reload_check: Optional[Callable[[Any], bool]] = None,
    content_check: Optional[Callable[[TimedRequest, Any], bool]] = None,
) -> SoakReport:
    """Replay ``trace`` against ``router`` and classify every outcome.

    Requests are submitted open-loop at each request's ``arrival``
    offset (never waiting on responses — queueing pressure is part of
    the test).  If ``reload_at`` is given, a rolling reload of
    ``reload_checkpoint`` starts in the background the moment that many
    requests have been submitted.  After the last submission, futures
    are awaited up to ``settle_timeout``; anything still unresolved is
    counted as **lost**.

    ``post_reload_check`` receives the result of every *successful*
    response whose request was submitted after the rolling reload had
    completed — a (4,) box, or a ranked
    :class:`~repro.core.GroundingResponse` when replicas serve the
    structured protocol — and returns ``True`` if it was computed by
    the new weights (e.g. it carries the reloaded checkpoint's version
    fingerprint).  Responses failing the check are counted in
    :attr:`SoakReport.stale_served` — the checksum-verified "zero
    responses from pre-reload weights" invariant.

    ``content_check`` receives ``(request, result)`` for every
    successful response and returns ``True`` if the answer is the one
    this request should have gotten — e.g. bit-identical to the
    request's own model's single-engine output in a heterogeneous
    fleet.  Failures land in :attr:`SoakReport.content_mismatches`.
    Requests carrying a ``model`` tag are pinned to that model's
    replicas (see :meth:`~repro.serve.fleet.FleetRouter.submit`).
    """
    if (reload_at is None) != (reload_checkpoint is None):
        raise ValueError(
            "reload_at and reload_checkpoint must be given together")
    router.start()
    reload_task = (_ReloadTask(router, reload_checkpoint)
                   if reload_checkpoint is not None else None)
    futures: List[Future] = []
    #: Whether the rolling reload had already *completed* when the
    #: request was submitted — only those responses are required to
    #: carry the new weights (earlier ones legitimately race the roll).
    after_reload: List[bool] = []
    #: index -> seconds from submission to future resolution, stamped by
    #: a done-callback (covers cache hits that resolve synchronously).
    finished_in: Dict[int, float] = {}
    started = time.monotonic()
    for index, request in enumerate(trace):
        if reload_task is not None and index == reload_at:
            reload_task.fire()
        lag = started + request.arrival - time.monotonic()
        if lag > 0:
            time.sleep(lag)
        after_reload.append(
            reload_task is not None and reload_task.report is not None)
        submit_ts = time.monotonic()
        future = router.submit(request.image, request.query,
                               deadline=deadline,
                               model=(getattr(request, "model", "") or None))
        future.add_done_callback(
            lambda f, i=index, t0=submit_ts:
            finished_in.__setitem__(i, time.monotonic() - t0))
        futures.append(future)
    if reload_task is not None and reload_task.thread is None:
        reload_task.fire()  # reload_at beyond the trace: fire at the end

    counts: Dict[str, int] = {"ok": 0, "shed": 0, "deadline": 0,
                              "failed": 0, "lost": 0, "stale": 0,
                              "no_target": 0, "false_found": 0,
                              "mismatch": 0}
    scenario_latencies: Dict[str, List[float]] = {}
    failures: List[str] = []
    settle_deadline = time.monotonic() + settle_timeout
    for index, (future, post_reload) in enumerate(zip(futures, after_reload)):
        request = trace[index]
        expect_absent = bool(getattr(request, "expect_not_found", False))
        if expect_absent:
            counts["no_target"] += 1
        remaining = max(0.01, settle_deadline - time.monotonic())
        try:
            result = future.result(timeout=remaining)
            counts["ok"] += 1
            tag = str(getattr(request, "scenario", "") or "")
            if tag:
                scenario_latencies.setdefault(tag, []).append(
                    finished_in.get(index, 0.0))
            if expect_absent and not (
                    isinstance(result, GroundingResponse)
                    and result.not_found):
                counts["false_found"] += 1
                failures.append(
                    f"no-target query answered found: {request.query!r} "
                    f"-> {_describe(result)}")
            if post_reload and post_reload_check is not None \
                    and not post_reload_check(result):
                counts["stale"] += 1
                failures.append(
                    f"stale response after reload: {_describe(result)}")
            if content_check is not None \
                    and not content_check(request, result):
                counts["mismatch"] += 1
                failures.append(
                    f"content check failed for {request.query!r} "
                    f"(model={getattr(request, 'model', '')!r}) "
                    f"-> {_describe(result)}")
        except Overloaded:
            counts["shed"] += 1
        except DeadlineExceeded:
            counts["deadline"] += 1
        except FleetError as exc:
            counts["failed"] += 1
            failures.append(repr(exc))
        except TimeoutError:
            counts["lost"] += 1
        except Exception as exc:  # non-fleet error: a real bug, count it
            counts["failed"] += 1
            failures.append(repr(exc))
    if reload_task is not None:
        reload_task.join(max(0.01, settle_deadline - time.monotonic()))

    scenario_p99 = {
        name: float(np.percentile(np.asarray(values), 99.0))
        for name, values in scenario_latencies.items()
    }
    return SoakReport(
        submitted=len(futures),
        ok=counts["ok"], shed=counts["shed"], deadline=counts["deadline"],
        failed=counts["failed"], lost=counts["lost"],
        wall_seconds=time.monotonic() - started,
        stats=router.stats(),
        reload_report=reload_task.report if reload_task else None,
        reload_error=reload_task.error if reload_task else None,
        failures=tuple(failures[:10]),
        stale_served=counts["stale"],
        no_target_requests=counts["no_target"],
        false_found=counts["false_found"],
        scenario_p99=scenario_p99,
        content_mismatches=counts["mismatch"],
    )
