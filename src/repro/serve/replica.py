"""Serving replica: one ``ServeEngine`` wrapped in an OS process.

The fleet router (:mod:`repro.serve.fleet`) spawns ``replicas`` of
these (``spawn`` start method, like :mod:`repro.dist.worker` — the
builder must be a module-level callable with picklable kwargs).  Each
replica builds its grounder, wraps it in the ordinary micro-batching
:class:`~repro.serve.ServeEngine`, and then services a duplex pipe:

* ``("request", req_id, image, query)`` — submitted to the engine; the
  future's completion callback ships ``("response", req_id, box)`` (or
  ``("error", req_id, detail)``) back to the router.
* ``("reload", path)`` — loads a :mod:`repro.runtime` checkpoint into
  the grounder's weights, flushes the engine's response cache (a box
  computed by the old weights must not outlive them), and answers
  ``("reloaded", checksum,
  seconds)``, where ``checksum`` is :func:`state_checksum` over the
  replica's *re-extracted* post-load state — the router compares it to
  the checksum of the checkpoint payload it read itself, so a torn or
  partial load cannot silently serve wrong weights.
* ``("stop",)`` — drain the engine and exit cleanly.

A heartbeat thread reports queue depth and served count every
``heartbeat_interval`` so the router can route to the least-loaded
replica and detect hung processes.  Deterministic replica kills are
injected through :meth:`repro.runtime.faults.FaultPlan
.on_replica_request`: the resulting :class:`SimulatedCrash` is turned
into ``os._exit`` — the process dies with requests in flight, exactly
like a real kill.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.faults import FaultPlan, SimulatedCrash
from repro.serve.engine import ServeEngine
from repro.utils.seeding import seed_everything


# ----------------------------------------------------------------------
# Weight checksum handshake
# ----------------------------------------------------------------------
def state_checksum(state: Dict[str, Any]) -> str:
    """Content hash of a state dict, canonicalised for the handshake.

    Keys are visited in sorted order and every value is hashed as
    float64 bytes plus its shape, so the checksum depends only on the
    weight *values* — float32 weights hash identically before pickling,
    after a pipe round-trip, and after a load/re-extract cycle (float32
    -> float64 is exact).  Router and replica both compute this: the
    router over the checkpoint payload it read, the replica over its
    model's re-extracted state after loading.
    """
    digest = hashlib.sha256()
    for key in sorted(state):
        value = np.ascontiguousarray(np.asarray(state[key], dtype=np.float64))
        digest.update(key.encode("utf-8"))
        digest.update(str(value.shape).encode("ascii"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def load_checkpoint_payload(path: str) -> Dict[str, Any]:
    """Read and verify one checkpoint file, returning its payload.

    Goes through :class:`~repro.runtime.CheckpointManager`'s reader so
    the file-level sha256 is checked — a corrupt checkpoint raises
    rather than loading garbage weights.
    """
    manager = CheckpointManager(os.path.dirname(os.path.abspath(path)))
    return manager.load(path).payload


def apply_weights(grounder, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Load ``payload`` into a grounder and return its re-extracted state.

    Works with anything exposing ``load_state_dict``/``state_dict``
    directly (e.g. :class:`LatencyGrounder`) or through a ``.model``
    attribute (e.g. :class:`repro.core.Grounder`).
    """
    target = grounder if hasattr(grounder, "load_state_dict") else grounder.model
    target.load_state_dict(payload)
    return target.state_dict()


# ----------------------------------------------------------------------
# Builders (module-level: spawn-picklable)
# ----------------------------------------------------------------------
class LatencyGrounder:
    """Deterministic fixed-latency model stand-in for fleet harnesses.

    Each batch call sleeps ``latency`` seconds (one simulated forward
    pass) and answers ``[image.sum(), len(tokens), version, bias]`` per
    sample, where ``version``/``bias`` are its only "weights" — so hot
    reloads are observable in the responses and the checksum handshake
    round-trips exactly.  Because its cost is wall time rather than CPU,
    N replicas overlap it even on one core: the honest scaling model for
    a fleet fronting fixed-latency model servers.
    """

    def __init__(self, latency: float = 0.002, version: float = 0.0,
                 bias: float = 1.0):
        self.latency = float(latency)
        self.version = float(version)
        self.bias = float(bias)
        self.batches = 0

    def __call__(self, samples):
        if self.latency > 0:
            time.sleep(self.latency)
        self.batches += 1
        return np.stack([
            np.array([float(s.image.sum()), float(len(s.tokens)),
                      self.version, self.bias])
            for s in samples
        ])

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"version": np.array([self.version]),
                "bias": np.array([self.bias])}

    def load_state_dict(self, state) -> None:
        self.version = float(np.asarray(state["version"]).reshape(-1)[0])
        self.bias = float(np.asarray(state["bias"]).reshape(-1)[0])


def build_latency_grounder(latency: float = 0.002, version: float = 0.0,
                           bias: float = 1.0) -> LatencyGrounder:
    """Spawn-picklable builder for :class:`LatencyGrounder` replicas."""
    return LatencyGrounder(latency=latency, version=version, bias=bias)


def build_yollo_grounder(dataset_name: str = "RefCOCO", scale: float = 0.1,
                         backbone: str = "tiny", pretrain_steps: int = 1,
                         model_path: Optional[str] = None,
                         compiled: bool = False):
    """Reconstruct a real YOLLO grounder inside a replica process.

    Replicas are seeded identically by the entry point before this runs,
    so every replica initialises bit-identical weights even without a
    ``model_path`` — a request answers the same no matter which replica
    serves it.
    """
    from repro.backbone import load_pretrained_backbone
    from repro.core import Grounder, YolloConfig, YolloModel
    from repro.data import REFCOCO, REFCOCO_PLUS, REFCOCOG, build_dataset

    spec = {"RefCOCO": REFCOCO, "RefCOCO+": REFCOCO_PLUS,
            "RefCOCOg": REFCOCOG}[dataset_name]
    dataset = build_dataset(spec.scaled(scale))
    config = YolloConfig(backbone=backbone,
                         max_query_length=max(8, dataset.max_query_length))
    net = load_pretrained_backbone(config.backbone, steps=pretrain_steps)
    model = YolloModel(config, vocab_size=len(dataset.vocab), backbone=net)
    if model_path:
        model.load(model_path)
    model.eval()
    grounder = Grounder(model, dataset.vocab)
    if compiled:
        grounder.compile()
    return grounder


# ----------------------------------------------------------------------
# Replica process
# ----------------------------------------------------------------------
@dataclass
class ReplicaSpec:
    """Everything a replica process needs to build and serve its engine.

    ``builder`` must be a module-level callable (picklable by qualified
    name) returning a batch grounder; ``builder_kwargs`` are passed to
    it verbatim inside the replica.
    """

    builder: Callable[..., Any]
    builder_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Identity of the model this replica serves (a zoo preset name or
    #: fingerprint).  A heterogeneous fleet routes model-tagged requests
    #: only to matching replicas and keys the shared response cache on
    #: this, so two presets can never cross-serve each other's answers.
    model_id: str = ""
    max_batch: int = 8
    max_wait: float = 0.002
    cache_size: int = 256
    heartbeat_interval: float = 0.05
    seed: int = 0
    dtype: str = "float64"
    #: Checkpoint applied right after build (respawned replicas join the
    #: fleet at the weights of the last completed rolling reload).
    initial_checkpoint: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None


def _replica_entry(spec: ReplicaSpec, replica_id: int, generation: int,
                   conn) -> None:
    """Process entry point: build, serve the pipe, die realistically."""
    from repro.autograd import set_default_dtype

    try:
        set_default_dtype(np.float64 if spec.dtype == "float64"
                          else np.float32)
        seed_everything(spec.seed)
        grounder = spec.builder(**spec.builder_kwargs)
        if spec.initial_checkpoint:
            apply_weights(grounder, load_checkpoint_payload(
                spec.initial_checkpoint))
        engine = ServeEngine(grounder, max_batch=spec.max_batch,
                             max_wait=spec.max_wait,
                             cache_size=spec.cache_size)
        engine.start()

        send_lock = threading.Lock()
        served = [0]
        stop_beats = threading.Event()

        def send(message) -> None:
            with send_lock:
                conn.send(message)

        def heartbeat_loop() -> None:
            while not stop_beats.wait(spec.heartbeat_interval):
                try:
                    send(("heartbeat", engine.queue_depth, served[0]))
                except (BrokenPipeError, OSError):
                    return

        beats = threading.Thread(target=heartbeat_loop,
                                 name=f"replica-{replica_id}-heartbeat",
                                 daemon=True)
        beats.start()
        send(("ready", os.getpid(), generation))

        def on_done(req_id: int, future) -> None:
            try:
                exc = future.exception()
                if exc is None:
                    send(("response", req_id, future.result()))
                    served[0] += 1
                else:
                    send(("error", req_id, repr(exc)))
            except (BrokenPipeError, OSError):
                pass  # router gone; nothing left to report to

        received = 0
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # router side closed: shut down
            kind = message[0]
            if kind == "request":
                _, req_id, image, query = message
                received += 1
                if spec.fault_plan is not None:
                    spec.fault_plan.on_replica_request(replica_id, received)
                future = engine.submit(image, query)
                future.add_done_callback(
                    lambda f, req_id=req_id: on_done(req_id, f))
            elif kind == "reload":
                _, path = message
                started = time.perf_counter()
                try:
                    payload = load_checkpoint_payload(path)
                    state = apply_weights(grounder, payload)
                    # Boxes computed by the old weights must not outlive
                    # them: flush the engine's LRU (and invalidate any
                    # in-flight batch's pending inserts) before acking,
                    # so the router never re-admits traffic to a replica
                    # that could still answer from pre-reload results.
                    engine.clear_cache()
                    checksum = state_checksum(state)
                    send(("reloaded", checksum,
                          time.perf_counter() - started))
                except Exception as exc:  # keep serving the old weights
                    send(("reload-failed", repr(exc)))
            elif kind == "stop":
                break
        stop_beats.set()
        engine.stop()
        conn.close()
    except SimulatedCrash:
        # Die the way a killed process does: no drain, no report — the
        # router finds out through EOF on the pipe.
        os._exit(17)
    except (BrokenPipeError, OSError):
        os._exit(18)
