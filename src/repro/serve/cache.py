"""LRU result cache for the serving engine.

Cache keys combine a content digest of the image with the raw query
string, so two requests for the same pixels and words share one entry
no matter which array object carries them.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable, Optional

import numpy as np


def image_digest(image: np.ndarray) -> str:
    """Content hash of an image array (dtype- and shape-sensitive)."""
    array = np.ascontiguousarray(image)
    digest = hashlib.sha1()
    digest.update(str(array.dtype).encode("ascii"))
    digest.update(str(array.shape).encode("ascii"))
    digest.update(array.tobytes())
    return digest.hexdigest()


class LRUCache:
    """A bounded mapping that evicts the least-recently-used entry.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    from the cold end once ``capacity`` is exceeded.  ``capacity == 0``
    disables caching entirely (every ``get`` misses).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``value``, evicting the coldest entries past capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
