"""LRU result cache for the serving engine.

Cache keys combine a content digest of the image with the raw query
string, so two requests for the same pixels and words share one entry
no matter which array object carries them.

The cache is the single source of truth for its own telemetry: ``get``
counts hits and misses (alongside the existing eviction counter), so
the engine's :class:`~repro.serve.stats.ServerStats` reads the numbers
straight off the cache instead of keeping a parallel tally that can
drift.  Callers that serve a request *as if* from the cache without a
lookup — the engine's in-flight dedup collapses identical queued
requests onto one forward slot — credit the cache explicitly through
:meth:`LRUCache.count_hit` / :meth:`LRUCache.count_miss`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable, Optional

import numpy as np


def image_digest(image: np.ndarray) -> str:
    """Content hash of an image array (dtype- and shape-sensitive)."""
    array = np.ascontiguousarray(image)
    digest = hashlib.sha1()
    digest.update(str(array.dtype).encode("ascii"))
    digest.update(str(array.shape).encode("ascii"))
    digest.update(array.tobytes())
    return digest.hexdigest()


class LRUCache:
    """A bounded mapping that evicts the least-recently-used entry.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    from the cold end once ``capacity`` is exceeded.  ``capacity == 0``
    disables caching entirely (every ``get`` misses).

    Lookup outcomes accumulate in :attr:`hits` / :attr:`misses`
    (evictions in :attr:`evictions`); pass ``count=False`` to ``get``
    for a probe that should not affect the tallies (the engine probes at
    submit time but only counts the request's *final* outcome, so one
    request never counts twice).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of counted lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def count_hit(self) -> None:
        """Credit one hit decided outside ``get`` (e.g. in-flight dedup)."""
        self.hits += 1

    def count_miss(self) -> None:
        """Record one miss decided outside ``get``."""
        self.misses += 1

    def get(self, key: Hashable, count: bool = True) -> Optional[object]:
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._entries:
            if count:
                self.misses += 1
            return None
        self._entries.move_to_end(key)
        if count:
            self.hits += 1
        return self._entries[key]

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``value``, evicting the coldest entries past capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (hit/miss/eviction tallies are kept)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction tallies (entries are kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
