"""Micro-batching inference engine — the serving layer over any grounder.

Requests enter a queue; a worker thread collects up to ``max_batch`` of
them (waiting at most ``max_wait`` seconds after the first arrival) and
runs ONE batched forward pass under ``no_grad`` through the wrapped
grounder.  Repeated (image, query) pairs are answered from an LRU cache
without touching the model at all.  Every request's latency, every
batch's size, and the queue depth are recorded into a
:class:`repro.serve.stats.StatsRecorder`.

Any object implementing the repo's batch-grounder protocol works:
``grounder(samples) -> (n, 4) boxes`` over :class:`GroundingSample`
lists — :class:`repro.core.Grounder` (true batched forward) and
:class:`repro.twostage.TwoStageGrounder` (per-sample internally, but
still cached and instrumented) both qualify.  Grounders that return a
list of :class:`repro.core.GroundingResponse` (ranked boxes +
confidences + an explicit not-found decision, e.g.
:class:`repro.core.RankedGrounder` or the scenario oracles) are served
through exactly the same batching and caching paths: responses are
frozen (deep read-only copies) on cache insertion and thawed (deep
writable copies) on the way out, so a caller can never mutate a cached
ranked list.  One engine serves one protocol — a cache key is
``(image_digest, query)``, so mixing single-box and ranked grounders
behind one cache would alias entries of different shapes.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.autograd import no_grad
from repro.core.response import (
    GroundingResponse,
    freeze_response,
    thaw_response,
)
from repro.data.refcoco import GroundingSample
from repro.obs import MetricsRegistry, trace_span
from repro.serve.cache import LRUCache, image_digest
from repro.serve.stats import ServerStats, StatsRecorder
from repro.text.tokenizer import normalize_query, tokenize

#: Queue sentinel that tells the worker to drain out.
_SHUTDOWN = object()


class EngineStopped(RuntimeError):
    """The engine was stopping (or stopped) before this request was served.

    Raised synchronously by :meth:`ServeEngine.submit` for requests that
    race an in-progress :meth:`ServeEngine.stop`, and set on any future
    whose request was still queued when the worker drained out — no
    future is ever left permanently unresolved by a shutdown.
    """


class EngineDrainTimeout(RuntimeError):
    """``stop`` timed out waiting for the worker to drain.

    The worker thread is still alive and still referenced (``running``
    stays truthful); call :meth:`ServeEngine.stop` again to finish the
    shutdown once the in-flight batch completes.
    """


@dataclass
class _Pending:
    """One queued request awaiting its batch."""

    sample: GroundingSample
    key: Tuple[str, str]
    future: Future
    enqueued: float


def _make_sample(image: np.ndarray, query: str) -> GroundingSample:
    """Wrap a raw request into the sample type grounders consume."""
    return GroundingSample(
        image=image,
        query=query,
        tokens=tokenize(query),
        target_box=np.zeros(4),
        target_index=-1,
        scene=None,
        split="serve",
    )


class ServeEngine:
    """Serve grounding requests with dynamic micro-batching and caching.

    Parameters
    ----------
    grounder:
        Any batch grounder (``samples -> (n, 4) boxes``).
    max_batch:
        Largest batch one forward pass may carry.
    max_wait:
        Seconds the worker waits after the first queued request for
        stragglers before running a partial batch.  Zero still batches
        whatever has already accumulated in the queue (burst traffic
        fills batches without ever sleeping).
    cache_size:
        LRU entries for (image digest, query) -> box; 0 disables.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` the engine publishes
        its ``serve.*`` metrics into; defaults to a private registry
        (readable via :attr:`metrics`).

    Use as a context manager, or call :meth:`start`/:meth:`stop`.
    ``submit`` starts the worker lazily, so the one-liner
    ``Grounder(...).serve().ground(image, "red dog")`` also works.
    Submitting after a completed ``stop`` restarts the worker (documented
    lazy restart); submitting while a ``stop`` is draining raises
    :class:`EngineStopped`, and a shutdown resolves every still-queued
    future with :class:`EngineStopped` — no request is ever lost.
    """

    def __init__(
        self,
        grounder: Callable[[Sequence[GroundingSample]], np.ndarray],
        max_batch: int = 16,
        max_wait: float = 0.002,
        cache_size: int = 256,
        metrics: MetricsRegistry = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.grounder = grounder
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._queue: "queue.Queue" = queue.Queue()
        self._cache = LRUCache(cache_size)
        self._cache_lock = threading.Lock()
        # Bumped by ``clear_cache``: a batch that was already in flight
        # when the cache was cleared must not insert its (potentially
        # stale) boxes afterwards.
        self._cache_version = 0
        self._recorder = StatsRecorder(registry=metrics, cache=self._cache)
        self._thread: threading.Thread = None
        # Guards the submit/stop race: enqueueing a request and pushing
        # the shutdown sentinel are serialised, so a request either lands
        # ahead of the sentinel (and is served) or observes ``_stopping``
        # and is rejected with ``EngineStopped`` — never silently lost
        # behind the sentinel.
        self._lifecycle = threading.Lock()
        self._stopping = False

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this engine's ``serve.*`` metrics live in."""
        return self._recorder.registry

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ServeEngine":
        if not self.running:
            self._thread = threading.Thread(
                target=self._worker, name="serve-engine", daemon=True
            )
            self._thread.start()
        return self

    @property
    def queue_depth(self) -> int:
        """Requests currently queued ahead of the worker (approximate)."""
        return self._queue.qsize()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain queued requests, then stop the worker thread.

        Raises :class:`EngineDrainTimeout` if the worker has not drained
        within ``timeout`` seconds; the thread reference is kept (so
        :attr:`running` stays truthful) and ``stop`` may be called again.
        Any request still queued after the worker exits — possible only
        for requests that raced a previous timed-out stop — has its
        future resolved with :class:`EngineStopped` rather than being
        left to hang.
        """
        with self._lifecycle:
            if not self.running:
                self._thread = None
                self._fail_leftovers()
                return
            self._stopping = True
            self._queue.put(_SHUTDOWN)
            thread = self._thread
        try:
            thread.join(timeout)
            if thread.is_alive():
                raise EngineDrainTimeout(
                    f"serve worker still draining after {timeout}s; "
                    f"engine is still running — call stop() again"
                )
            self._thread = None
            self._fail_leftovers()
        finally:
            with self._lifecycle:
                self._stopping = False

    def _fail_leftovers(self) -> None:
        """Resolve any still-queued requests with ``EngineStopped``."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SHUTDOWN:
                continue
            if not item.future.done():
                item.future.set_exception(EngineStopped(
                    "engine stopped before this request was served"
                ))

    def __enter__(self) -> "ServeEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray, query: str) -> Future:
        """Enqueue one request; the future resolves to the grounder's
        answer — a (4,) box, or a :class:`~repro.core.GroundingResponse`
        when the wrapped grounder speaks the ranked protocol.

        Submitting to a fully stopped engine restarts the worker (the
        documented lazy-start behaviour backing the one-liner usage);
        submitting *while* :meth:`stop` is draining raises
        :class:`EngineStopped` instead of racing the shutdown sentinel.
        """
        now = time.perf_counter()
        self._recorder.record_request()
        # Normalise once at the front door: whitespace/case/punctuation
        # variants of the same query share one cache entry (and one
        # model pass) in every tier downstream.
        query = normalize_query(str(query))
        key = (image_digest(image), query)
        with self._cache_lock:
            # Uncounted probe: the request's final outcome (hit, miss,
            # or dedup hit) is credited once, at completion time.
            cached = self._cache.get(key, count=False)
        future: Future = Future()
        if cached is not None:
            self._recorder.record_completion(time.perf_counter() - now, hit=True)
            future.set_result(thaw_response(cached))
            return future
        with self._lifecycle:
            if self._stopping:
                raise EngineStopped("engine is stopping; request rejected")
            self.start()
            self._queue.put(_Pending(_make_sample(image, query), key, future, now))
        return future

    def ground(self, image: np.ndarray, query: str, timeout: float = 60.0) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(image, query).result(timeout=timeout)

    def ground_many(self, requests: Iterable, timeout: float = 300.0):
        """Submit a burst of requests and gather the answers in order.

        ``requests`` yields objects with ``image`` and ``query``
        attributes (e.g. :class:`repro.serve.TraceRequest`) or
        ``(image, query)`` tuples.  Single-box grounders yield a stacked
        ``(n, 4)`` array; ranked grounders yield the list of
        :class:`~repro.core.GroundingResponse` in submission order.
        """
        futures = []
        for request in requests:
            if hasattr(request, "image"):
                image, query = request.image, request.query
            else:
                image, query = request
            futures.append(self.submit(image, query))
        results = [future.result(timeout=timeout) for future in futures]
        if any(isinstance(r, GroundingResponse) for r in results):
            return results
        return np.stack(results) if results else np.empty((0, 4))

    def stats(self) -> ServerStats:
        """Snapshot of throughput, latency, cache, and batching telemetry."""
        return self._recorder.snapshot()

    def reset_stats(self) -> None:
        self._recorder.reset()

    def clear_cache(self) -> None:
        """Drop every cached response; safe against in-flight batches.

        Used by the serving replica when new weights are hot-loaded:
        boxes computed by the old weights must not survive the swap.
        The internal cache version is bumped so a batch that was already
        running its forward pass when the clear happened cannot insert
        its (old-weights) results afterwards — its waiters still get
        their boxes, but nothing enters the cache.
        """
        with self._cache_lock:
            self._cache.clear()
            self._cache_version += 1

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _collect_batch(self, first: _Pending) -> Tuple[List[_Pending], bool]:
        """Gather up to ``max_batch`` requests, waiting at most ``max_wait``."""
        batch = [first]
        deadline = time.perf_counter() + self.max_wait
        keep_running = True
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                keep_running = False
                break
            batch.append(item)
        return batch, keep_running

    def _drain_compile_events(self) -> None:
        """Attribute plan compilations to ``serve.compile_ms``.

        Compiled grounders (``Grounder.compile()``) expose a plan cache;
        each batch may trigger at most a handful of compiles (one per new
        input shape), and recording them separately keeps warm-up cost
        out of the steady-state latency distribution.
        """
        plan_cache = getattr(self.grounder, "plan_cache", None)
        if plan_cache is None:
            return
        for _key, milliseconds in plan_cache.drain_compile_events():
            self._recorder.record_compile(milliseconds)

    def _resolve(self, pending: _Pending, value, hit: bool) -> None:
        latency = time.perf_counter() - pending.enqueued
        self._recorder.record_completion(latency, hit=hit)
        pending.future.set_result(thaw_response(value))

    @staticmethod
    def _normalize_results(raw, count: int) -> List:
        """Coerce a grounder's batch output to one value per sample.

        Single-box grounders return an array reshapable to ``(n, 4)``;
        ranked grounders return a list of ``GroundingResponse``.  Either
        way the worker gets a flat list it can cache and resolve with
        the same copy-in/copy-out discipline.
        """
        if (isinstance(raw, (list, tuple))
                and any(isinstance(v, GroundingResponse) for v in raw)):
            if len(raw) != count or not all(
                    isinstance(v, GroundingResponse) for v in raw):
                raise TypeError(
                    f"ranked grounder must return one GroundingResponse "
                    f"per sample ({count}), got {len(raw)} item(s)")
            return list(raw)
        boxes = np.asarray(raw, dtype=np.float64).reshape(count, 4)
        return [boxes[i] for i in range(count)]

    def _run_batch(self, batch: List[_Pending]) -> None:
        depth = self._queue.qsize()
        with self._cache_lock:
            cache_version = self._cache_version
        # Re-check the cache at execution time (a request queued during a
        # burst may have been answered by an earlier batch by now) and
        # collapse identical in-flight requests onto one forward slot.
        groups: "dict[Tuple[str, str], List[_Pending]]" = {}
        for pending in batch:
            with self._cache_lock:
                cached = self._cache.get(pending.key, count=False)
            if cached is not None:
                self._resolve(pending, cached, hit=True)
                continue
            groups.setdefault(pending.key, []).append(pending)
        if not groups:
            return
        samples = [group[0].sample for group in groups.values()]
        try:
            with trace_span("serve.batch"), no_grad():
                raw = self.grounder(samples)
            values = self._normalize_results(raw, len(samples))
        except Exception as exc:  # surface the failure on every waiter
            for group in groups.values():
                for pending in group:
                    pending.future.set_exception(exc)
            return
        finally:
            self._drain_compile_events()
        self._recorder.record_batch(len(samples), depth)
        with self._cache_lock:
            # A clear_cache() since this batch started (hot weight
            # reload) means these results came from retired weights:
            # serve the waiters, but keep the results out of the cache.
            if self._cache_version == cache_version:
                for key, value in zip(groups, values):
                    self._cache.put(key, freeze_response(value))
        for group, value in zip(groups.values(), values):
            # The first requester paid for the forward pass; in-flight
            # duplicates were deduplicated, which counts as cache service.
            for index, pending in enumerate(group):
                self._resolve(pending, value, hit=index > 0)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch, keep_running = self._collect_batch(item)
            self._run_batch(batch)
            if not keep_running:
                return
