"""Synthetic traffic traces: bursty request streams with repeat queries.

Real grounding traffic repeats itself — popular images and phrasings
recur — which is what makes a result cache pay off.  ``synthetic_trace``
models that with a tunable repeat fraction over a sample pool, seeded
through the repo's deterministic RNG spawner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.refcoco import GroundingSample
from repro.utils.seeding import spawn_rng


@dataclass
class TraceRequest:
    """One incoming request: raw pixels plus a free-form query."""

    image: np.ndarray
    query: str


@dataclass
class TimedRequest(TraceRequest):
    """A trace request with an arrival offset (seconds from trace start).

    The soak harness replays these against a serving fleet, sleeping
    until each request's ``arrival`` before submitting — sustained load
    at a target rate rather than a single burst.

    Heterogeneous workload mixes (:mod:`repro.scenarios`) tag each
    request with the scenario that generated it — the soak harness
    reports per-scenario latency percentiles — and mark queries whose
    described object is absent (``expect_not_found``): a successful
    response to such a request that does **not** say "not found" is a
    correctness violation the soak counts as ``false_found``.
    """

    arrival: float = 0.0
    #: Scenario that generated this request ("" for untagged traces).
    scenario: str = ""
    #: Model this request targets in a heterogeneous fleet ("" routes to
    #: any replica); see :class:`repro.serve.replica.ReplicaSpec`.
    model: str = ""
    #: The described object is absent: the only correct answer is a
    #: ranked response with ``not_found=True``.
    expect_not_found: bool = False


def synthetic_trace(
    samples: Sequence[GroundingSample],
    num_requests: int,
    repeat_fraction: float = 0.3,
    rng: Optional[np.random.Generator] = None,
) -> List[TraceRequest]:
    """Build a deterministic request trace over a sample pool.

    Each request is, with probability ``repeat_fraction``, an exact
    repeat of an earlier request in the trace (a cache-hittable
    duplicate); otherwise a fresh draw from ``samples``.
    """
    if not samples:
        raise ValueError("synthetic_trace needs a non-empty sample pool")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError("repeat_fraction must be in [0, 1]")
    rng = rng if rng is not None else spawn_rng("serve-trace")
    trace: List[TraceRequest] = []
    for _ in range(num_requests):
        if trace and rng.random() < repeat_fraction:
            earlier = trace[int(rng.integers(len(trace)))]
            trace.append(TraceRequest(image=earlier.image, query=earlier.query))
        else:
            sample = samples[int(rng.integers(len(samples)))]
            trace.append(TraceRequest(image=sample.image, query=sample.query))
    return trace


def timed_trace(
    samples: Sequence[GroundingSample],
    num_requests: int,
    rate_qps: float,
    repeat_fraction: float = 0.3,
    rng: Optional[np.random.Generator] = None,
) -> List[TimedRequest]:
    """A :func:`synthetic_trace` with Poisson arrival times at ``rate_qps``.

    Inter-arrival gaps are exponential with mean ``1 / rate_qps`` (a
    memoryless open-loop arrival process — the standard load model for
    latency SLO testing, since bursts arise naturally).  Content draws
    and arrival draws come from the same injected ``rng``, so a trace is
    fully determined by ``(samples, num_requests, rate_qps,
    repeat_fraction, seed)``.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    rng = rng if rng is not None else spawn_rng("serve-trace")
    content = synthetic_trace(samples, num_requests,
                              repeat_fraction=repeat_fraction, rng=rng)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_qps, size=num_requests))
    return [
        TimedRequest(image=req.image, query=req.query, arrival=float(at))
        for req, at in zip(content, arrivals)
    ]
