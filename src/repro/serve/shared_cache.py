"""Router-tier shared response cache with weights-epoch invalidation.

The fleet's replicas each carry a private per-process
:class:`~repro.serve.cache.LRUCache`, which means a repeat query still
pays a pipe round-trip to *some* replica, and a replica crash throws
its warm entries away.  :class:`SharedResponseCache` sits in the router
(one process, all traffic), keyed on ``(image_digest, query)`` exactly
like the replica caches, so repeats are answered before admission and
hits survive replica respawns.

**Invalidation is epoch-based.**  Every entry is tagged with the
*weights epoch* it was computed under.  A rolling
:meth:`~repro.serve.fleet.FleetRouter.reload_weights` bumps the epoch
atomically once the whole roll has completed; from that instant every
old-epoch entry is unreachable (``get`` treats it as a miss and prunes
it), while a failed or aborted roll never bumps, so the old epoch — and
every entry in it — stays valid.  The tag also guards the write side:
a response that was *dispatched* under epoch N but lands after the bump
to N+1 is rejected by :meth:`put` (counted in :attr:`stale_puts`), so a
box computed by pre-reload weights can never be inserted into the
post-reload cache no matter how the roll and the response race.

Entries are either legacy ``(4,)`` boxes or ranked
:class:`~repro.core.GroundingResponse` objects — whatever the replica
fleet answers with.  Stored values are defensive read-only deep copies
(:func:`~repro.core.freeze_response`) and :meth:`get` hands the stored
(read-only) value back — callers that give it to user code must thaw
(the router does), so a caller mutating a response can never corrupt
later hits.

The cache is thread-safe; the router's ``submit`` path (caller threads)
and per-replica receive threads hit it concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.core.response import ResponseLike, freeze_response


@dataclass(frozen=True)
class SharedCacheStats:
    """One snapshot of the shared cache's counters."""

    capacity: int
    size: int
    epoch: int
    hits: int
    misses: int
    evictions: int
    #: Old-epoch entries pruned on lookup after an epoch bump.
    stale_drops: int
    #: Writes rejected because the response was computed under an
    #: earlier epoch than the cache is currently serving.
    stale_puts: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "epoch": self.epoch,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "stale_puts": self.stale_puts,
            "hit_rate": self.hit_rate,
        }


class SharedResponseCache:
    """Epoch-tagged LRU of ``(image_digest, query) -> response``.

    ``capacity == 0`` disables the cache: ``get`` always misses (without
    counting) and ``put`` is a no-op, so a router configured with
    ``router_cache=0`` behaves exactly like the pre-cache fleet.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: key -> (epoch, read-only box or GroundingResponse)
        self._entries: "OrderedDict[Hashable, Tuple[int, ResponseLike]]" = \
            OrderedDict()
        self._epoch = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stale_drops = 0
        self._stale_puts = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def epoch(self) -> int:
        """The weights epoch entries must match to be served."""
        with self._lock:
            return self._epoch

    def get(self, key: Hashable) -> Optional[ResponseLike]:
        """Current-epoch entry for ``key`` (read-only) or ``None``.

        An entry tagged with an older epoch is stale by definition — it
        was computed by weights the fleet no longer serves — so it is
        pruned and the lookup counts as a miss.
        """
        if self.capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            epoch, box = entry
            if epoch != self._epoch:
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return box

    def put(self, key: Hashable, box: ResponseLike,
            epoch: Optional[int] = None) -> bool:
        """Insert a response computed under ``epoch`` (default: current).

        Returns ``False`` without storing when ``epoch`` predates the
        cache's current epoch — the response raced a completed weight
        roll and its content belongs to weights no longer being served.
        """
        if self.capacity == 0:
            return False
        with self._lock:
            if epoch is None:
                epoch = self._epoch
            if epoch != self._epoch:
                self._stale_puts += 1
                return False
            stored = freeze_response(box)
            self._entries[key] = (epoch, stored)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    def bump_epoch(self) -> int:
        """Advance the weights epoch, invalidating every current entry.

        The bump is atomic: the instant it returns, no pre-bump entry
        can be served (``get`` prunes them lazily) and no pre-bump
        response can be inserted (``put`` rejects old-epoch writes).
        Called by the router only after a rolling reload completed on
        every replica — a failed roll leaves the old epoch valid.
        """
        with self._lock:
            self._epoch += 1
            return self._epoch

    def clear(self) -> None:
        """Drop every entry (epoch and tallies are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> SharedCacheStats:
        with self._lock:
            return SharedCacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                epoch=self._epoch,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                stale_drops=self._stale_drops,
                stale_puts=self._stale_puts,
            )
