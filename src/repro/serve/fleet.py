"""Fault-tolerant serving fleet: a router over ``ServeEngine`` replicas.

:class:`FleetRouter` is the front door for the "millions of users"
serving story: it dispatches requests to N replica subprocesses (each a
micro-batching :class:`~repro.serve.ServeEngine`, see
:mod:`repro.serve.replica`) and keeps the fleet healthy:

* **Least-loaded routing** — each dispatch picks the live replica with
  the fewest outstanding requests, folding in the queue depth replicas
  report through heartbeats.
* **Backpressure** — admission is a bounded queue; when it is full the
  request is *shed* with a typed :class:`Overloaded` future instead of
  accumulating unbounded latency.  Per-replica in-flight is also capped
  so one slow replica cannot absorb the whole queue.
* **Deadlines** — every attempt has a deadline; an expired attempt is
  cancelled (its late response is ignored) and retried once on a
  different replica after a jittered backoff from
  :func:`repro.runtime.retry.backoff_delay`; a second expiry resolves
  the future with :class:`DeadlineExceeded`.
* **Supervision** — missed heartbeats, pipe EOF, or a dead process mark
  a replica dead: its in-flight requests are requeued onto survivors
  and a replacement is respawned (generation + 1, injected fault plans
  apply to generation 0 only — the PR-5 fault-aware rebuild idiom).
* **Rolling hot reload** — :meth:`FleetRouter.reload_weights` drains
  replicas one at a time, loads a checksummed
  :mod:`repro.runtime` checkpoint, and verifies the replica's post-load
  weight checksum against the payload the router read itself.  The rest
  of the fleet keeps serving; no in-flight request is dropped.
* **Router-tier response cache** — a
  :class:`~repro.serve.shared_cache.SharedResponseCache` keyed on
  ``(image_digest, query)`` answers repeats before admission (no pipe
  round-trip, and hits survive replica respawns).  Every entry carries
  a weights-epoch tag; a completed rolling reload bumps the epoch
  (instantly unreaching every pre-reload box), a failed roll leaves the
  old epoch valid, and responses dispatched under an older epoch are
  refused insertion — stale results can neither be served nor stored.

Every counter and distribution is published as ``serve.fleet.*`` into a
:class:`~repro.obs.MetricsRegistry`; :meth:`FleetRouter.stats` snapshots
them into a :class:`FleetStats`.  The invariant the soak harness
(:mod:`repro.serve.soak`) asserts: **every submitted request resolves**
— success, :class:`Overloaded`, :class:`DeadlineExceeded`, or
:class:`FleetStopped` — never an unresolved future.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.response import thaw_response
from repro.obs import MetricsRegistry
from repro.runtime.retry import backoff_delay
from repro.serve.cache import image_digest
from repro.serve.shared_cache import SharedResponseCache
from repro.text.tokenizer import normalize_query
from repro.serve.replica import (
    ReplicaSpec,
    _replica_entry,
    load_checkpoint_payload,
    state_checksum,
)
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import spawn_rng


class FleetError(RuntimeError):
    """Base class for fleet-level request failures."""


class Overloaded(FleetError):
    """Shed at admission: the bounded queue was full (backpressure)."""


class DeadlineExceeded(FleetError):
    """Every allowed attempt ran past its deadline."""


class ReplicaLost(FleetError):
    """The serving replica died on every allowed attempt."""


class FleetStopped(FleetError):
    """The fleet shut down before this request could be served."""


class ReloadError(FleetError):
    """A rolling weight reload failed (bad checkpoint or bad handshake)."""


class UnknownModel(FleetError):
    """A request or reload targeted a model the fleet does not serve."""

    def __init__(self, model: str, available: Sequence[str]):
        self.model = model
        self.available = tuple(available)
        super().__init__(
            f"unknown model {model!r}; fleet serves: "
            f"{', '.join(repr(m) for m in available)}")


@dataclass
class FleetConfig:
    """Tuning knobs for :class:`FleetRouter`."""

    replicas: int = 2
    #: Bounded admission queue; a full queue sheds with ``Overloaded``.
    max_queue: int = 64
    #: Outstanding requests allowed per replica before the dispatcher
    #: holds back (keeps shed decisions at admission, not in a pile-up
    #: behind one replica).
    max_replica_inflight: int = 32
    #: Router-tier response cache entries (0 disables).  Repeats hit in
    #: the router without a replica round-trip; a rolling reload bumps
    #: the cache's weights epoch so stale boxes are never served.
    router_cache: int = 256
    #: Per-attempt deadline (seconds) used when ``submit`` gives none.
    default_deadline: float = 30.0
    #: Total attempts per request (2 = one retry on a different replica).
    retry_attempts: int = 2
    retry_base_delay: float = 0.005
    retry_max_delay: float = 0.25
    retry_jitter: float = 0.5
    heartbeat_timeout: float = 5.0
    #: Seconds a spawned replica may take to report ready.
    spawn_timeout: float = 120.0
    respawn: bool = True
    max_respawns: int = 8
    monitor_interval: float = 0.005
    stop_timeout: float = 30.0

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be at least 1")
        if self.router_cache < 0:
            raise ValueError("router_cache must be non-negative")


@dataclass
class ReloadReport:
    """What one rolling reload did, replica by replica."""

    path: str
    checksum: str
    replicas: List[Dict[str, Any]] = field(default_factory=list)
    wall_seconds: float = 0.0


@dataclass(frozen=True)
class FleetStats:
    """One snapshot of the fleet's counters and latency distribution."""

    submitted: int
    completed: int
    shed: int
    retries: int
    deadline_exceeded: int
    failed: int
    respawns: int
    reloads: int
    stale_responses: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    reload_seconds_total: float
    #: Router-tier shared-cache counters (0s when ``router_cache=0``).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Weights epoch the shared cache is serving (bumped per reload).
    cache_epoch: int = 0
    replicas: Tuple[Dict[str, Any], ...] = ()

    @property
    def alive(self) -> int:
        return sum(1 for r in self.replicas if r["state"] == "up")

    @property
    def cache_hit_rate(self) -> float:
        """Router-tier hit fraction (hits answered before admission)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def resolved(self) -> int:
        """Requests resolved one way or another (none may be missing)."""
        return self.completed + self.shed + self.deadline_exceeded + self.failed

    def render(self) -> str:
        lines = [
            f"fleet    {self.completed}/{self.submitted} served, "
            f"{self.shed} shed, {self.deadline_exceeded} deadline-exceeded, "
            f"{self.failed} failed",
            f"latency  p50={self.latency_p50 * 1e3:.2f}ms  "
            f"p95={self.latency_p95 * 1e3:.2f}ms  "
            f"p99={self.latency_p99 * 1e3:.2f}ms",
            f"faults   {self.retries} retries, {self.respawns} respawns, "
            f"{self.stale_responses} stale responses",
            f"reloads  {self.reloads} "
            f"({self.reload_seconds_total:.3f}s total)",
            f"cache    hits={self.cache_hits} misses={self.cache_misses} "
            f"evictions={self.cache_evictions} epoch={self.cache_epoch} "
            f"hit-rate={self.cache_hit_rate * 100:.1f}%",
        ]
        for info in self.replicas:
            model = info.get("model", "")
            lines.append(
                f"replica{info['index']}  {info['state']:<9} "
                f"gen={info['generation']} depth={info['depth']} "
                f"in-flight={info['in_flight']} served={info['served']}"
                + (f" model={model}" if model else "")
            )
        return "\n".join(lines)


@dataclass
class _FleetRequest:
    """Router-side bookkeeping for one submitted request."""

    req_id: int
    image: np.ndarray
    query: str
    deadline: float
    future: Future
    enqueued: float
    attempts: int = 0
    deadline_ts: float = 0.0
    tried: Set[int] = field(default_factory=set)
    done: bool = False
    #: Model this request must be served by (``None`` = any replica).
    model: Optional[str] = None
    #: Shared-cache key ``(model_id, image_digest, query)`` — ``None``
    #: when the router cache is disabled or the request is untargeted in
    #: a heterogeneous fleet (any replica may answer, so no single model
    #: identity exists to key the entry under).
    key: Optional[Tuple[str, str, str]] = None
    #: Weights epoch at submit time — the response is inserted into the
    #: shared cache under this tag, so a box that races a completed
    #: weight roll is refused rather than cached as current.
    epoch: int = 0


class _Slot:
    """One replica slot: the process currently filling it plus state."""

    def __init__(self, index: int, model_id: str = ""):
        self.index = index
        self.model_id = model_id
        self.generation = -1
        self.process = None
        self.conn = None
        self.send_lock = threading.Lock()
        #: starting -> up -> (draining <-> up) -> lost/dead
        self.state = "new"
        self.started_at = 0.0
        self.last_heartbeat = 0.0
        self.depth = 0
        self.served = 0
        self.in_flight: Dict[int, _FleetRequest] = {}
        self.control: "queue.Queue" = queue.Queue()
        self.respawn_at: Optional[float] = None

    def info(self) -> Dict[str, Any]:
        return {
            "index": self.index, "state": self.state,
            "generation": self.generation, "depth": self.depth,
            "in_flight": len(self.in_flight), "served": self.served,
            "model": self.model_id,
        }


class FleetRouter:
    """Front-door router over N serving replica processes.

    Use as a context manager, or call :meth:`start`/:meth:`stop`.
    """

    def __init__(self, spec: Union[ReplicaSpec, Sequence[ReplicaSpec]],
                 config: FleetConfig = None,
                 metrics: MetricsRegistry = None,
                 logger: Optional[ProgressLogger] = None,
                 rng=None):
        # One spec = homogeneous fleet (the common case); a sequence of
        # specs makes a *heterogeneous* fleet: slot i runs
        # ``specs[i % len(specs)]``, so N replicas round-robin over the
        # models and model-tagged requests route only to matching slots.
        if isinstance(spec, ReplicaSpec):
            self.specs: Tuple[ReplicaSpec, ...] = (spec,)
        else:
            self.specs = tuple(spec)
            if not self.specs:
                raise ValueError("at least one ReplicaSpec is required")
        self.spec = self.specs[0]
        #: Distinct model identities, in spec order.
        self.model_ids: Tuple[str, ...] = tuple(
            dict.fromkeys(s.model_id for s in self.specs))
        self.config = config if config is not None else FleetConfig()
        if self.config.replicas < len(self.specs):
            raise ValueError(
                f"{len(self.specs)} replica specs need at least that many "
                f"replicas (config.replicas={self.config.replicas})")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger or ProgressLogger("fleet", enabled=False)
        self._rng = rng if rng is not None else spawn_rng("fleet-backoff")
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        self._slots: Dict[int, _Slot] = {}
        self._admission: "queue.Queue" = queue.Queue(
            maxsize=self.config.max_queue)
        self._response_cache = SharedResponseCache(self.config.router_cache)
        self._retry_heap: List[Tuple[float, int, _FleetRequest]] = []
        self._seq = itertools.count()
        #: Last rolled checkpoint per model identity — respawned
        #: replicas of a model rejoin at that model's weights.
        self._current_checkpoints: Dict[str, Optional[str]] = {
            s.model_id: s.initial_checkpoint for s in self.specs}
        self._closing = threading.Event()
        self._closed = False
        self._started = False
        self._threads: List[threading.Thread] = []

        m = self.metrics
        self._m_submitted = m.counter("serve.fleet.requests")
        self._m_completed = m.counter("serve.fleet.completed")
        self._m_shed = m.counter("serve.fleet.shed")
        self._m_retries = m.counter("serve.fleet.retries")
        self._m_deadline = m.counter("serve.fleet.deadline_exceeded")
        self._m_failed = m.counter("serve.fleet.failed")
        self._m_respawns = m.counter("serve.fleet.respawns")
        self._m_reloads = m.counter("serve.fleet.reloads")
        self._m_stale = m.counter("serve.fleet.stale_responses")
        self._m_latency = m.histogram("serve.fleet.latency_seconds")
        self._m_reload_s = m.histogram("serve.fleet.reload_seconds")
        self._m_depth = m.histogram("serve.fleet.replica_queue_depth")
        self._m_cache_hits = m.counter("serve.fleet.cache.hits")
        self._m_cache_misses = m.counter("serve.fleet.cache.misses")
        self._m_cache_evictions = m.counter("serve.fleet.cache.evictions")
        self._m_cache_epoch = m.gauge("serve.fleet.cache.epoch")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetRouter":
        with self._lock:
            if self._started:
                return self
            self._started = True
            for index in range(self.config.replicas):
                slot = _Slot(index,
                             model_id=self._spec_for(index).model_id)
                self._slots[index] = slot
                self._spawn(slot)
        self._spawn_thread(self._dispatch_loop, "fleet-dispatch")
        self._spawn_thread(self._monitor_loop, "fleet-monitor")
        return self

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _spawn_thread(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _spec_for(self, index: int) -> ReplicaSpec:
        """The replica spec that fills slot ``index``."""
        return self.specs[index % len(self.specs)]

    def _spawn(self, slot: _Slot) -> None:
        """Launch a (re)placement process into ``slot``."""
        slot.generation += 1
        base = self._spec_for(slot.index)
        # Injected fault plans apply to generation 0 only: a respawned
        # replica runs clean (PR-5 fault-aware rebuild idiom), and it
        # joins at its model's last completed rolling reload.
        spec = replace(
            base,
            fault_plan=base.fault_plan if slot.generation == 0 else None,
            initial_checkpoint=self._current_checkpoints[base.model_id],
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_replica_entry,
            args=(spec, slot.index, slot.generation, child_conn),
            name=f"serve-replica-{slot.index}-{slot.generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.state = "starting"
        slot.started_at = self._now()
        slot.respawn_at = None
        slot.depth = 0
        self._spawn_thread(lambda: self._receive_loop(slot, parent_conn),
                           f"fleet-recv-{slot.index}-{slot.generation}")

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain in-flight work, stop replicas, resolve every future."""
        timeout = timeout if timeout is not None else self.config.stop_timeout
        with self._lock:
            if self._closed:
                return
            self._closed = True  # submit() now rejects with FleetStopped
        deadline = self._now() + timeout
        while self._now() < deadline:
            with self._lock:
                busy = (not self._admission.empty() or self._retry_heap
                        or any(slot.in_flight
                               for slot in self._slots.values()))
            if not busy:
                break
            time.sleep(0.005)
        self._closing.set()
        # Fail whatever could not drain in time — typed, never silent.
        leftovers: List[_FleetRequest] = []
        with self._lock:
            while True:
                try:
                    leftovers.append(self._admission.get_nowait())
                except queue.Empty:
                    break
            leftovers.extend(req for _, _, req in self._retry_heap)
            self._retry_heap.clear()
            for slot in self._slots.values():
                leftovers.extend(slot.in_flight.values())
                slot.in_flight.clear()
        for req in leftovers:
            self._finish(req, error=FleetStopped(
                "fleet stopped before this request was served"))
        with self._lock:
            slots = list(self._slots.values())
        for slot in slots:
            if slot.process is not None and slot.process.is_alive():
                try:
                    with slot.send_lock:
                        slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        join_deadline = self._now() + 10.0
        for slot in slots:
            if slot.process is not None:
                slot.process.join(max(0.1, join_deadline - self._now()))
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(5.0)
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:
                    pass
            slot.state = "stopped"

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray, query: str,
               deadline: Optional[float] = None,
               model: Optional[str] = None) -> Future:
        """Enqueue one request; the future resolves to the replica's
        answer — a (4,) box, or a :class:`~repro.core.GroundingResponse`
        when replicas serve the ranked protocol — or a typed
        :class:`FleetError`; it is never left unresolved.

        ``model`` pins the request to replicas serving that model
        identity (see :attr:`ReplicaSpec.model_id`); an unknown identity
        resolves the future with :class:`UnknownModel`.  In a
        homogeneous fleet ``model=None`` targets the fleet's single
        model; in a heterogeneous fleet it means "any replica" — and
        such requests bypass the shared cache, since no one model
        identity can vouch for the answer.

        Repeats are answered from the router-tier shared cache before
        admission: no queue slot, no replica round-trip, and the hit
        survives any replica crash or respawn.  Entries are keyed by
        ``(model_id, image_digest, query)`` — a hit is only ever served
        back to the model that computed it — and only current-epoch
        entries are served, so a completed weight roll instantly stops
        every pre-reload box from being returned.
        """
        if not self._started:
            self.start()
        future: Future = Future()
        with self._lock:
            if self._closed:
                future.set_exception(FleetStopped("fleet is stopped"))
                return future
        if model is not None and model not in self.model_ids:
            future.set_exception(UnknownModel(model, self.model_ids))
            return future
        target = model
        if target is None and len(self.model_ids) == 1:
            target = self.model_ids[0]
        # Normalise once at the front door, so whitespace/case variants
        # of one query share a single entry in the router-tier cache AND
        # (via the forwarded request) in every replica's engine cache.
        query = normalize_query(str(query))
        self._m_submitted.inc()
        enqueued = self._now()
        key: Optional[Tuple[str, str, str]] = None
        epoch = 0
        if self._response_cache.capacity and target is not None:
            key = (target, image_digest(image), query)
            cached = self._response_cache.get(key)
            if cached is not None:
                self._m_cache_hits.inc()
                self._m_completed.inc()
                self._m_latency.observe(self._now() - enqueued)
                # Defensive thaw: the stored value is shared by every
                # later hit and must not be mutable through a response
                # (ranked lists deep-copy their box and score arrays).
                future.set_result(thaw_response(cached))
                return future
            self._m_cache_misses.inc()
            epoch = self._response_cache.epoch
        req = _FleetRequest(
            req_id=next(self._seq), image=image, query=query,
            deadline=float(deadline if deadline is not None
                           else self.config.default_deadline),
            future=future, enqueued=enqueued,
            model=target, key=key, epoch=epoch,
        )
        try:
            self._admission.put_nowait(req)
        except queue.Full:
            self._m_shed.inc()
            future.set_exception(Overloaded(
                f"admission queue full ({self.config.max_queue}); "
                f"request shed"))
        return future

    def ground(self, image: np.ndarray, query: str,
               deadline: Optional[float] = None,
               timeout: float = 60.0,
               model: Optional[str] = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(image, query, deadline=deadline,
                           model=model).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def response_cache(self) -> SharedResponseCache:
        """The router-tier shared cache (capacity 0 when disabled)."""
        return self._response_cache

    def alive_replicas(self) -> int:
        with self._lock:
            return sum(1 for slot in self._slots.values()
                       if slot.state == "up")

    def wait_healthy(self, timeout: float = 60.0) -> bool:
        """Block until every replica slot reports ready (or timeout)."""
        deadline = self._now() + timeout
        while self._now() < deadline:
            if self.alive_replicas() == self.config.replicas:
                return True
            time.sleep(0.01)
        return self.alive_replicas() == self.config.replicas

    def stats(self) -> FleetStats:
        with self._lock:
            infos = tuple(self._slots[i].info() for i in sorted(self._slots))
        cache = self._response_cache.stats()
        # The shared cache is the counting authority; catch the registry
        # counters/gauge up to it (hit/miss are also incremented live on
        # the submit path — the deltas heal any divergence).
        self._m_cache_hits.inc(cache.hits - self._m_cache_hits.value)
        self._m_cache_misses.inc(cache.misses - self._m_cache_misses.value)
        self._m_cache_evictions.inc(
            cache.evictions - self._m_cache_evictions.value)
        self._m_cache_epoch.set(cache.epoch)
        latencies = self._m_latency.values()
        p50, p95, p99 = (
            self.metrics.histogram("serve.fleet.latency_seconds")
            .percentile((50.0, 95.0, 99.0))
            if latencies else (0.0, 0.0, 0.0)
        )
        return FleetStats(
            submitted=self._m_submitted.value,
            completed=self._m_completed.value,
            shed=self._m_shed.value,
            retries=self._m_retries.value,
            deadline_exceeded=self._m_deadline.value,
            failed=self._m_failed.value,
            respawns=self._m_respawns.value,
            reloads=self._m_reloads.value,
            stale_responses=self._m_stale.value,
            latency_p50=float(p50), latency_p95=float(p95),
            latency_p99=float(p99),
            reload_seconds_total=float(sum(self._m_reload_s.values())),
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_evictions=cache.evictions,
            cache_epoch=cache.epoch,
            replicas=infos,
        )

    # ------------------------------------------------------------------
    # Rolling hot reload
    # ------------------------------------------------------------------
    def reload_weights(self, checkpoint_path: str,
                       timeout: float = 60.0,
                       model: Optional[str] = None) -> ReloadReport:
        """Roll new weights across the fleet, one replica at a time.

        In a heterogeneous fleet ``model`` names which model's replicas
        to roll (required when the fleet serves more than one — weights
        for one preset must never be loaded into another's replicas);
        a homogeneous fleet may omit it.

        The checkpoint is read and checksum-verified by the router
        first; each replica is drained (no new dispatches, in-flight
        allowed to finish), told to reload, and must answer with a
        checksum over its re-extracted post-load state matching the
        router's.  A replica that fails the handshake is killed and
        respawned (it would otherwise serve unknown weights); a replica
        that fails to *load* (corrupt file racing the write, say) keeps
        its old weights and the reload raises.  Other replicas keep
        serving throughout — in-flight requests are never dropped.
        """
        if model is None:
            if len(self.model_ids) > 1:
                raise ReloadError(
                    "fleet serves multiple models "
                    f"({', '.join(repr(m) for m in self.model_ids)}); "
                    "pass model= to say which one to reload")
            model = self.model_ids[0]
        elif model not in self.model_ids:
            raise UnknownModel(model, self.model_ids)
        started = self._now()
        payload = load_checkpoint_payload(checkpoint_path)
        expected = state_checksum(payload)
        # Respawns of this model from here on join at the new weights.
        self._current_checkpoints[model] = checkpoint_path
        report = ReloadReport(path=checkpoint_path, checksum=expected)
        with self._lock:
            indices = [i for i in sorted(self._slots)
                       if self._slots[i].model_id == model]
        for index in indices:
            slot = self._slots[index]
            if not self._drain_for_reload(slot, timeout):
                continue  # dead/never-ready slot: respawn path covers it
            reload_started = self._now()
            try:
                with slot.send_lock:
                    slot.conn.send(("reload", checkpoint_path))
                reply = slot.control.get(timeout=timeout)
            except (BrokenPipeError, OSError, queue.Empty):
                with self._lock:
                    if slot.state == "draining":
                        slot.state = "lost"  # monitor respawns it
                raise ReloadError(
                    f"replica {index} did not answer the reload "
                    f"handshake within {timeout}s")
            if reply[0] == "reload-failed":
                with self._lock:
                    slot.state = "up"  # still serving the old weights
                raise ReloadError(
                    f"replica {index} failed to load "
                    f"{checkpoint_path}: {reply[1]}")
            _, checksum, seconds = reply
            if checksum != expected:
                with self._lock:
                    slot.state = "lost"  # unknown weights: kill + respawn
                raise ReloadError(
                    f"replica {index} checksum handshake mismatch: "
                    f"expected {expected[:12]}, got {checksum[:12]}")
            self._m_reload_s.observe(self._now() - reload_started)
            with self._lock:
                slot.state = "up"
            report.replicas.append({
                "index": index, "generation": slot.generation,
                "checksum": checksum, "seconds": seconds,
            })
            self.logger.log(f"replica {index} reloaded in {seconds:.3f}s")
        # Whole roll succeeded (each reloaded replica flushed its private
        # LRU before acking): advance the shared cache's weights epoch in
        # one atomic step.  Every pre-reload entry is unreachable from
        # this instant; a raise anywhere above skips the bump, leaving
        # the old epoch — still being served by the fleet — valid.  The
        # epoch is fleet-global, so in a heterogeneous fleet rolling one
        # model also evicts the *other* models' entries: deliberately
        # conservative (a cold cache is a latency cost; a stale answer
        # is a correctness bug).
        epoch = self._response_cache.bump_epoch()
        self._m_cache_epoch.set(epoch)
        self._m_reloads.inc()
        report.wall_seconds = self._now() - started
        return report

    def _drain_for_reload(self, slot: _Slot, timeout: float) -> bool:
        """Stop dispatching to ``slot`` and wait out its in-flight work."""
        deadline = self._now() + timeout
        while self._now() < deadline:
            with self._lock:
                if slot.state == "up":
                    slot.state = "draining"
                if slot.state == "draining" and not slot.in_flight:
                    return True
                if slot.state in ("dead", "lost", "stopped"):
                    return False
            time.sleep(0.005)
        with self._lock:
            if slot.state == "draining":
                slot.state = "up"
        raise ReloadError(
            f"replica {slot.index} still has in-flight requests after "
            f"{timeout}s drain")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.monotonic()

    def _next_request(self) -> Optional[_FleetRequest]:
        with self._lock:
            if self._retry_heap and self._retry_heap[0][0] <= self._now():
                return heapq.heappop(self._retry_heap)[2]
        try:
            return self._admission.get(timeout=0.01)
        except queue.Empty:
            return None

    def _dispatch_loop(self) -> None:
        while not self._closing.is_set():
            req = self._next_request()
            if req is None:
                continue
            self._dispatch(req)

    def _dispatch(self, req: _FleetRequest) -> None:
        """Send one request to the least-loaded replica (waits for one)."""
        while not self._closing.is_set():
            with self._lock:
                if req.done:
                    return
                slot = self._pick_slot(req.tried, req.model)
                if slot is not None:
                    req.attempts += 1
                    req.tried.add(slot.index)
                    req.deadline_ts = self._now() + req.deadline
                    slot.in_flight[req.req_id] = req
                    try:
                        with slot.send_lock:
                            slot.conn.send(
                                ("request", req.req_id, req.image, req.query))
                        return
                    except (BrokenPipeError, OSError):
                        # Found out before the monitor did: undo the
                        # bookkeeping and try another replica.
                        slot.in_flight.pop(req.req_id, None)
                        slot.state = "lost"
                        req.attempts -= 1
                        continue
                if not self._any_capacity_coming(req.model):
                    self._finish(req, error=ReplicaLost(
                        "no serving replica available and respawn "
                        "budget exhausted"))
                    return
            time.sleep(0.002)
        # The fleet closed while this request was waiting for capacity.
        self._finish(req, error=FleetStopped(
            "fleet stopped before this request could be dispatched"))

    def _pick_slot(self, exclude: Set[int],
                   model: Optional[str] = None) -> Optional[_Slot]:
        """Least-loaded live replica (of ``model``, when pinned),
        preferring ones not yet tried."""
        candidates = [
            slot for slot in self._slots.values()
            if slot.state == "up"
            and (model is None or slot.model_id == model)
            and len(slot.in_flight) < self.config.max_replica_inflight
        ]
        if not candidates:
            return None
        fresh = [slot for slot in candidates if slot.index not in exclude]
        pool = fresh or candidates
        return min(pool, key=lambda s: (len(s.in_flight) + s.depth, s.index))

    def _any_capacity_coming(self, model: Optional[str] = None) -> bool:
        """Is any (matching) replica up, starting, draining, or due to
        respawn?"""
        return any(
            (slot.state in ("up", "starting", "draining")
             or slot.respawn_at is not None)
            and (model is None or slot.model_id == model)
            for slot in self._slots.values()
        )

    # ------------------------------------------------------------------
    # Completion / failure
    # ------------------------------------------------------------------
    def _finish(self, req: _FleetRequest, result=None, error=None) -> None:
        with self._lock:
            if req.done:
                return
            req.done = True
        if error is not None:
            if isinstance(error, DeadlineExceeded):
                self._m_deadline.inc()
            else:
                self._m_failed.inc()
            req.future.set_exception(error)
        else:
            self._m_completed.inc()
            self._m_latency.observe(self._now() - req.enqueued)
            # Defensive copy: the caller owns its answer outright —
            # mutating it must never reach the shared cache or another
            # waiter (thaw deep-copies ranked responses too).
            req.future.set_result(thaw_response(result))

    def _handle_failure(self, req: _FleetRequest, error: FleetError) -> None:
        """Retry on a different replica, or resolve with the typed error."""
        with self._lock:
            if req.done:
                return
            if req.attempts < self.config.retry_attempts:
                delay = backoff_delay(
                    req.attempts,
                    base_delay=self.config.retry_base_delay,
                    max_delay=self.config.retry_max_delay,
                    jitter=self.config.retry_jitter,
                    rng=self._rng,
                )
                self._m_retries.inc()
                heapq.heappush(
                    self._retry_heap,
                    (self._now() + delay, next(self._seq), req))
                return
        self._finish(req, error=error)

    # ------------------------------------------------------------------
    # Receive / monitor
    # ------------------------------------------------------------------
    def _receive_loop(self, slot: _Slot, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "response":
                _, req_id, box = message
                with self._lock:
                    req = slot.in_flight.pop(req_id, None)
                if req is None:
                    self._m_stale.inc()  # deadline-cancelled attempt
                else:
                    with self._lock:
                        slot.served += 1
                    if req.key is not None:
                        # Tagged with the submit-time epoch: if a weight
                        # roll completed while this response was in
                        # flight, the insert is refused — a pre-reload
                        # box never enters the post-reload cache.
                        self._response_cache.put(req.key, box,
                                                 epoch=req.epoch)
                    self._finish(req, result=box)
            elif kind == "error":
                _, req_id, detail = message
                with self._lock:
                    req = slot.in_flight.pop(req_id, None)
                if req is not None:
                    self._handle_failure(req, FleetError(
                        f"replica {slot.index} error: {detail}"))
            elif kind == "heartbeat":
                _, depth, served = message
                with self._lock:
                    slot.last_heartbeat = self._now()
                    slot.depth = int(depth)
                    # responses already bump served router-side; the
                    # heartbeat view only ever catches it up (cache hits
                    # served inside the replica, say), never rolls back
                    slot.served = max(slot.served, int(served))
                self._m_depth.observe(int(depth))
                self.metrics.gauge(
                    f"serve.fleet.replica{slot.index}.queue_depth"
                ).set(int(depth))
            elif kind == "ready":
                with self._lock:
                    slot.last_heartbeat = self._now()
                    if slot.state == "starting":
                        slot.state = "up"
            elif kind in ("reloaded", "reload-failed"):
                slot.control.put(message)
        # EOF: flag for the monitor unless this generation was replaced
        # or the fleet is shutting down.
        with self._lock:
            if (slot.conn is conn
                    and slot.state not in ("dead", "stopped")):
                slot.state = "lost"

    def _monitor_loop(self) -> None:
        while not self._closing.wait(self.config.monitor_interval):
            now = self._now()
            with self._lock:
                slots = list(self._slots.values())
            for slot in slots:
                self._check_slot(slot, now)
            self._check_deadlines(now)

    def _check_slot(self, slot: _Slot, now: float) -> None:
        with self._lock:
            state = slot.state
            process_dead = (slot.process is not None
                            and not slot.process.is_alive())
        if state == "lost" or (
                state in ("starting", "up", "draining") and process_dead):
            self._declare_dead(slot, "process exited")
        elif state in ("up", "draining") and (
                now - slot.last_heartbeat > self.config.heartbeat_timeout):
            self._declare_dead(slot, "missed heartbeats")
        elif state == "starting" and (
                now - slot.started_at > self.config.spawn_timeout):
            self._declare_dead(slot, "never became ready")
        elif state == "dead" and slot.respawn_at is not None \
                and now >= slot.respawn_at:
            with self._lock:
                if self._closed:
                    slot.respawn_at = None
                    return
                slot.respawn_at = None
                self._m_respawns.inc()
                self.logger.log(
                    f"respawning replica {slot.index} "
                    f"(generation {slot.generation + 1})")
                self._spawn(slot)

    def _declare_dead(self, slot: _Slot, reason: str) -> None:
        with self._lock:
            if slot.state in ("dead", "stopped"):
                return
            slot.state = "dead"
            orphans = list(slot.in_flight.values())
            slot.in_flight.clear()
            slot.depth = 0
            process, conn = slot.process, slot.conn
            if (self.config.respawn and not self._closed
                    and slot.generation + 1 <= self.config.max_respawns):
                slot.respawn_at = self._now() + backoff_delay(
                    slot.generation + 1,
                    base_delay=self.config.retry_base_delay,
                    max_delay=self.config.retry_max_delay,
                    jitter=self.config.retry_jitter,
                    rng=self._rng,
                )
        self.logger.log(f"replica {slot.index} dead ({reason}); "
                        f"{len(orphans)} request(s) requeued")
        if process is not None and process.is_alive():
            process.terminate()
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        for req in orphans:
            self._handle_failure(req, ReplicaLost(
                f"replica {slot.index} died ({reason}) with the request "
                f"in flight"))

    def _check_deadlines(self, now: float) -> None:
        expired: List[_FleetRequest] = []
        with self._lock:
            for slot in self._slots.values():
                for req_id, req in list(slot.in_flight.items()):
                    if now > req.deadline_ts:
                        slot.in_flight.pop(req_id, None)
                        expired.append(req)
        for req in expired:
            # The attempt is cancelled: its late response (if the
            # replica ever answers) is counted as stale and ignored.
            self._handle_failure(req, DeadlineExceeded(
                f"deadline of {req.deadline}s exceeded after "
                f"{req.attempts} attempt(s)"))
